//! Tests of the persistent-pool executor's dynamic batch scheduler:
//! skewed workloads must not serialize on one worker, and the NULL-split
//! early exit must survive batches being claimed out of claim order.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mozart_core::annotation::{concrete, Annotation};
use mozart_core::prelude::*;

/// An owned chunk of floats (functional pieces, like a NumPy result).
#[derive(Debug, Clone)]
struct Chunk(Arc<Vec<f64>>);

impl mozart_core::value::DataObject for Chunk {
    fn type_name(&self) -> &'static str {
        "Chunk"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Copying range splitter over [`Chunk`]s; merge concatenates in order.
struct ChunkSplit;

impl Splitter for ChunkSplit {
    fn name(&self) -> &'static str {
        "ChunkSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let c = ctor_args[0]
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit ctor".into()))?;
        Ok(vec![c.0.len() as i64])
    }
    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params[0] as u64,
            elem_size_bytes: 8,
        })
    }
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let c = arg
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit split".into()))?;
        let total = params[0] as u64;
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total) as usize;
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0[range.start as usize..end].to_vec(),
        )))))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut out = Vec::new();
        for p in pieces {
            let c = p
                .downcast_ref::<Chunk>()
                .ok_or(Error::Library("ChunkSplit merge".into()))?;
            out.extend_from_slice(&c.0);
        }
        Ok(DataValue::new(Chunk(Arc::new(out))))
    }
}

/// Like [`ChunkSplit`], but `info` over-reports the element count:
/// `split` returns the paper's NULL once the real data is exhausted, the
/// way a generator-backed source dries up mid-stage.
struct TruncatedSplit;

impl Splitter for TruncatedSplit {
    fn name(&self) -> &'static str {
        "TruncatedSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let c = ctor_args[0]
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("TruncatedSplit ctor".into()))?;
        // Parameters: [claimed total, real total].
        Ok(vec![c.0.len() as i64 * 2, c.0.len() as i64])
    }
    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params[0] as u64,
            elem_size_bytes: 8,
        })
    }
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let c = arg
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("TruncatedSplit split".into()))?;
        let real = params[1] as u64;
        if range.start >= real {
            return Ok(None); // the early-exit NULL
        }
        let end = range.end.min(real) as usize;
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0[range.start as usize..end].to_vec(),
        )))))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        params: &Params,
        total_elements: u64,
    ) -> Result<DataValue> {
        ChunkSplit.merge(pieces, params, total_elements)
    }
}

fn pedantic_ctx(workers: usize, batch: u64) -> MozartContext {
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(batch);
    cfg.pedantic = true;
    MozartContext::new(cfg)
}

/// Scale a chunk, sleeping long enough that every pool worker gets a
/// chance to claim batches before the stage drains.
fn slow_scale_annotation(sleep_per_batch: Duration) -> Arc<Annotation> {
    Annotation::new("slow_scale", move |inv| {
        let c = inv.arg::<Chunk>(0)?;
        let k = inv.float(1)?;
        std::thread::sleep(sleep_per_batch);
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0.iter().map(|x| x * k).collect(),
        )))))
    })
    .arg("xs", concrete(Arc::new(ChunkSplit), vec![0]))
    .arg("k", mozart_core::annotation::missing())
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build()
}

#[test]
fn skewed_batches_keep_every_worker_busy() {
    let workers = 4;
    let n = 64u64;
    let ctx = pedantic_ctx(workers, 1); // 64 one-element batches
    let data = Chunk(Arc::new((0..n).map(|i| i as f64).collect()));

    // Deterministic rendezvous: the first batch each participant claims
    // blocks until all four participants have claimed one. Claims pause
    // while a participant is blocked, so the cursor is forced to spread
    // the early batches across every worker regardless of scheduling
    // luck — no sleep-length guessing on loaded CI runners.
    thread_local! {
        static JOINED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }
    let arrivals = Arc::new(AtomicU64::new(0));
    let arrivals2 = arrivals.clone();
    let annot = Annotation::new("rendezvous_scale", move |inv| {
        let c = inv.arg::<Chunk>(0)?;
        let k = inv.float(1)?;
        let first = JOINED.with(|j| !j.replace(true));
        if first {
            arrivals2.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            while arrivals2.load(Ordering::SeqCst) < 4 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "pool workers never all joined the stage"
                );
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0.iter().map(|x| x * k).collect(),
        )))))
    })
    .arg("xs", concrete(Arc::new(ChunkSplit), vec![0]))
    .arg("k", mozart_core::annotation::missing())
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build();

    let fut = ctx
        .call(
            &annot,
            vec![DataValue::new(data), DataValue::new(FloatValue(2.0))],
        )
        .unwrap()
        .unwrap();
    let out = fut.get().unwrap();

    // Dynamic claiming must not reorder the merged result.
    let chunk = out.downcast_ref::<Chunk>().unwrap();
    let expect: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
    assert_eq!(*chunk.0, expect);

    let pool = ctx.pool_stats();
    assert_eq!(pool.workers, workers - 1, "caller participates as worker 0");
    assert_eq!(pool.jobs, 1);
    assert_eq!(
        pool.per_worker_batches.iter().sum::<u64>(),
        n,
        "every batch claimed exactly once"
    );
    assert!(
        pool.all_workers_productive(),
        "static partitioning would idle workers on skewed batches; \
         dynamic claiming must not: {:?}",
        pool.per_worker_batches
    );
    assert!(
        pool.batches_stolen > 0,
        "with a shared cursor, some claims must cross static ranges"
    );

    // With the stage drained, every pool worker must eventually park.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if ctx.pool_stats().parks >= workers as u64 - 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "workers never parked after the stage: {:?}",
            ctx.pool_stats()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn pool_survives_many_tiny_stages() {
    // Stages of different lengths cannot pipeline with each other, so
    // this produces one stage per call — the spawn-per-stage worst case
    // the persistent pool exists for.
    let ctx = pedantic_ctx(3, 4);
    let annot = slow_scale_annotation(Duration::ZERO);
    let mut futs = Vec::new();
    for len in 1..=24usize {
        let data = Chunk(Arc::new(vec![1.0; len]));
        let fut = ctx
            .call(
                &annot,
                vec![DataValue::new(data), DataValue::new(FloatValue(3.0))],
            )
            .unwrap()
            .unwrap();
        futs.push((len, fut));
    }
    ctx.evaluate().unwrap();
    for (len, fut) in futs {
        let out = fut.get().unwrap();
        assert_eq!(*out.downcast_ref::<Chunk>().unwrap().0, vec![3.0; len]);
    }
    assert_eq!(ctx.stats().stages, 24);
    let pool = ctx.pool_stats();
    assert_eq!(pool.workers, 2, "pool threads persist across all stages");
    // Stages of 1..=4 elements are a single batch and run inline on the
    // caller; the rest (lengths 5..=24) dispatch to the pool. (A pool
    // worker only *joins* a job it wakes up for in time — the caller may
    // drain a short stage alone — so `unparks` has no fixed floor.)
    assert_eq!(pool.jobs, 20);
}

#[test]
fn null_split_early_exit_with_out_of_order_batches() {
    // TruncatedSplit claims 2n elements but serves n: workers claiming
    // batches past n (in whatever order the cursor hands them out) see
    // NULL and stop; batches below n must all still be processed and
    // merged in element order, with no pedantic violation.
    let workers = 4;
    let real = 40u64;
    let ctx = pedantic_ctx(workers, 1);
    let data = Chunk(Arc::new((0..real).map(|i| i as f64).collect()));
    let annot = Annotation::new("trunc_scale", |inv| {
        let c = inv.arg::<Chunk>(0)?;
        std::thread::sleep(Duration::from_micros(200));
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0.iter().map(|x| x + 1.0).collect(),
        )))))
    })
    .arg("xs", concrete(Arc::new(TruncatedSplit), vec![0]))
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build();

    let fut = ctx
        .call(&annot, vec![DataValue::new(data)])
        .unwrap()
        .unwrap();
    let out = fut.get().unwrap();
    let chunk = out.downcast_ref::<Chunk>().unwrap();
    let expect: Vec<f64> = (0..real).map(|i| i as f64 + 1.0).collect();
    assert_eq!(*chunk.0, expect, "all real batches processed, in order");
    assert_eq!(ctx.stats().batches, real, "no batch double-claimed or lost");
}

#[test]
fn pedantic_mode_still_flags_disagreeing_splits() {
    // One input produces a piece, the other returns NULL for the same
    // batch: pedantic mode must fail the stage whichever worker claims
    // the offending batch, even out of order.
    let real = 16u64;
    let ctx = pedantic_ctx(3, 1);
    let full = Chunk(Arc::new((0..real * 2).map(|i| i as f64).collect()));
    let truncated = Chunk(Arc::new((0..real).map(|i| i as f64).collect()));
    let annot = Annotation::new("mismatch", |inv| {
        let a = inv.arg::<Chunk>(0)?;
        let _b = inv.arg::<Chunk>(1)?;
        Ok(Some(DataValue::new(Chunk(a.0.clone()))))
    })
    .arg("full", concrete(Arc::new(ChunkSplit), vec![0]))
    .arg("truncated", concrete(Arc::new(TruncatedSplit), vec![1]))
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build();

    let fut = ctx
        .call(
            &annot,
            vec![DataValue::new(full), DataValue::new(truncated)],
        )
        .unwrap()
        .unwrap();
    let err = fut.get().unwrap_err();
    assert!(
        matches!(err, Error::Pedantic(ref m) if m.contains("TruncatedSplit")),
        "expected pedantic NULL-disagreement error, got {err:?}"
    );
}

#[test]
fn worker_errors_stop_the_stage_quickly() {
    // A failing library call must poison the stage without hanging the
    // pool, and later evaluations must keep reporting the error.
    let ctx = pedantic_ctx(4, 1);
    let n = 128u64;
    let calls = Arc::new(AtomicU64::new(0));
    let calls2 = calls.clone();
    let data = Chunk(Arc::new(vec![1.0; n as usize]));
    let annot = Annotation::new("fails_midway", move |inv| {
        let c = inv.arg::<Chunk>(0)?;
        if calls2.fetch_add(1, Ordering::Relaxed) == 20 {
            return Err(Error::Library("synthetic failure".into()));
        }
        Ok(Some(DataValue::new(Chunk(c.0.clone()))))
    })
    .arg("xs", concrete(Arc::new(ChunkSplit), vec![0]))
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build();

    let fut = ctx
        .call(&annot, vec![DataValue::new(data)])
        .unwrap()
        .unwrap();
    let err = fut.get().unwrap_err();
    assert!(matches!(err, Error::Library(_)), "got {err:?}");
    // The failed flag lets other workers bail before claiming all 128
    // batches (timing-dependent, so only sanity-check the ceiling).
    assert!(calls.load(Ordering::Relaxed) <= n + 4);
    // The context stays poisoned.
    let err2 = ctx.evaluate().unwrap_err();
    assert!(matches!(err2, Error::Library(_)));
}
