//! Property tests for the Layer-2 plan verifier: start from a valid
//! graph + stage plan, apply one randomly-parameterized corruption
//! (drop a slot, alias two slots, discard a live output, gap a
//! split-form piece set, ...), and assert `verify_stage` rejects it
//! with the matching typed [`VerifyError`] — never a panic, never a
//! silent acceptance.
//!
//! The scenario mirrors the planner's output for a two-call pipeline:
//! `n0` scales a vector in place (mut arg -> `InPlace` output) and
//! `n1` squares the mut-version into a fresh return (`Merge` output),
//! with a pending consumer `n2` and a live user future keeping both
//! outputs observable.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use proptest::prelude::*;

use mozart_core::annotation::{concrete, generic, missing, Annotation, Invocation};
use mozart_core::array_split::ArraySplit;
use mozart_core::buffer::{SharedVec, VecValue};
use mozart_core::config::Config;
use mozart_core::error::{Error, Result};
use mozart_core::graph::{
    DataflowGraph, FutureToken, Node, NodeId, ValueEntry, ValueId, ValueOrigin,
};
use mozart_core::planner::{OutputKind, StageOutput, StagePlan};
use mozart_core::split::{MergeStrategy, Params, RuntimeInfo, SplitForm, SplitInstance, Splitter};
use mozart_core::value::{DataValue, FloatValue, IntValue};
use mozart_core::verify::{verify_stage, VerifyError};

/// Element count of the scenario's vector values.
const N: u64 = 16;

fn noop(_: &Invocation<'_>) -> Result<Option<DataValue>> {
    Ok(None)
}

/// Configurable stub splitter for the non-`ArraySplit` corruption
/// cases: commutative merge (so `split_form_concat()` is `None` and
/// the strategy cannot recover in-place views), optionally terminal,
/// optionally refusing `info` like a merge-only reducer.
struct Stub {
    name: &'static str,
    terminal: bool,
    info_ok: bool,
}

impl Splitter for Stub {
    fn name(&self) -> &'static str {
        self.name
    }
    fn construct(&self, _c: &[&DataValue]) -> Result<Params> {
        Ok(vec![])
    }
    fn info(&self, _a: &DataValue, _p: &Params) -> Result<RuntimeInfo> {
        if self.info_ok {
            Ok(RuntimeInfo {
                total_elements: N,
                elem_size_bytes: 8,
            })
        } else {
            Err(Error::Split {
                split_type: self.name,
                message: "merge-only".into(),
            })
        }
    }
    fn split(&self, _a: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Split {
            split_type: self.name,
            message: "merge-only".into(),
        })
    }
    fn merge(&self, pieces: Vec<DataValue>, _p: &Params, _t: u64) -> Result<DataValue> {
        Ok(pieces.into_iter().next().expect("nonempty"))
    }
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Commutative {
            terminal: self.terminal,
        }
    }
}

fn terminal_inst() -> SplitInstance {
    SplitInstance::new(
        Arc::new(Stub {
            name: "TermStub",
            terminal: true,
            info_ok: false,
        }),
        vec![],
    )
}

fn no_info_inst() -> SplitInstance {
    SplitInstance::new(
        Arc::new(Stub {
            name: "NoInfoStub",
            terminal: false,
            info_ok: false,
        }),
        vec![],
    )
}

fn commut_inst() -> SplitInstance {
    SplitInstance::new(
        Arc::new(Stub {
            name: "CommutStub",
            terminal: false,
            info_ok: true,
        }),
        vec![],
    )
}

fn arr(n: u64) -> SplitInstance {
    SplitInstance::new(Arc::new(ArraySplit), vec![n as i64])
}

fn vec_value(n: u64) -> DataValue {
    DataValue::new(VecValue(SharedVec::from_vec(vec![0.0f64; n as usize])))
}

fn source(data: DataValue) -> ValueEntry {
    ValueEntry {
        origin: ValueOrigin::Source,
        data: Some(data),
        ready: true,
        split_form: None,
        consumers: Vec::new(),
        user_token: None,
    }
}

/// A valid graph + plan pair that `verify_stage` accepts, plus the
/// token keeping the user future for `v2` alive.
struct Scenario {
    graph: DataflowGraph,
    plan: StagePlan,
    _token: Arc<FutureToken>,
}

/// Values: v0 = source vector (split input), v1 = source scalar
/// (broadcast), v2 = mut-version of v0 produced by n0 (InPlace output,
/// user-visible future), v3 = return of n1 (Merge output), v4 = spare
/// source vector of a different length (unused until the
/// `ElementMismatch` mutation drafts it as a second split input).
/// Nodes: n0 and n1 form the stage; n2 is a pending consumer of v3
/// outside it.
fn scenario() -> Scenario {
    let token = Arc::new(FutureToken);
    let mut graph = DataflowGraph::default();

    let v0 = graph.push_value(source(vec_value(N)));
    let v1 = graph.push_value(source(DataValue::new(IntValue(N as i64))));
    let v2 = graph.push_value(ValueEntry {
        origin: ValueOrigin::MutVersion {
            node: NodeId(0),
            arg: 0,
            prev: v0,
        },
        data: Some(vec_value(N)),
        ready: false,
        split_form: None,
        consumers: Vec::new(),
        user_token: Some(Arc::downgrade(&token)),
    });

    let scale = Annotation::new("pscale", noop)
        // MKL convention: the split parameter comes from the size
        // argument (index 1), never from the mutated storage.
        .mut_arg("xs", concrete(Arc::new(ArraySplit), vec![1]))
        .arg("n", missing())
        .build();
    graph.push_node(Node {
        annot: scale,
        args: vec![v0, v1],
        mut_out: vec![Some(v2), None],
        ret: None,
        executed: false,
    });

    let v3 = graph.push_value(ValueEntry {
        origin: ValueOrigin::Ret(NodeId(1)),
        data: None,
        ready: false,
        split_form: None,
        consumers: Vec::new(),
        user_token: None,
    });
    let square = Annotation::new("psquare", noop)
        .arg("x", generic(0))
        .ret(generic(0))
        .build();
    graph.push_node(Node {
        annot: square.clone(),
        args: vec![v2],
        mut_out: vec![None],
        ret: Some(v3),
        executed: false,
    });
    // n2: pending consumer of v3, outside the stage.
    graph.push_node(Node {
        annot: square,
        args: vec![v3],
        mut_out: vec![None],
        ret: None,
        executed: false,
    });

    // v4: spare source of a different length, not in the valid plan.
    graph.push_value(source(vec_value(N / 2)));

    let slots: HashMap<ValueId, u32> = (0..4).map(|i| (ValueId(i), i)).collect();
    let plan = StagePlan {
        nodes: vec![NodeId(0), NodeId(1)],
        inputs: vec![(v0, arr(N))],
        broadcast: vec![v1],
        outputs: vec![
            StageOutput {
                value: v2,
                instance: arr(N),
                kind: OutputKind::InPlace,
                last_use: false,
            },
            StageOutput {
                value: v3,
                instance: arr(N),
                kind: OutputKind::Merge,
                last_use: false,
            },
        ],
        slots,
        num_slots: 4,
    };
    Scenario {
        graph,
        plan,
        _token: token,
    }
}

/// One corruption of the valid scenario, with its parameters.
#[derive(Debug, Clone)]
enum Mutation {
    /// Delete value `which`'s slot assignment.
    UnslotValue(u32),
    /// Move value `which`'s slot to `num_slots + off`.
    SlotOutOfRange { which: u32, off: u32 },
    /// Give value `(base + delta) % 4` the same slot as value `base`.
    AliasSlots { base: u32, delta: u32 },
    /// Remove the split input so n0 reads an undefined value.
    DropSplitInput,
    /// Point the plan at a node the graph does not have.
    BogusNode(u32),
    /// Discard v3 while pending n2 still consumes it.
    DiscardConsumedOutput,
    /// Discard v2 while the application holds a live future for it.
    DiscardUserVisibleOutput,
    /// Mark the returned v3 as an InPlace output.
    InPlaceOnReturn,
    /// Resolve the InPlace output v2 to a commutative-merge instance.
    InPlaceBadStrategy,
    /// Rewire n1 to read pre-mutation v0 after n0 mutated its storage.
    StaleRead,
    /// Broadcast v0 whole while n0 binds it mut.
    MutSharedAlias,
    /// Emit v0 as an output no stage node produces.
    ForeignOutput,
    /// Bind the split input under a terminal (merge-only) split type.
    TerminalInput,
    /// Bind the split input under a splitter whose `info` errors.
    InfoUnavailable,
    /// Add a second split input of `len != N` elements.
    ElementMismatch { len: u64 },
    /// Hand v0 over in split form with a piece gap at `split`.
    SplitFormGap { split: u64, skip: u64 },
    /// Hand v0 over in split form covering `N + extra` of N elements.
    SplitFormOverrun { extra: u64 },
    /// Hand v0 over in split form held under different params than the
    /// plan binds.
    SplitFormTypeMismatch,
    /// Elect v3 for split-form hand-off under a concat-less instance.
    SplitFormOutputNoConcat,
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0u32..4).prop_map(Mutation::UnslotValue),
        (0u32..4, 0u32..8).prop_map(|(which, off)| Mutation::SlotOutOfRange { which, off }),
        (0u32..4, 1u32..4).prop_map(|(base, delta)| Mutation::AliasSlots { base, delta }),
        Just(Mutation::DropSplitInput),
        (0u32..8).prop_map(Mutation::BogusNode),
        Just(Mutation::DiscardConsumedOutput),
        Just(Mutation::DiscardUserVisibleOutput),
        Just(Mutation::InPlaceOnReturn),
        Just(Mutation::InPlaceBadStrategy),
        Just(Mutation::StaleRead),
        Just(Mutation::MutSharedAlias),
        Just(Mutation::ForeignOutput),
        Just(Mutation::TerminalInput),
        Just(Mutation::InfoUnavailable),
        (1u64..2 * N).prop_map(|len| Mutation::ElementMismatch {
            len: if len == N { N + N } else { len },
        }),
        (1u64..N, 1u64..5).prop_map(|(split, skip)| Mutation::SplitFormGap { split, skip }),
        (1u64..9).prop_map(|extra| Mutation::SplitFormOverrun { extra }),
        Just(Mutation::SplitFormTypeMismatch),
        Just(Mutation::SplitFormOutputNoConcat),
    ]
}

/// Put v0 in split form holding `pieces` under `held`, as if its
/// producing stage elided the merge.
fn set_split_form(graph: &mut DataflowGraph, pieces: Vec<(u64, u64)>, held: SplitInstance) {
    let dummy = DataValue::new(FloatValue(0.0));
    let pieces = pieces
        .into_iter()
        .map(|(s, e)| (s, e, dummy.clone()))
        .collect();
    let sf = SplitForm::new_unchecked(pieces, N, held, 8).expect("ArraySplit has concat");
    let entry = &mut graph.values[0];
    entry.ready = false;
    entry.split_form = Some(Arc::new(sf));
}

fn apply(s: &mut Scenario, m: &Mutation) {
    match m {
        Mutation::UnslotValue(which) => {
            s.plan.slots.remove(&ValueId(*which));
        }
        Mutation::SlotOutOfRange { which, off } => {
            let slot = s.plan.num_slots + off;
            s.plan.slots.insert(ValueId(*which), slot);
        }
        Mutation::AliasSlots { base, delta } => {
            let other = (base + delta) % 4;
            let slot = s.plan.slots[&ValueId(*base)];
            s.plan.slots.insert(ValueId(other), slot);
        }
        Mutation::DropSplitInput => {
            s.plan.inputs.clear();
        }
        Mutation::BogusNode(k) => {
            s.plan.nodes = vec![NodeId(3 + k)];
        }
        Mutation::DiscardConsumedOutput => {
            s.plan.outputs[1].kind = OutputKind::Discard;
        }
        Mutation::DiscardUserVisibleOutput => {
            s.plan.outputs[0].kind = OutputKind::Discard;
        }
        Mutation::InPlaceOnReturn => {
            s.plan.outputs[1].kind = OutputKind::InPlace;
        }
        Mutation::InPlaceBadStrategy => {
            s.plan.outputs[0].instance = commut_inst();
        }
        Mutation::StaleRead => {
            s.graph.nodes[1].args = vec![ValueId(0)];
        }
        Mutation::MutSharedAlias => {
            s.plan.broadcast.push(ValueId(0));
        }
        Mutation::ForeignOutput => {
            s.plan.outputs.push(StageOutput {
                value: ValueId(0),
                instance: arr(N),
                kind: OutputKind::Merge,
                last_use: false,
            });
        }
        Mutation::TerminalInput => {
            s.plan.inputs[0].1 = terminal_inst();
        }
        Mutation::InfoUnavailable => {
            s.plan.inputs[0].1 = no_info_inst();
        }
        Mutation::ElementMismatch { len } => {
            // v4 was created with N/2 elements; rebuild it at `len` so
            // the mismatch magnitude varies per case.
            s.graph.values[4].data = Some(vec_value(*len));
            s.plan.inputs.push((ValueId(4), arr(*len)));
            s.plan.slots.insert(ValueId(4), 4);
            s.plan.num_slots = 5;
        }
        Mutation::SplitFormGap { split, skip } => {
            set_split_form(
                &mut s.graph,
                vec![(0, *split), (*split + *skip, N.max(*split + *skip))],
                arr(N),
            );
        }
        Mutation::SplitFormOverrun { extra } => {
            set_split_form(&mut s.graph, vec![(0, N + *extra)], arr(N));
        }
        Mutation::SplitFormTypeMismatch => {
            // Pieces contiguous and complete, but held under different
            // split parameters than the plan's binding.
            set_split_form(&mut s.graph, vec![(0, N)], arr(N + 1));
        }
        Mutation::SplitFormOutputNoConcat => {
            s.plan.outputs[1].kind = OutputKind::SplitForm;
            s.plan.outputs[1].instance = commut_inst();
        }
    }
}

/// The typed rejection each mutation must produce.
fn expected(err: &VerifyError, m: &Mutation) -> bool {
    match m {
        Mutation::UnslotValue(w) => {
            matches!(err, VerifyError::SlotMissing { value } if value == w)
        }
        Mutation::SlotOutOfRange { which, .. } => {
            matches!(err, VerifyError::SlotOutOfRange { value, .. } if value == which)
        }
        Mutation::AliasSlots { .. } => matches!(err, VerifyError::SlotAliased { .. }),
        Mutation::DropSplitInput => {
            matches!(err, VerifyError::UseBeforeDef { node: 0, value: 0 })
        }
        Mutation::BogusNode(_) => matches!(err, VerifyError::NodeOutOfRange { .. }),
        Mutation::DiscardConsumedOutput => matches!(
            err,
            VerifyError::DiscardedLive {
                value: 3,
                consumer: Some(2),
            }
        ),
        Mutation::DiscardUserVisibleOutput => matches!(
            err,
            VerifyError::DiscardedLive {
                value: 2,
                consumer: None,
            }
        ),
        Mutation::InPlaceOnReturn => {
            matches!(err, VerifyError::InPlaceNotMutVersion { value: 3 })
        }
        Mutation::InPlaceBadStrategy => {
            matches!(err, VerifyError::InPlaceBadStrategy { value: 2, .. })
        }
        Mutation::StaleRead => matches!(
            err,
            VerifyError::StaleRead {
                node: 1,
                value: 0,
                mutated_by: 0,
            }
        ),
        Mutation::MutSharedAlias => {
            matches!(err, VerifyError::MutSharedAlias { node: 0, value: 0 })
        }
        Mutation::ForeignOutput => {
            matches!(err, VerifyError::OutputNotProduced { value: 0 })
        }
        Mutation::TerminalInput => {
            matches!(err, VerifyError::TerminalInput { value: 0, .. })
        }
        Mutation::InfoUnavailable => {
            matches!(err, VerifyError::InfoUnavailable { value: 0, .. })
        }
        Mutation::ElementMismatch { len } => matches!(
            err,
            VerifyError::ElementMismatch { value: 4, expected: N, actual } if actual == len
        ),
        Mutation::SplitFormGap { split, .. } => {
            matches!(err, VerifyError::SplitFormGap { value: 0, at } if at == split)
        }
        Mutation::SplitFormOverrun { .. } => {
            matches!(err, VerifyError::SplitFormGap { value: 0, at: N })
        }
        Mutation::SplitFormTypeMismatch => {
            matches!(err, VerifyError::SplitFormTypeMismatch { value: 0, .. })
        }
        Mutation::SplitFormOutputNoConcat => {
            matches!(err, VerifyError::SplitFormNoConcat { value: 3, .. })
        }
    }
}

#[test]
fn valid_plan_verifies() {
    let s = scenario();
    let cfg = Config::with_workers(2);
    verify_stage(&s.graph, &s.plan, &cfg).expect("the unmutated scenario must verify");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutated_plans_are_rejected(m in mutation()) {
        let mut s = scenario();
        let cfg = Config::with_workers(2);
        prop_assert!(
            verify_stage(&s.graph, &s.plan, &cfg).is_ok(),
            "baseline scenario failed to verify"
        );
        apply(&mut s, &m);
        match verify_stage(&s.graph, &s.plan, &cfg) {
            Err(e) => prop_assert!(
                expected(&e, &m),
                "mutation {:?} produced unexpected rejection: {}",
                m, e
            ),
            Ok(()) => prop_assert!(false, "mutation {:?} was silently accepted", m),
        }
    }
}
