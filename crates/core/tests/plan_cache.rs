//! Tests of the plan cache: repeated structurally identical pipelines
//! replay memoized stage skeletons (including across contexts); shape
//! or split-type changes miss; replayed plans produce correct results.

use std::sync::Arc;

use mozart_core::annotation::{concrete, Annotation};
use mozart_core::prelude::*;

/// In-place scale over a shared buffer (the MKL idiom: aliasing
/// `SliceView` pieces, nothing to merge).
fn scale_annotation() -> Arc<Annotation> {
    Annotation::new("cache_scale", |inv| {
        let piece = inv.arg::<SliceView>(0)?;
        let k = inv.float(1)?;
        // SAFETY: the executor hands each worker disjoint ranges.
        for x in unsafe { piece.as_slice_mut() } {
            *x *= k;
        }
        Ok(None)
    })
    // MKL convention: split parameters come from the explicit size
    // argument, never from the mutable array itself.
    .mut_arg("xs", concrete(Arc::new(ArraySplit), vec![2]))
    .arg("k", mozart_core::annotation::missing())
    .arg("n", mozart_core::annotation::missing())
    .build()
}

/// Like [`scale_annotation`] but split with `SizeSplit`-parameterized
/// `ArraySplit` via a different split type name is not possible without
/// a second splitter; instead this variant differs structurally (extra
/// shift argument), which must fingerprint differently.
fn scale_shift_annotation() -> Arc<Annotation> {
    Annotation::new("cache_scale_shift", |inv| {
        let piece = inv.arg::<SliceView>(0)?;
        let k = inv.float(1)?;
        let b = inv.float(2)?;
        // SAFETY: disjoint ranges per worker.
        for x in unsafe { piece.as_slice_mut() } {
            *x = *x * k + b;
        }
        Ok(None)
    })
    .mut_arg("xs", concrete(Arc::new(ArraySplit), vec![3]))
    .arg("k", mozart_core::annotation::missing())
    .arg("b", mozart_core::annotation::missing())
    .arg("n", mozart_core::annotation::missing())
    .build()
}

fn cached_ctx(cache: &Arc<PlanCache>, workers: usize, batch: u64) -> MozartContext {
    ArraySplit::register_default();
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(batch);
    cfg.pedantic = true;
    let ctx = MozartContext::new(cfg);
    ctx.attach_plan_cache(cache.clone());
    ctx
}

fn run_scale(ctx: &MozartContext, annot: &Arc<Annotation>, n: usize, k: f64) -> Vec<f64> {
    let data = SharedVec::from_vec((0..n).map(|i| i as f64).collect());
    let dv = DataValue::new(VecValue(data.clone()));
    let nn = DataValue::new(IntValue(n as i64));
    ctx.call(
        annot,
        vec![dv.clone(), DataValue::new(FloatValue(k)), nn.clone()],
    )
    .unwrap();
    ctx.call(annot, vec![dv, DataValue::new(FloatValue(k)), nn])
        .unwrap();
    ctx.evaluate().unwrap();
    data.as_slice().to_vec()
}

#[test]
fn repeated_pipeline_hits_across_contexts() {
    let cache = Arc::new(PlanCache::new(16));
    let annot = scale_annotation();

    // First context: plans from scratch, records.
    let out1 = run_scale(&cached_ctx(&cache, 1, 4), &annot, 16, 2.0);
    let expect: Vec<f64> = (0..16).map(|i| i as f64 * 4.0).collect();
    assert_eq!(out1, expect);
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 1, 1));

    // Fresh context, identical structure and shapes: replays the plan.
    let out2 = run_scale(&cached_ctx(&cache, 1, 4), &annot, 16, 2.0);
    assert_eq!(out2, expect, "replayed plan must compute the same result");
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

    // Different scalar (the constant is part of the fingerprint — it
    // feeds the function): a miss, and still correct.
    let out3 = run_scale(&cached_ctx(&cache, 1, 4), &annot, 16, 3.0);
    let expect3: Vec<f64> = (0..16).map(|i| i as f64 * 9.0).collect();
    assert_eq!(out3, expect3);
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (1, 2));
}

#[test]
fn repeated_evaluation_hits_within_one_context() {
    let cache = Arc::new(PlanCache::new(16));
    let annot = scale_annotation();
    let ctx = cached_ctx(&cache, 1, 4);

    let data = SharedVec::from_vec(vec![1.0; 12]);
    let dv = DataValue::new(VecValue(data.clone()));
    for _ in 0..3 {
        ctx.call(
            &annot,
            vec![
                dv.clone(),
                DataValue::new(FloatValue(2.0)),
                DataValue::new(IntValue(12)),
            ],
        )
        .unwrap();
        ctx.evaluate().unwrap();
    }
    assert_eq!(data.as_slice(), &[8.0; 12] as &[f64]);
    // Segment 1 misses; segments 2 and 3 (arg is now the latest
    // mut-version, same shape) hit.
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (2, 1));
}

#[test]
fn shape_change_misses_and_recomputes() {
    let cache = Arc::new(PlanCache::new(16));
    let annot = scale_annotation();

    run_scale(&cached_ctx(&cache, 1, 4), &annot, 16, 2.0);
    // Same pipeline over a different length: must not replay the n=16
    // plan (its ArraySplit parameters would be stale).
    let out = run_scale(&cached_ctx(&cache, 1, 4), &annot, 24, 2.0);
    let expect: Vec<f64> = (0..24).map(|i| i as f64 * 4.0).collect();
    assert_eq!(out, expect);
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));

    // And each shape now replays independently.
    run_scale(&cached_ctx(&cache, 1, 4), &annot, 16, 2.0);
    run_scale(&cached_ctx(&cache, 1, 4), &annot, 24, 2.0);
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (2, 2));
}

#[test]
fn pipeline_structure_change_misses() {
    let cache = Arc::new(PlanCache::new(16));
    run_scale(&cached_ctx(&cache, 1, 4), &scale_annotation(), 16, 2.0);
    // Different annotation (different callee and split-type exprs) over
    // identical data: a distinct fingerprint, planned fresh.
    let ctx = cached_ctx(&cache, 1, 4);
    let data = SharedVec::from_vec((0..16).map(|i| i as f64).collect());
    let dv = DataValue::new(VecValue(data.clone()));
    ctx.call(
        &scale_shift_annotation(),
        vec![
            dv,
            DataValue::new(FloatValue(2.0)),
            DataValue::new(FloatValue(1.0)),
            DataValue::new(IntValue(16)),
        ],
    )
    .unwrap();
    ctx.evaluate().unwrap();
    let expect: Vec<f64> = (0..16).map(|i| i as f64 * 2.0 + 1.0).collect();
    assert_eq!(data.as_slice(), expect.as_slice());
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.entries), (0, 2, 2));
}

#[test]
fn pipeline_ablation_does_not_share_plans() {
    // The "-pipe" ablation (one function per stage) must not replay a
    // plan recorded with pipelining on, or vice versa, even through one
    // shared cache.
    ArraySplit::register_default();
    let cache = Arc::new(PlanCache::new(16));
    let annot = scale_annotation();

    let run = |pipeline: bool| {
        let mut cfg = Config::with_workers(1);
        cfg.batch_override = Some(4);
        cfg.pipeline = pipeline;
        let ctx = MozartContext::new(cfg);
        ctx.attach_plan_cache(cache.clone());
        let stages_before = ctx.stats().stages;
        let out = run_scale(&ctx, &annot, 16, 2.0);
        (out, ctx.stats().stages - stages_before)
    };

    let expect: Vec<f64> = (0..16).map(|i| i as f64 * 4.0).collect();
    let (out_piped, stages_piped) = run(true);
    assert_eq!(out_piped, expect);
    assert_eq!(stages_piped, 1, "both calls pipeline into one stage");
    let (out_unpiped, stages_unpiped) = run(false);
    assert_eq!(out_unpiped, expect);
    assert_eq!(stages_unpiped, 2, "-pipe: one stage per call");
    let s = cache.stats();
    assert_eq!(
        (s.hits, s.misses, s.entries),
        (0, 2, 2),
        "the two settings key distinct cache entries"
    );
    // And each setting replays its own entry with its own granularity.
    let (_, stages_again) = run(false);
    assert_eq!(stages_again, 2);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn cache_capacity_is_bounded() {
    let cache = Arc::new(PlanCache::new(2));
    let annot = scale_annotation();
    for n in [8usize, 12, 16, 20] {
        run_scale(&cached_ctx(&cache, 1, 4), &annot, n, 2.0);
    }
    let s = cache.stats();
    assert_eq!(s.misses, 4);
    assert!(s.entries <= 2, "capacity respected, got {}", s.entries);
}

#[test]
fn multi_worker_replay_is_correct() {
    // Replayed plans must execute identically on the pool path.
    let cache = Arc::new(PlanCache::new(4));
    let annot = scale_annotation();
    let out1 = run_scale(&cached_ctx(&cache, 3, 8), &annot, 64, 2.0);
    let out2 = run_scale(&cached_ctx(&cache, 3, 8), &annot, 64, 2.0);
    let expect: Vec<f64> = (0..64).map(|i| i as f64 * 4.0).collect();
    assert_eq!(out1, expect);
    assert_eq!(out2, expect);
    assert_eq!(cache.stats().hits, 1);
}
