//! Tests of the placement-merge fast path and the overlapped final
//! merge: out-of-claim-order batches must land at the right element
//! offsets, `NULL`-split tails must under-fill without corrupting
//! neighbors, placement outputs must coexist with mut-alias outputs in
//! one stage, and non-placement final merges must overlap on the pool
//! without changing results.

use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use mozart_core::annotation::{concrete, missing, Annotation};
use mozart_core::buffer::SharedVec;
use mozart_core::prelude::*;
use mozart_core::ArraySplit;

/// An owned chunk of floats without placement support (functional
/// pieces, like a NumPy result); merge concatenates in order.
#[derive(Debug, Clone)]
struct Chunk(Arc<Vec<f64>>);

impl mozart_core::value::DataObject for Chunk {
    fn type_name(&self) -> &'static str {
        "Chunk"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

struct ChunkSplit;

impl Splitter for ChunkSplit {
    fn name(&self) -> &'static str {
        "ChunkSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let c = ctor_args[0]
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit ctor".into()))?;
        Ok(vec![c.0.len() as i64])
    }
    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params[0] as u64,
            elem_size_bytes: 8,
        })
    }
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let c = arg
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit split".into()))?;
        let total = params[0] as u64;
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total) as usize;
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0[range.start as usize..end].to_vec(),
        )))))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut out = Vec::new();
        for p in pieces {
            let c = p
                .downcast_ref::<Chunk>()
                .ok_or(Error::Library("ChunkSplit merge".into()))?;
            out.extend_from_slice(&c.0);
        }
        Ok(DataValue::new(Chunk(Arc::new(out))))
    }
}

/// A placement-capable splitter over [`VecValue`] that *over-reports*
/// its element count by `claim_factor`: past the real length, `split`
/// returns the paper's `NULL`, so placement outputs under-fill and must
/// truncate to the written prefix. Params: `[claimed, real]`.
struct PlacedSplit {
    claim_factor: i64,
}

impl Splitter for PlacedSplit {
    fn name(&self) -> &'static str {
        "PlacedSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let v = ctor_args[0]
            .downcast_ref::<VecValue>()
            .ok_or(Error::Library("PlacedSplit ctor".into()))?;
        let real = v.0.len() as i64;
        Ok(vec![real * self.claim_factor, real])
    }
    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params[0] as u64,
            elem_size_bytes: 8,
        })
    }
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let v = arg
            .downcast_ref::<VecValue>()
            .ok_or(Error::Library("PlacedSplit split".into()))?;
        let real = params[1] as u64;
        if range.start >= real {
            return Ok(None);
        }
        let end = range.end.min(real) as usize;
        let piece = v.0.as_slice()[range.start as usize..end].to_vec();
        Ok(Some(DataValue::new(VecValue(SharedVec::from_vec(piece)))))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut out = Vec::new();
        for p in pieces {
            let v = p
                .downcast_ref::<VecValue>()
                .ok_or(Error::Library("PlacedSplit merge".into()))?;
            out.extend_from_slice(v.0.as_slice());
        }
        Ok(DataValue::new(VecValue(SharedVec::from_vec(out))))
    }
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Concat {
            placement: Some(Arc::new(PlacedPlacement)),
        }
    }
}

/// Placement capability of [`PlacedSplit`]: params fully determine the
/// layout, so allocation happens at stage start (no exemplar needed).
struct PlacedPlacement;

impl Placement for PlacedPlacement {
    fn alloc_merged(
        &self,
        total_elements: u64,
        _params: &Params,
        _exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>> {
        Ok(Some(DataValue::new(VecValue(SharedVec::zeros_prefaulted(
            total_elements as usize,
        )))))
    }
    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64> {
        Placement::write_piece(&ArraySplit, out, offset, piece)
    }
    fn truncate_merged(&self, out: DataValue, elements: u64, params: &Params) -> Result<DataValue> {
        Placement::truncate_merged(&ArraySplit, out, elements, params)
    }
}

fn ctx(workers: usize, batch: u64, placement: bool) -> MozartContext {
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(batch);
    cfg.pedantic = true;
    cfg.placement_merge = placement;
    MozartContext::new(cfg)
}

fn vec_value(n: usize) -> DataValue {
    DataValue::new(VecValue(SharedVec::from_vec(
        (0..n).map(|i| i as f64).collect(),
    )))
}

/// Scale an array through a fresh-allocation return (placement merge),
/// sleeping so pool workers claim batches out of order.
fn scaled_fresh_annotation(splitter: Arc<dyn Splitter>, sleep: Duration) -> Arc<Annotation> {
    Annotation::new("scaled_fresh", move |inv| {
        let v = inv.arg::<VecValue>(0)?;
        std::thread::sleep(sleep);
        let out: Vec<f64> = v.0.as_slice().iter().map(|x| x * 2.0).collect();
        Ok(Some(DataValue::new(VecValue(SharedVec::from_vec(out)))))
    })
    .arg("xs", concrete(splitter.clone(), vec![0]))
    .ret(concrete(splitter, vec![0]))
    .build()
}

#[test]
fn out_of_order_placement_writes_land_at_their_offsets() {
    // 48 one-element batches across 4 workers, each sleeping long
    // enough that completion order differs from element order; the
    // placement output must still be in element order.
    let n = 48u64;
    let c = ctx(4, 1, true);
    let splitter: Arc<dyn Splitter> = Arc::new(PlacedSplit { claim_factor: 1 });
    let annot = scaled_fresh_annotation(splitter, Duration::from_micros(300));
    let fut = c
        .call(&annot, vec![vec_value(n as usize)])
        .unwrap()
        .unwrap();
    let out = fut.get().unwrap();
    let v = out.downcast_ref::<VecValue>().unwrap();
    let expect: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
    assert_eq!(v.0.as_slice(), &expect[..]);
    let stats = c.stats();
    assert_eq!(
        stats.placement_writes, n,
        "every batch wrote its piece in place"
    );
}

#[test]
fn null_split_tail_underfills_without_corrupting_neighbors() {
    // The splitter claims 2n elements but serves n: workers claiming
    // past n see NULL and stop. The placement output must truncate to
    // exactly the written prefix, with every real element intact.
    let n = 40u64;
    let c = ctx(4, 1, true);
    let splitter: Arc<dyn Splitter> = Arc::new(PlacedSplit { claim_factor: 2 });
    let annot = scaled_fresh_annotation(splitter, Duration::from_micros(200));
    let fut = c
        .call(&annot, vec![vec_value(n as usize)])
        .unwrap()
        .unwrap();
    let out = fut.get().unwrap();
    let v = out.downcast_ref::<VecValue>().unwrap();
    let expect: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
    assert_eq!(v.0.len(), n as usize, "truncated to the written prefix");
    assert_eq!(v.0.as_slice(), &expect[..]);
}

#[test]
fn clipped_final_piece_truncates_to_actual_elements() {
    // The real total (37) is not a multiple of the batch size (8), so
    // the last produced piece covers only 5 of its batch's 8 claimed
    // elements before the NULL tail. Coverage must count the piece's
    // actual length â a batch-range count would truncate to 40 and
    // leak 3 never-written elements.
    let n = 37u64;
    let c = ctx(2, 8, true);
    let splitter: Arc<dyn Splitter> = Arc::new(PlacedSplit { claim_factor: 2 });
    let annot = scaled_fresh_annotation(splitter, Duration::ZERO);
    let fut = c
        .call(&annot, vec![vec_value(n as usize)])
        .unwrap()
        .unwrap();
    let out = fut.get().unwrap();
    let v = out.downcast_ref::<VecValue>().unwrap();
    let expect: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
    assert_eq!(v.0.len(), n as usize, "clipped piece shrinks the output");
    assert_eq!(v.0.as_slice(), &expect[..]);
}

#[test]
fn placement_and_mut_alias_outputs_coexist_in_one_stage() {
    // One call both mutates an argument in place (the MKL convention:
    // an ArraySplit mut arg whose SliceView writes land in the parent)
    // and returns fresh pieces (merged by placement). Both outputs must
    // come out right from a single stage.
    let n = 32usize;
    let c = ctx(3, 4, true);
    let annot = Annotation::new("scale_and_square", |inv| {
        let xs = inv.arg::<VecValue>(0)?;
        let out = inv.arg::<mozart_core::SliceView>(1)?;
        let src = xs.0.as_slice();
        // SAFETY: the executor hands each worker disjoint ranges.
        let dst = unsafe { out.as_slice_mut() };
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s * s;
        }
        let fresh: Vec<f64> = src.iter().map(|x| x * 3.0).collect();
        Ok(Some(DataValue::new(VecValue(SharedVec::from_vec(fresh)))))
    })
    .arg(
        "xs",
        concrete(Arc::new(PlacedSplit { claim_factor: 1 }), vec![0]),
    )
    // Split parameters come from `xs` (same length), not the mut arg.
    .mut_arg("out", concrete(Arc::new(ArraySplit), vec![0]))
    .ret(concrete(Arc::new(PlacedSplit { claim_factor: 1 }), vec![0]))
    .build();

    let squares = SharedVec::<f64>::zeros(n);
    let fut = c
        .call(
            &annot,
            vec![vec_value(n), DataValue::new(VecValue(squares.clone()))],
        )
        .unwrap()
        .unwrap();
    let ret = fut.get().unwrap();
    let tripled = ret.downcast_ref::<VecValue>().unwrap();
    for i in 0..n {
        assert_eq!(tripled.0.as_slice()[i], i as f64 * 3.0, "ret piece {i}");
        assert_eq!(squares.as_slice()[i], (i * i) as f64, "mut-alias {i}");
    }
    assert!(c.stats().placement_writes > 0);
}

#[test]
fn non_placement_final_merge_overlaps_on_the_pool() {
    // ChunkSplit has no placement support and the output is only
    // observable through the user's Future (last use), so its final
    // merge must dispatch to the pool as a side job — with identical
    // results to the serial ablation.
    let n = 64u64;
    let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let run = |placement: bool| {
        let c = ctx(4, 2, placement);
        let annot = Annotation::new("offset", |inv| {
            let ch = inv.arg::<Chunk>(0)?;
            let k = inv.float(1)?;
            Ok(Some(DataValue::new(Chunk(Arc::new(
                ch.0.iter().map(|x| x + k).collect(),
            )))))
        })
        .arg("xs", concrete(Arc::new(ChunkSplit), vec![0]))
        .arg("k", missing())
        .ret(concrete(Arc::new(ChunkSplit), vec![0]))
        .build();
        let fut = c
            .call(
                &annot,
                vec![
                    DataValue::new(Chunk(Arc::new(data.clone()))),
                    DataValue::new(FloatValue(0.5)),
                ],
            )
            .unwrap()
            .unwrap();
        let out = fut.get().unwrap();
        let ch = out.downcast_ref::<Chunk>().unwrap().0.clone();
        (ch, c.stats(), c.pool_stats())
    };
    let (on, stats_on, _pool_on) = run(true);
    let (off, stats_off, _) = run(false);
    assert_eq!(on, off, "overlapped merge must not change results");
    let expect: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
    assert_eq!(*on, expect);
    assert_eq!(stats_on.overlapped_merges, 1, "{stats_on:?}");
    assert_eq!(stats_on.placement_writes, 0, "ChunkSplit has no placement");
    assert_eq!(stats_off.overlapped_merges, 0, "{stats_off:?}");
}

#[test]
fn overlapped_merges_join_on_multi_stage_pipelines() {
    // Several independent single-call stages in one evaluation: every
    // stage's final merge defers, and every Future must still read the
    // right value after evaluate().
    let c = ctx(3, 2, true);
    let annot = Annotation::new("neg", |inv| {
        let ch = inv.arg::<Chunk>(0)?;
        Ok(Some(DataValue::new(Chunk(Arc::new(
            ch.0.iter().map(|x| -x).collect(),
        )))))
    })
    .arg("xs", concrete(Arc::new(ChunkSplit), vec![0]))
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build();
    let mut futs = Vec::new();
    for len in [7usize, 12, 19, 26] {
        let data: Vec<f64> = (0..len).map(|i| i as f64).collect();
        futs.push((
            len,
            c.call(&annot, vec![DataValue::new(Chunk(Arc::new(data)))])
                .unwrap()
                .unwrap(),
        ));
    }
    c.evaluate().unwrap();
    for (len, fut) in futs {
        let out = fut.get().unwrap();
        let ch = out.downcast_ref::<Chunk>().unwrap();
        let expect: Vec<f64> = (0..len).map(|i| -(i as f64)).collect();
        assert_eq!(*ch.0, expect);
    }
    let stats = c.stats();
    assert_eq!(stats.stages, 4);
    assert!(
        stats.overlapped_merges >= 1,
        "multi-batch stages defer their merges: {stats:?}"
    );
}
