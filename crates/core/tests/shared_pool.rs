//! Tests of the shared worker pool: multiple contexts attached to one
//! [`PoolHandle`] must evaluate concurrently without deadlock, produce
//! correct results, and be accounted per session; guided claim spans
//! must cut cursor claims without losing batches.

use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use mozart_core::annotation::{concrete, missing, Annotation};
use mozart_core::prelude::*;

/// An owned chunk of floats (functional pieces, like a NumPy result).
#[derive(Debug, Clone)]
struct Chunk(Arc<Vec<f64>>);

impl mozart_core::value::DataObject for Chunk {
    fn type_name(&self) -> &'static str {
        "Chunk"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Copying range splitter over [`Chunk`]s; merge concatenates in order.
struct ChunkSplit;

impl Splitter for ChunkSplit {
    fn name(&self) -> &'static str {
        "ChunkSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let c = ctor_args[0]
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit ctor".into()))?;
        Ok(vec![c.0.len() as i64])
    }
    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params[0] as u64,
            elem_size_bytes: 8,
        })
    }
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let c = arg
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit split".into()))?;
        let total = params[0] as u64;
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total) as usize;
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0[range.start as usize..end].to_vec(),
        )))))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut out = Vec::new();
        for p in pieces {
            let c = p
                .downcast_ref::<Chunk>()
                .ok_or(Error::Library("ChunkSplit merge".into()))?;
            out.extend_from_slice(&c.0);
        }
        Ok(DataValue::new(Chunk(Arc::new(out))))
    }
}

fn scale_annotation(sleep_per_batch: Duration) -> Arc<Annotation> {
    Annotation::new("shared_scale", move |inv| {
        let c = inv.arg::<Chunk>(0)?;
        let k = inv.float(1)?;
        if !sleep_per_batch.is_zero() {
            std::thread::sleep(sleep_per_batch);
        }
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0.iter().map(|x| x * k).collect(),
        )))))
    })
    .arg("xs", concrete(Arc::new(ChunkSplit), vec![0]))
    .arg("k", missing())
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build()
}

fn ctx_on(pool: &PoolHandle, workers: usize, batch: u64, session: u64) -> MozartContext {
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(batch);
    cfg.pedantic = true;
    let ctx = MozartContext::new(cfg);
    ctx.attach_pool(pool.clone()).set_session_tag(session);
    ctx
}

#[test]
fn two_contexts_share_one_pool_concurrently() {
    let pool = PoolHandle::new(2);
    let annot = scale_annotation(Duration::from_micros(100));
    let n = 48u64;

    let run = |session: u64, k: f64| {
        let pool = pool.clone();
        let annot = annot.clone();
        move || {
            let ctx = ctx_on(&pool, 3, 1, session);
            // Several evaluations per session so the two sessions'
            // jobs interleave on the shared queue.
            for round in 0..4 {
                let data = Chunk(Arc::new((0..n).map(|i| (i + round) as f64).collect()));
                let fut = ctx
                    .call(
                        &annot,
                        vec![DataValue::new(data), DataValue::new(FloatValue(k))],
                    )
                    .unwrap()
                    .unwrap();
                let out = fut.get().unwrap();
                let got = out.downcast_ref::<Chunk>().unwrap();
                let expect: Vec<f64> = (0..n).map(|i| (i + round) as f64 * k).collect();
                assert_eq!(*got.0, expect, "session {session} round {round}");
            }
        }
    };

    std::thread::scope(|s| {
        let a = s.spawn(run(101, 2.0));
        let b = s.spawn(run(202, -3.0));
        a.join().unwrap();
        b.join().unwrap();
    });

    let stats = pool.stats();
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.jobs, 8, "4 evaluations per session, all multi-batch");
    assert_eq!(stats.sessions.len(), 2, "both sessions accounted");
    for s in &stats.sessions {
        assert!(
            s.session == 101 || s.session == 202,
            "unexpected session {s:?}"
        );
        assert_eq!(s.jobs, 4);
        assert_eq!(s.batches, n * 4, "every batch processed exactly once");
    }
}

#[test]
fn shared_pool_survives_a_failing_session() {
    // One session fails mid-stage; the pool must keep serving the other.
    let pool = PoolHandle::new(1);
    let fail = Annotation::new("always_fails", |_inv| {
        Err(Error::Library("synthetic".into()))
    })
    .arg("xs", concrete(Arc::new(ChunkSplit), vec![0]))
    .ret(concrete(Arc::new(ChunkSplit), vec![0]))
    .build();

    let bad = ctx_on(&pool, 2, 1, 7);
    let data = Chunk(Arc::new(vec![1.0; 16]));
    let fut = bad
        .call(&fail, vec![DataValue::new(data)])
        .unwrap()
        .unwrap();
    assert!(matches!(fut.get(), Err(Error::Library(_))));

    let good = ctx_on(&pool, 2, 1, 8);
    let annot = scale_annotation(Duration::ZERO);
    let data = Chunk(Arc::new(vec![2.0; 16]));
    let fut = good
        .call(
            &annot,
            vec![DataValue::new(data), DataValue::new(FloatValue(5.0))],
        )
        .unwrap()
        .unwrap();
    let out = fut.get().unwrap();
    assert_eq!(*out.downcast_ref::<Chunk>().unwrap().0, vec![10.0; 16]);
}

#[test]
fn guided_claim_spans_cut_cursor_claims() {
    // 256 one-element batches on 2 participants: the first claim takes
    // remaining/(2*2) = 64 batches, so total claims stay far below the
    // batch count while every batch is still processed exactly once.
    let pool = PoolHandle::new(1);
    let ctx = ctx_on(&pool, 2, 1, 1);
    let n = 256u64;
    let annot = scale_annotation(Duration::ZERO);
    let data = Chunk(Arc::new((0..n).map(|i| i as f64).collect()));
    let fut = ctx
        .call(
            &annot,
            vec![DataValue::new(data), DataValue::new(FloatValue(1.5))],
        )
        .unwrap()
        .unwrap();
    let out = fut.get().unwrap();
    let expect: Vec<f64> = (0..n).map(|i| i as f64 * 1.5).collect();
    assert_eq!(*out.downcast_ref::<Chunk>().unwrap().0, expect);

    let stats = pool.stats();
    assert_eq!(stats.total_batches(), n, "no batch lost or double-claimed");
    let claims = stats.total_claims();
    assert!(claims >= 1);
    assert!(
        claims <= n / 4,
        "guided spans should need far fewer than {n} claims, got {claims}"
    );
}

#[test]
fn session_stats_carry_weights_and_bytes() {
    let pool = PoolHandle::new(1);
    pool.set_session_weight(55, 4);
    let ctx = ctx_on(&pool, 2, 1, 55);
    let n = 32u64;
    let annot = scale_annotation(Duration::ZERO);
    let data = Chunk(Arc::new((0..n).map(|i| i as f64).collect()));
    let fut = ctx
        .call(
            &annot,
            vec![DataValue::new(data), DataValue::new(FloatValue(2.0))],
        )
        .unwrap()
        .unwrap();
    fut.get().unwrap();

    let stats = pool.stats();
    let s = stats
        .sessions
        .iter()
        .find(|s| s.session == 55)
        .expect("session tracked");
    assert_eq!(s.weight, 4, "weight set before any job must persist");
    assert_eq!(s.batches, n);
    // ChunkSplit reports 8 bytes per element; one split input.
    assert_eq!(s.bytes, n * 8, "nominal split bytes accounted per job");

    // Weights clamp to >= 1 and update in place.
    pool.set_session_weight(55, 0);
    let s = pool
        .stats()
        .sessions
        .iter()
        .find(|s| s.session == 55)
        .cloned()
        .unwrap();
    assert_eq!(s.weight, 1);
}

#[test]
fn evaluation_meters_split_bytes_in_phase_stats() {
    let pool = PoolHandle::new(1);
    let ctx = ctx_on(&pool, 2, 4, 9);
    let n = 64u64;
    let annot = scale_annotation(Duration::ZERO);
    let data = Chunk(Arc::new((0..n).map(|i| i as f64).collect()));
    let fut = ctx
        .call(
            &annot,
            vec![DataValue::new(data), DataValue::new(FloatValue(3.0))],
        )
        .unwrap()
        .unwrap();
    fut.get().unwrap();
    let stats = ctx.stats();
    assert_eq!(
        stats.bytes_split,
        n * 8,
        "one ChunkSplit input at 8 bytes/element"
    );
    assert_eq!(
        stats.bytes_merged,
        n * 8,
        "the merged Chunk output is metered through the info API"
    );
}

#[test]
fn invalid_config_poisons_context_loudly() {
    // Regression (ISSUE 4): a NaN batch_constant used to silently clamp
    // every stage to 1-element batches; now it surfaces as a typed
    // error on the first call.
    let mut cfg = Config::with_workers(2);
    cfg.batch_constant = f64::NAN;
    let ctx = MozartContext::new(cfg);
    let annot = scale_annotation(Duration::ZERO);
    let data = Chunk(Arc::new(vec![1.0; 8]));
    let err = ctx
        .call(
            &annot,
            vec![DataValue::new(data), DataValue::new(FloatValue(1.0))],
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::InvalidConfig(_)),
        "expected InvalidConfig, got {err:?}"
    );
    // set_config with a bad config poisons an existing context too...
    let ctx = MozartContext::with_workers(1);
    let mut bad = Config::with_workers(1);
    bad.batch_constant = -1.0;
    ctx.set_config(bad);
    assert!(matches!(ctx.evaluate(), Err(Error::InvalidConfig(_))));
    // ...and attaching a valid config clears the poison (nothing was
    // ever scheduled under the rejected config).
    ctx.set_config(Config::with_workers(1));
    assert!(ctx.evaluate().is_ok());
}
