//! Split-form intermediates (ISSUE 9): a stage's merge output consumed
//! only by later re-splitting nodes crosses the stage boundary as an
//! ordered piece set ([`SplitForm`]) — no merge, no downstream
//! re-split.
//!
//! The invariants under test:
//!
//! * hand-offs elide the merge→re-split round-trip while producing
//!   results **bit-identical** to the classic path (`split_form` off);
//! * misaligned downstream batch boundaries re-slice through the split
//!   type's `Concat` capability, still bit-identically;
//! * hand-offs compose with placement merges, plan-cache replay,
//!   cooperative cancellation, and injected faults;
//! * values the application observes, `_`-typed consumers, and split
//!   types without a `Concat` capability always merge classically.

use std::sync::Arc;
use std::time::Duration;

use mozart_core::annotation::{generic, missing, unknown, Annotation};
use mozart_core::faultinject::silence_injected_panics;
use mozart_core::prelude::*;

// ---------------------------------------------------------------------
// A functional toy library over f64 arrays: every call returns a fresh
// buffer, so multi-stage chains produce real merge outputs (the
// round-trip split-form exists to elide).
// ---------------------------------------------------------------------

/// Borrow piece elements whether the piece is a `SliceView` (classic
/// split of a materialized value) or an owned `VecValue` (a split-form
/// hand-off piece, which is the producing batch's fresh result).
fn piece_elems(v: &DataValue) -> Result<Vec<f64>> {
    if let Some(v) = v.downcast_ref::<VecValue>() {
        return Ok(v.0.as_slice().to_vec());
    }
    if let Some(v) = v.downcast_ref::<SliceView>() {
        // SAFETY: the executor hands each worker disjoint ranges and
        // no one mutates the parent during the task phase.
        return Ok(unsafe { v.as_slice() }.to_vec());
    }
    Err(Error::Library(format!(
        "expected an array piece, got {}",
        v.type_name()
    )))
}

/// `ys = xs * k`, functional (returns a fresh array piece per batch).
fn vmul() -> Arc<Annotation> {
    Annotation::new("sf_vmul", |inv| {
        let xs = piece_elems(&inv.args[0])?;
        let k = inv.float(1)?;
        Ok(Some(DataValue::new(VecValue(SharedVec::from_vec(
            xs.iter().map(|x| x * k).collect(),
        )))))
    })
    .arg("xs", generic(0))
    .arg("k", missing())
    .ret(generic(0))
    .build()
}

/// `out = a + b`, functional.
fn vadd() -> Arc<Annotation> {
    Annotation::new("sf_vadd", |inv| {
        let a = piece_elems(&inv.args[0])?;
        let b = piece_elems(&inv.args[1])?;
        if a.len() != b.len() {
            return Err(Error::Library(format!(
                "sf_vadd piece length mismatch: {} vs {}",
                a.len(),
                b.len()
            )));
        }
        Ok(Some(DataValue::new(VecValue(SharedVec::from_vec(
            a.iter().zip(b.iter()).map(|(x, y)| x + y).collect(),
        )))))
    })
    .arg("a", generic(0))
    .arg("b", generic(0))
    .ret(generic(0))
    .build()
}

/// Whole-value consumer (`_`-typed argument): needs the materialized
/// array, so a producer feeding it must not hand off in split form.
fn whole_len() -> Arc<Annotation> {
    /// Merge-only split type that keeps the sole piece.
    struct FirstPiece;
    impl Splitter for FirstPiece {
        fn name(&self) -> &'static str {
            "SfFirstPiece"
        }
        fn construct(&self, _ctor_args: &[&DataValue]) -> Result<Params> {
            Ok(vec![])
        }
        fn info(&self, _arg: &DataValue, _params: &Params) -> Result<RuntimeInfo> {
            Err(Error::Library("merge-only".into()))
        }
        fn split(
            &self,
            _arg: &DataValue,
            _r: std::ops::Range<u64>,
            _p: &Params,
        ) -> Result<Option<DataValue>> {
            Err(Error::Library("merge-only".into()))
        }
        fn merge(&self, mut pieces: Vec<DataValue>, _p: &Params, _t: u64) -> Result<DataValue> {
            pieces.drain(..).next().ok_or(Error::Merge {
                split_type: "SfFirstPiece",
                message: "no pieces".into(),
            })
        }
    }
    Annotation::new("sf_whole_len", |inv| {
        let v = inv.arg::<VecValue>(0)?;
        Ok(Some(DataValue::new(IntValue(v.0.len() as i64))))
    })
    .arg("xs", missing())
    .ret(unknown(Arc::new(FirstPiece)))
    .build()
}

fn sf_ctx(workers: usize, batch: Option<u64>, split_form: bool) -> MozartContext {
    ArraySplit::register_default();
    let mut cfg = Config::with_workers(workers);
    cfg.pipeline = false; // every call its own stage: boundaries to elide
    cfg.batch_override = batch;
    cfg.split_form = split_form;
    cfg.pedantic = true;
    MozartContext::new(cfg)
}

fn input(n: usize) -> DataValue {
    DataValue::new(VecValue(SharedVec::from_vec(
        (0..n).map(|i| i as f64 - (n as f64) / 3.0).collect(),
    )))
}

/// Run `x*2 → *3 → *0.5` with intermediates dropped, returning the
/// final elements.
fn run_chain(ctx: &MozartContext, n: usize) -> Vec<f64> {
    let m = vmul();
    let f1 = ctx
        .call(&m, vec![input(n), DataValue::new(FloatValue(2.0))])
        .unwrap()
        .unwrap();
    let f2 = ctx
        .call(&m, vec![f1.as_value(), DataValue::new(FloatValue(3.0))])
        .unwrap()
        .unwrap();
    let f3 = ctx
        .call(&m, vec![f2.as_value(), DataValue::new(FloatValue(0.5))])
        .unwrap()
        .unwrap();
    drop((f1, f2)); // intermediates unobservable: hand-off candidates
    let out = f3.get().unwrap();
    out.downcast_ref::<VecValue>()
        .unwrap()
        .0
        .as_slice()
        .to_vec()
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn handoff_elides_merges_bit_identically() {
    let n = 48;
    let on = sf_ctx(3, Some(7), true);
    let got = run_chain(&on, n);
    let off = sf_ctx(3, Some(7), false);
    let baseline = run_chain(&off, n);
    assert_eq!(got, baseline, "split-form must be bit-identical");

    let s_on = on.stats();
    let s_off = off.stats();
    assert_eq!(
        s_on.split_form_handoffs, 2,
        "both dropped intermediates hand off"
    );
    assert_eq!(s_off.split_form_handoffs, 0, "ablation must not hand off");
    assert_eq!(
        s_on.split_form_reslices, 0,
        "identical batch geometry serves whole-piece clones"
    );
    assert_eq!(s_on.split_form_fallbacks, 0);
    // The held final future is user-visible and must merge classically;
    // its fresh owned pieces take the placement path, proving the two
    // merge modes compose in one evaluation.
    assert!(s_on.placement_writes > 0, "final output still merges");
    assert_eq!(s_on.stages, 3, "-pipe ablation: one stage per call");
}

#[test]
fn misaligned_downstream_batches_reslice_through_concat() {
    // No batch override: the heuristic sizes batches from the summed
    // per-element footprint. Stage 1 splits one array (8 B/elem);
    // stage 2 splits two (16 B/elem), so its batches are half the
    // producer's piece size and every range needs a concat re-slice.
    ArraySplit::register_default();
    let n = 128usize;
    let mk = |split_form: bool| {
        let mut cfg = Config::with_workers(2);
        cfg.pipeline = false;
        cfg.l2_bytes = 512;
        cfg.batch_constant = 1.0;
        cfg.batch_override = None;
        cfg.split_form = split_form;
        cfg.pedantic = true;
        MozartContext::new(cfg)
    };
    let run = |ctx: &MozartContext| {
        let f1 = ctx
            .call(&vmul(), vec![input(n), DataValue::new(FloatValue(2.0))])
            .unwrap()
            .unwrap();
        let fz = ctx
            .call(&vadd(), vec![f1.as_value(), input(n)])
            .unwrap()
            .unwrap();
        drop(f1);
        let out = fz.get().unwrap();
        out.downcast_ref::<VecValue>()
            .unwrap()
            .0
            .as_slice()
            .to_vec()
    };
    let on = mk(true);
    let got = run(&on);
    let off = mk(false);
    assert_eq!(got, run(&off), "re-sliced hand-off must be bit-identical");
    let s = on.stats();
    assert_eq!(s.split_form_handoffs, 1);
    assert!(
        s.split_form_reslices > 0,
        "halved downstream batches cannot reuse whole pieces: {s:?}"
    );
    assert_eq!(off.stats().split_form_handoffs, 0);
}

#[test]
fn observed_and_whole_value_consumers_merge_classically() {
    // A held future is user-visible: no hand-off even though a later
    // node re-splits it.
    let ctx = sf_ctx(2, Some(8), true);
    let m = vmul();
    let f1 = ctx
        .call(&m, vec![input(32), DataValue::new(FloatValue(2.0))])
        .unwrap()
        .unwrap();
    let f2 = ctx
        .call(&m, vec![f1.as_value(), DataValue::new(FloatValue(3.0))])
        .unwrap()
        .unwrap();
    let first = f1.get().unwrap(); // forces evaluation with f1 held
    assert_eq!(ctx.stats().split_form_handoffs, 0);
    let v1 = first.downcast_ref::<VecValue>().unwrap().0.as_slice()[0];
    let v2 = f2
        .get()
        .unwrap()
        .downcast_ref::<VecValue>()
        .unwrap()
        .0
        .as_slice()[0];
    assert_eq!(v2, v1 * 3.0);

    // A `_`-typed consumer needs the whole value: the planner must
    // decline the rewrite up front (no hand-off, no fallback).
    let ctx = sf_ctx(2, Some(8), true);
    let f1 = ctx
        .call(&m, vec![input(32), DataValue::new(FloatValue(2.0))])
        .unwrap()
        .unwrap();
    let fl = ctx
        .call(&whole_len(), vec![f1.as_value()])
        .unwrap()
        .unwrap();
    drop(f1);
    let len = fl.get().unwrap();
    assert_eq!(len.downcast_ref::<IntValue>().unwrap().0, 32);
    let s = ctx.stats();
    assert_eq!(s.split_form_handoffs, 0);
    assert_eq!(s.split_form_fallbacks, 0);
}

#[test]
fn plan_cache_replay_preserves_the_rewrite() {
    let cache = Arc::new(PlanCache::new(8));
    let n = 40;
    let mut results = Vec::new();
    for round in 0..2 {
        ArraySplit::register_default();
        let mut cfg = Config::with_workers(2);
        cfg.pipeline = false;
        cfg.batch_override = Some(9);
        cfg.split_form = true;
        cfg.pedantic = true;
        let ctx = MozartContext::new(cfg);
        ctx.attach_plan_cache(cache.clone());
        results.push(run_chain(&ctx, n));
        assert_eq!(
            ctx.stats().split_form_handoffs,
            2,
            "round {round}: replayed plans must keep the rewrite"
        );
    }
    assert_eq!(results[0], results[1]);
    let s = cache.stats();
    assert_eq!(
        (s.hits, s.misses),
        (1, 1),
        "split-form inputs must not poison the cache"
    );
}

#[test]
fn split_form_off_fingerprints_separately() {
    // The same pipeline under `split_form: false` must not replay a
    // plan recorded with the rewrite applied (and vice versa).
    let cache = Arc::new(PlanCache::new(8));
    for (split_form, expect_handoffs) in [(true, 2), (false, 0)] {
        let ctx = sf_ctx(2, Some(9), split_form);
        ctx.attach_plan_cache(cache.clone());
        run_chain(&ctx, 40);
        assert_eq!(ctx.stats().split_form_handoffs, expect_handoffs);
    }
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (0, 2), "ablation shares no plans");
}

#[test]
fn handoff_composes_with_injected_faults() {
    silence_injected_panics();
    // A task panic in the consuming stage (stage 1 reads stage 0's
    // hand-off) surfaces typed, and a fault-free retry on a fresh
    // context is bit-identical to the classic path.
    let plan = Arc::new(
        FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, FaultKind::Panic).at_stage(1)),
    );
    ArraySplit::register_default();
    let mut cfg = Config::with_workers(2);
    cfg.pipeline = false;
    cfg.batch_override = Some(7);
    cfg.split_form = true;
    cfg.fault_plan = Some(plan);
    let ctx = MozartContext::new(cfg);
    let m = vmul();
    let f1 = ctx
        .call(&m, vec![input(48), DataValue::new(FloatValue(2.0))])
        .unwrap()
        .unwrap();
    let f2 = ctx
        .call(&m, vec![f1.as_value(), DataValue::new(FloatValue(3.0))])
        .unwrap()
        .unwrap();
    drop(f1);
    let err = f2.get().unwrap_err();
    assert!(
        matches!(err, Error::TaskPanicked { .. }),
        "expected TaskPanicked, got {err:?}"
    );

    let retry = sf_ctx(2, Some(7), true);
    let clean = sf_ctx(2, Some(7), false);
    assert_eq!(run_chain(&retry, 48), run_chain(&clean, 48));
    assert!(retry.stats().split_form_handoffs > 0);
}

#[test]
fn handoff_respects_cancellation() {
    let ctx = sf_ctx(2, Some(4), true);
    let token = CancelToken::new();
    token.cancel();
    ctx.set_cancel_token(token);
    let m = vmul();
    let f1 = ctx
        .call(&m, vec![input(64), DataValue::new(FloatValue(2.0))])
        .unwrap()
        .unwrap();
    let f2 = ctx
        .call(&m, vec![f1.as_value(), DataValue::new(FloatValue(3.0))])
        .unwrap()
        .unwrap();
    drop(f1);
    let err = f2.get().unwrap_err();
    assert!(matches!(err, Error::Cancelled(_)), "{err:?}");
}

#[test]
fn slow_consumer_still_sheds_on_deadline() {
    // A deadline that expires mid-chain cancels at a batch boundary of
    // whichever stage is running — hand-offs must not bypass the
    // cancellation poll.
    let ctx = sf_ctx(2, Some(1), true);
    ctx.set_cancel_token(CancelToken::with_deadline(
        std::time::Instant::now() + Duration::from_millis(10),
    ));
    let slow = Annotation::new("sf_slow", |inv| {
        let xs = piece_elems(&inv.args[0])?;
        std::thread::sleep(Duration::from_millis(2));
        Ok(Some(DataValue::new(VecValue(SharedVec::from_vec(xs)))))
    })
    .arg("xs", generic(0))
    .ret(generic(0))
    .build();
    let f1 = ctx.call(&slow, vec![input(200)]).unwrap().unwrap();
    let f2 = ctx.call(&slow, vec![f1.as_value()]).unwrap().unwrap();
    drop(f1);
    let err = f2.get().unwrap_err();
    assert!(matches!(err, Error::Cancelled(_)), "{err:?}");
    assert!(
        ctx.stats().batches < 400,
        "cancellation must abandon remaining batches"
    );
}

#[test]
fn split_form_unit_invariants() {
    // Construction validates contiguity and capability; slicing honours
    // the NULL contract and materialization equals a classic merge.
    let inst = SplitInstance::new(Arc::new(ArraySplit), vec![6]);
    let p = |xs: &[f64]| DataValue::new(VecValue(SharedVec::from_vec(xs.to_vec())));

    // Interior gap rejected.
    let gap = SplitForm::new(
        vec![(0, 2, p(&[0.0, 1.0])), (3, 6, p(&[3.0, 4.0, 5.0]))],
        6,
        inst.clone(),
        8,
    );
    assert!(gap.is_err());
    // Coverage beyond the declared total rejected.
    let over = SplitForm::new(vec![(0, 7, p(&[0.0; 7]))], 6, inst.clone(), 8);
    assert!(over.is_err());
    // Empty piece set rejected.
    assert!(SplitForm::new(vec![], 6, inst.clone(), 8).is_err());

    let sf = SplitForm::new(
        vec![
            (0, 2, p(&[0.0, 1.0])),
            (2, 4, p(&[2.0, 3.0])),
            (4, 6, p(&[4.0, 5.0])),
        ],
        6,
        inst.clone(),
        8,
    )
    .unwrap();
    assert_eq!((sf.total(), sf.covered(), sf.piece_count()), (6, 6, 3));

    // Aligned range: whole-piece clone, not a re-slice.
    let (piece, resliced) = sf.slice(2..4).unwrap().unwrap();
    assert!(!resliced);
    assert_eq!(
        piece.downcast_ref::<VecValue>().unwrap().0.as_slice(),
        &[2.0, 3.0]
    );
    // Misaligned range spanning two pieces: concat re-slice.
    let (piece, resliced) = sf.slice(1..5).unwrap().unwrap();
    assert!(resliced);
    assert_eq!(
        piece.downcast_ref::<VecValue>().unwrap().0.as_slice(),
        &[1.0, 2.0, 3.0, 4.0]
    );
    // Tail clamp and NULL past the covered range.
    let (piece, _) = sf.slice(5..9).unwrap().unwrap();
    assert_eq!(
        piece.downcast_ref::<VecValue>().unwrap().0.as_slice(),
        &[5.0]
    );
    assert!(sf.slice(6..8).unwrap().is_none());

    // Materialization equals the classic merge of the same pieces.
    let whole = sf.materialize().unwrap();
    assert_eq!(
        whole.downcast_ref::<VecValue>().unwrap().0.as_slice(),
        &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
    );

    // No concat capability → no split form.
    let unknown_inst = SplitInstance::fresh_unknown(Arc::new(ArraySplit));
    assert!(unknown_inst.split_form_concat().is_none());
    assert!(SplitForm::new(vec![(0, 2, p(&[0.0, 1.0]))], 2, unknown_inst, 8).is_err());
}
