//! Error types for the Mozart runtime.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the annotation layer, planner, or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum Error {
    /// A wrapper downcast an argument to the wrong concrete type.
    ///
    /// Carries the function name, argument index, and the expected /
    /// actual type names.
    ArgType {
        function: &'static str,
        arg: usize,
        expected: &'static str,
        actual: &'static str,
    },
    /// A function was called with the wrong number of arguments.
    ArgCount {
        function: &'static str,
        expected: usize,
        actual: usize,
    },
    /// A split type constructor could not derive its parameters.
    Constructor {
        split_type: &'static str,
        message: String,
    },
    /// The splitting API was applied to an incompatible value.
    Split {
        split_type: &'static str,
        message: String,
    },
    /// A merge operation failed (e.g. zero pieces, mismatched shapes).
    Merge {
        split_type: &'static str,
        message: String,
    },
    /// The inputs of a stage disagreed on the total number of elements.
    ///
    /// The paper requires all split functions of a stage to produce the
    /// same number of splits (§3.4); Mozart checks this at runtime (§5.2).
    ElementMismatch { expected: u64, actual: u64 },
    /// A lazy value from a different [`MozartContext`](crate::MozartContext)
    /// was passed to this context.
    ForeignValue,
    /// A value handle was consumed before the graph produced it.
    ///
    /// Indicates an internal scheduling bug, or a `Future` whose result
    /// was discarded as dead and later requested.
    ValueUnavailable,
    /// A generic split type could not be inferred and no default splitter
    /// is registered for the argument's data type.
    NoDefaultSplit { type_name: &'static str },
    /// A pedantic-mode invariant was violated (§7.1 "pedantic mode").
    Pedantic(String),
    /// The annotated library function itself reported a failure.
    Library(String),
    /// A split, library call, or merge **panicked** during execution.
    ///
    /// The executor catches the unwind at the phase boundary
    /// ([`FaultPhase`](crate::faultinject::FaultPhase) records which),
    /// so the panic fails only the submitting evaluation — the pool
    /// worker that ran the batch survives. Treated as *transient* by
    /// the serving layer (retried with backoff), because foreign
    /// library panics are routinely load- or state-dependent.
    TaskPanicked {
        /// The execution phase the panic unwound from.
        stage: crate::faultinject::FaultPhase,
        /// The panic payload, rendered as a message.
        payload: String,
    },
    /// The evaluation was abandoned at a batch-claim boundary because
    /// its [`CancelToken`](crate::faultinject::CancelToken) was
    /// cancelled or its deadline passed. Never retried.
    Cancelled(String),
    /// A fault injected by the active
    /// [`FaultPlan`](crate::faultinject::FaultPlan) (models a transient
    /// allocation or I/O failure). Treated as transient by the serving
    /// layer, like [`Error::TaskPanicked`].
    Injected(String),
    /// A [`Config`](crate::Config) field holds an unusable value (e.g. a
    /// NaN or non-positive `batch_constant`, which would silently clamp
    /// every stage to pathological 1-element batches). Surfaced when the
    /// config is attached to a context rather than mis-scheduling later.
    InvalidConfig(String),
    /// The static verifier rejected an annotation or a stage plan
    /// before execution (see [`crate::verify`]); the context is
    /// poisoned rather than risk an unsound run.
    Verify(crate::verify::VerifyError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ArgType {
                function,
                arg,
                expected,
                actual,
            } => write!(
                f,
                "{function}: argument {arg} has type {actual}, expected {expected}"
            ),
            Error::ArgCount {
                function,
                expected,
                actual,
            } => write!(f, "{function}: expected {expected} arguments, got {actual}"),
            Error::Constructor {
                split_type,
                message,
            } => {
                write!(
                    f,
                    "constructor for split type {split_type} failed: {message}"
                )
            }
            Error::Split {
                split_type,
                message,
            } => {
                write!(f, "split for split type {split_type} failed: {message}")
            }
            Error::Merge {
                split_type,
                message,
            } => {
                write!(f, "merge for split type {split_type} failed: {message}")
            }
            Error::ElementMismatch { expected, actual } => write!(
                f,
                "stage inputs disagree on total elements: expected {expected}, got {actual}"
            ),
            Error::ForeignValue => {
                write!(f, "lazy value belongs to a different Mozart context")
            }
            Error::ValueUnavailable => {
                write!(f, "value has not been produced by the dataflow graph")
            }
            Error::NoDefaultSplit { type_name } => write!(
                f,
                "cannot infer split type and no default splitter registered for {type_name}"
            ),
            Error::Pedantic(m) => write!(f, "pedantic mode violation: {m}"),
            Error::Library(m) => write!(f, "library function failed: {m}"),
            Error::TaskPanicked { stage, payload } => {
                write!(f, "{stage} panicked during execution: {payload}")
            }
            Error::Cancelled(m) => write!(f, "evaluation cancelled: {m}"),
            Error::Injected(m) => write!(f, "injected fault: {m}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::Verify(v) => write!(f, "static verification failed: {v}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::ArgType {
            function: "vd_add",
            arg: 1,
            expected: "VecValue",
            actual: "IntValue",
        };
        let s = e.to_string();
        assert!(s.contains("vd_add"));
        assert!(s.contains("VecValue"));
        assert!(s.contains("IntValue"));
    }

    #[test]
    fn fault_variants_render_their_context() {
        let e = Error::TaskPanicked {
            stage: crate::faultinject::FaultPhase::Merge,
            payload: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("merge") && s.contains("index out of bounds"),
            "{s}"
        );
        let e = Error::Cancelled("deadline exceeded".into());
        assert!(e.to_string().contains("cancelled"));
        let e = Error::Injected("alloc failure".into());
        assert!(e.to_string().contains("injected fault"));
    }

    #[test]
    fn element_mismatch_reports_both_counts() {
        let e = Error::ElementMismatch {
            expected: 10,
            actual: 20,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("20"));
    }
}
