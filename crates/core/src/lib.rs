//! # Mozart: split annotations for unmodified libraries
//!
//! A from-scratch Rust reproduction of *"Optimizing Data-Intensive
//! Computations in Existing Libraries with Split Annotations"* (Palkar &
//! Zaharia, SOSP 2019).
//!
//! Split annotations (SAs) let an annotator — the library developer or a
//! third party — enable cross-function **data-movement optimization**
//! (cache-sized pipelining) and **automatic parallelization** over
//! functions that are never modified. The annotator:
//!
//! 1. defines [split types](split::Splitter) for the library's data types
//!    and implements the splitting API (constructor / split / merge /
//!    info, Table 1 of the paper), and
//! 2. attaches an [`Annotation`] to each side-effect-free function,
//!    assigning each argument and return value a
//!    [`SplitTypeExpr`].
//!
//! At runtime, wrapper functions register calls with a [`MozartContext`]
//! (the paper's `libmozart`), which lazily captures a dataflow graph.
//! When a lazy value is accessed, the [planner] groups
//! compatible calls into *stages* using split type equality and type
//! inference, and the [executor] splits stage inputs into
//! batches sized to the L2 cache, pipelines each batch through every
//! function in the stage on one worker thread, and merges the partial
//! results.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use mozart_core::prelude::*;
//!
//! // An "existing library" function: elementwise doubling, in place.
//! fn double(xs: &mut [f64]) {
//!     for x in xs {
//!         *x *= 2.0;
//!     }
//! }
//!
//! // The annotator wraps it once. Split parameters come from the
//! // explicit size argument (the MKL convention) — never from the
//! // mutable array itself, which `mozart-check` rejects.
//! let annot = Annotation::new("double", |inv| {
//!     let piece = inv.arg::<SliceView>(1)?;
//!     // SAFETY: the Mozart executor hands each worker disjoint ranges.
//!     double(unsafe { piece.as_slice_mut() });
//!     Ok(None)
//! })
//! .arg("n", missing())
//! .mut_arg("xs", concrete(Arc::new(ArraySplit), vec![0]))
//! .build();
//!
//! // The application uses the wrapped function as always.
//! let ctx = MozartContext::with_workers(2);
//! let data = SharedVec::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
//! let n = DataValue::new(IntValue(4));
//! let dv = DataValue::new(VecValue(data.clone()));
//! ctx.call(&annot, vec![n.clone(), dv.clone()]).unwrap();
//! ctx.call(&annot, vec![n, dv]).unwrap();
//! // Reading the buffer forces evaluation (the paper's mprotect trick).
//! assert_eq!(data.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
//! ```
//!
//! ## Serving pipelines
//!
//! A context no longer has to own its threads or replan every
//! evaluation — the primitives behind the `mozart-serve` crate's
//! multi-tenant [`PipelineService`] live here:
//!
//! * [`PoolHandle`] / [`global_pool`]: a shareable worker pool. Any
//!   number of contexts [`attach_pool`](MozartContext::attach_pool) the
//!   same handle; concurrently submitted stages queue FIFO on one
//!   machine-sized thread set instead of oversubscribing the host with
//!   a pool per context, with per-session usage accounted in
//!   [`PoolStats::sessions`].
//! * [`PlanCache`]: evaluations fingerprint their pending call graph
//!   ([`graph::DataflowGraph::pending_shape`]) and replay memoized
//!   stage skeletons on a hit, re-binding only the materialized values;
//!   shape or split-type changes change the fingerprint, so stale plans
//!   never replay. Attach with
//!   [`attach_plan_cache`](MozartContext::attach_plan_cache).
//!
//! ```
//! use std::sync::Arc;
//! use mozart_core::prelude::*;
//!
//! let pool = PoolHandle::new(1); // shared by every session below
//! let cache = Arc::new(PlanCache::new(64));
//! let session_ctx = MozartContext::with_workers(2);
//! session_ctx.attach_pool(pool.clone());
//! session_ctx.attach_plan_cache(cache.clone());
//! session_ctx.set_session_tag(42); // fairness accounting key
//! ```
//!
//! See the `mozart-serve` crate for the full service front-end
//! (sessions, admission control, the TCP example) and
//! `crates/bench/benches/serve_throughput.rs` for the closed-loop
//! serving benchmark.
//!
//! [`PipelineService`]: https://docs.rs/mozart-serve

#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod annotation;
pub mod array_split;
pub mod buffer;
pub mod config;
pub mod context;
pub mod cputime;
pub mod error;
pub mod executor;
pub mod faultinject;
pub mod graph;
pub mod membudget;
pub mod planner;
pub mod pool;
pub mod registry;
pub mod split;
pub mod stats;
pub mod trace;
pub mod value;
pub mod verify;

pub use annotation::{Annotation, ArgSpec, Invocation, SplitTypeExpr};
pub use array_split::ArraySplit;
pub use buffer::{ProtectFlag, SharedVec, SliceView, VecValue};
pub use config::Config;
pub use context::{Future, FutureHandle, MozartContext};
pub use error::{Error, Result};
pub use faultinject::{CancelToken, FaultKind, FaultPhase, FaultPlan, FaultPoint};
pub use planner::{PlanCache, PlanCacheStats};
pub use pool::{global_pool, PoolHandle, WorkerPool, OVERFLOW_SESSION};
pub use split::{
    Concat, MergeStrategy, Params, Placement, RuntimeInfo, SizeSplit, SplitForm, SplitInstance,
    Splitter,
};
pub use stats::{PhaseStats, PoolStats, SessionPoolStats};
pub use trace::{
    chrome_trace_json, SpanKind, SpanRecord, SpanTree, TraceCtx, TraceId, TraceRecorder,
};
pub use value::{BoolValue, DataValue, FloatValue, IntValue, StrValue};
pub use verify::{check_annotation, lint_annotation, verify_stage, VerifyError};

/// Convenient glob-import surface for integrations and applications.
pub mod prelude {
    pub use crate::annotation::{concrete, generic, missing, unknown, Annotation, Invocation};
    pub use crate::array_split::ArraySplit;
    pub use crate::buffer::{SharedVec, SliceView, VecValue};
    pub use crate::config::Config;
    pub use crate::context::{Future, FutureHandle, MozartContext};
    pub use crate::error::{Error, Result};
    pub use crate::faultinject::{CancelToken, FaultKind, FaultPhase, FaultPlan, FaultPoint};
    pub use crate::planner::{PlanCache, PlanCacheStats};
    pub use crate::pool::{global_pool, PoolHandle};
    pub use crate::registry::{register_annotation, register_default_splitter};
    pub use crate::split::{
        Concat, MergeStrategy, Params, Placement, RuntimeInfo, SizeSplit, SplitForm, SplitInstance,
        Splitter,
    };
    pub use crate::stats::{PhaseStats, PoolStats, SessionPoolStats};
    pub use crate::trace::{SpanKind, SpanRecord, SpanTree, TraceId, TraceRecorder};
    pub use crate::value::{BoolValue, DataValue, FloatValue, IntValue, StrValue};
    pub use crate::verify::{check_annotation, lint_annotation, verify_stage, VerifyError};
}
