//! Dynamic value handles passed between annotated library functions.
//!
//! Mozart treats library data as black boxes: the runtime only ever moves
//! [`DataValue`] handles around and hands them back to wrapper functions,
//! which downcast them to the concrete library types. This mirrors the
//! argument buffers captured by the paper's C++ client library (§4.1).

use std::any::{Any, TypeId};
use std::fmt;
use std::sync::Arc;

use crate::buffer::ProtectFlag;
use crate::graph::ValueId;

/// Identity of the underlying storage of a value.
///
/// Mozart uses identities to detect when two function calls touch the same
/// data (e.g. an array mutated in place by one call and read by the next),
/// which is how data-dependency edges are added to the dataflow graph
/// without library cooperation (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataIdentity {
    addr: usize,
    type_id: TypeId,
}

impl DataIdentity {
    /// Build an identity from a storage address and the value's type.
    pub fn new(addr: usize, type_id: TypeId) -> Self {
        DataIdentity { addr, type_id }
    }
}

/// A library value that can be captured into the dataflow graph.
///
/// Implementations are cheap-to-clone handles (the substrate libraries in
/// this repository use `Arc`-backed buffers). The default implementations
/// are correct for purely-functional values; types whose storage can be
/// *mutated in place* by annotated functions should override
/// [`DataObject::stable_identity`] (so all handles to the same storage
/// compare equal) and [`DataObject::protect_flag`] (so reads of lazily
/// mutated data force evaluation, Mozart's stand-in for the paper's
/// `mprotect`-based laziness).
pub trait DataObject: Any + Send + Sync {
    /// Short, stable type name used in error messages.
    fn type_name(&self) -> &'static str;

    /// Address identifying the value's backing storage, if the value has
    /// identifiable mutable storage. `None` means each handle is distinct.
    fn stable_identity(&self) -> Option<usize> {
        None
    }

    /// Protection flag used to trigger lazy evaluation on access, if the
    /// value supports it (see [`crate::buffer::SharedVec`]).
    fn protect_flag(&self) -> Option<&ProtectFlag> {
        None
    }

    /// Upcast helper; implement as `self`.
    fn as_any(&self) -> &dyn Any;
}

/// A dynamically typed value handle.
///
/// Either concrete data, or a lazy reference to a value that the dataflow
/// graph of a specific context will produce (the return value of an
/// annotated call). Wrapper functions accept `DataValue`s so that lazy
/// results can be pipelined into later calls, exactly like the paper's
/// `Future<T>` arguments (§4.1).
#[derive(Clone)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum DataValue {
    /// Materialized library data.
    Data(Arc<dyn DataObject>),
    /// A value that will be produced by the dataflow graph of the context
    /// identified by `ctx_id`.
    Lazy { ctx_id: u64, value: ValueId },
}

impl DataValue {
    /// Wrap a concrete library value.
    pub fn new<T: DataObject>(value: T) -> Self {
        DataValue::Data(Arc::new(value))
    }

    /// Wrap an already-shared library value.
    pub fn from_arc(value: Arc<dyn DataObject>) -> Self {
        DataValue::Data(value)
    }

    /// Whether this handle is a lazy (not yet produced) value.
    pub fn is_lazy(&self) -> bool {
        matches!(self, DataValue::Lazy { .. })
    }

    /// Downcast to a concrete type. Returns `None` for lazy handles or
    /// type mismatches.
    pub fn downcast_ref<T: DataObject>(&self) -> Option<&T> {
        match self {
            DataValue::Data(d) => d.as_any().downcast_ref::<T>(),
            DataValue::Lazy { .. } => None,
        }
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            DataValue::Data(d) => d.type_name(),
            DataValue::Lazy { .. } => "<lazy>",
        }
    }

    /// Identity of the underlying storage, used for dependency tracking.
    ///
    /// Values with stable storage (shared buffers) report the storage
    /// address; others report the address of the handle's allocation, so
    /// two clones of the same `DataValue` share an identity.
    pub fn identity(&self) -> Option<DataIdentity> {
        match self {
            DataValue::Data(d) => {
                let addr = d
                    .stable_identity()
                    .unwrap_or(Arc::as_ptr(d) as *const () as usize);
                Some(DataIdentity::new(addr, d.as_any().type_id()))
            }
            DataValue::Lazy { .. } => None,
        }
    }

    /// Protection flag of the underlying storage, if any.
    pub fn protect_flag(&self) -> Option<&ProtectFlag> {
        match self {
            DataValue::Data(d) => d.protect_flag(),
            DataValue::Lazy { .. } => None,
        }
    }
}

impl fmt::Debug for DataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataValue::Data(d) => write!(f, "DataValue({})", d.type_name()),
            DataValue::Lazy { ctx_id, value } => {
                write!(f, "DataValue(lazy ctx={ctx_id} v={})", value.0)
            }
        }
    }
}

macro_rules! scalar_value {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct $name(pub $inner);

        impl DataObject for $name {
            fn type_name(&self) -> &'static str {
                stringify!($name)
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
    };
}

scalar_value!(
    /// An integer scalar argument (e.g. an array length).
    IntValue,
    i64
);
scalar_value!(
    /// A floating-point scalar argument (e.g. a constant multiplier).
    FloatValue,
    f64
);
scalar_value!(
    /// A boolean scalar argument.
    BoolValue,
    bool
);

/// A string scalar argument (e.g. a column name).
#[derive(Debug, Clone)]
pub struct StrValue(pub Arc<str>);

impl StrValue {
    /// Build from any string-like value.
    pub fn new(s: impl Into<Arc<str>>) -> Self {
        StrValue(s.into())
    }
}

impl DataObject for StrValue {
    fn type_name(&self) -> &'static str {
        "StrValue"
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Extract an `i64` from a value holding an [`IntValue`].
pub fn as_i64(v: &DataValue) -> Option<i64> {
    v.downcast_ref::<IntValue>().map(|i| i.0)
}

/// Extract an `f64` from a value holding a [`FloatValue`].
pub fn as_f64(v: &DataValue) -> Option<f64> {
    v.downcast_ref::<FloatValue>().map(|x| x.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downcast_roundtrip() {
        let v = DataValue::new(IntValue(42));
        assert_eq!(v.downcast_ref::<IntValue>().unwrap().0, 42);
        assert!(v.downcast_ref::<FloatValue>().is_none());
        assert_eq!(v.type_name(), "IntValue");
    }

    #[test]
    fn clones_share_identity() {
        let v = DataValue::new(FloatValue(1.5));
        let w = v.clone();
        assert_eq!(v.identity(), w.identity());
    }

    #[test]
    fn distinct_values_have_distinct_identity() {
        let v = DataValue::new(IntValue(1));
        let w = DataValue::new(IntValue(1));
        assert_ne!(v.identity(), w.identity());
    }

    #[test]
    fn lazy_values_have_no_identity() {
        let v = DataValue::Lazy {
            ctx_id: 1,
            value: ValueId(0),
        };
        assert!(v.identity().is_none());
        assert!(v.is_lazy());
        assert!(v.downcast_ref::<IntValue>().is_none());
    }

    #[test]
    fn identity_distinguishes_types_at_same_addr() {
        // Two zero-sized-ish values could in principle collide on address;
        // the TypeId component keeps identities distinct per type.
        let a = DataIdentity::new(0x1000, TypeId::of::<IntValue>());
        let b = DataIdentity::new(0x1000, TypeId::of::<FloatValue>());
        assert_ne!(a, b);
    }
}
