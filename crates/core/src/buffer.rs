//! Shared, splittable buffers.
//!
//! [`SharedVec`] is the storage type the substrate libraries in this
//! repository use for dense numeric data (standing in for the raw C arrays
//! that Intel MKL operates on). It provides:
//!
//! * cheap cloning (handles share one allocation),
//! * *disjoint* mutable range access from multiple worker threads, which
//!   is what lets Mozart run unmodified kernels on split pieces in
//!   parallel, and
//! * a protection flag that reproduces the paper's `mprotect`-based lazy
//!   evaluation trigger (§4.1): when an annotated call that mutates the
//!   buffer is registered with a context, the buffer is *protected*; any
//!   subsequent read through the safe API forces the context to evaluate
//!   its dataflow graph first, exactly like the SIGSEGV handler in the
//!   paper (but at the cost of an atomic load instead of a page fault —
//!   the paper's proposed `pkeys` optimization has the same effect).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::value::{DataObject, DataValue};

/// Something that can evaluate a pending dataflow graph.
///
/// Implemented by the Mozart context; buffers hold a weak reference so a
/// protected read can force evaluation without a dependency cycle.
pub trait EvalTrigger: Send + Sync {
    /// Evaluate all pending work. Must be idempotent.
    fn force(&self);
}

/// Lazy-evaluation trigger attached to mutable storage.
///
/// `protected == true` means the dataflow graph of the attached context
/// contains a pending call that mutates this storage, so its current
/// contents are stale.
pub struct ProtectFlag {
    protected: AtomicBool,
    trigger: Mutex<Option<Weak<dyn EvalTrigger>>>,
}

impl Default for ProtectFlag {
    fn default() -> Self {
        ProtectFlag {
            protected: AtomicBool::new(false),
            trigger: Mutex::new(None),
        }
    }
}

impl ProtectFlag {
    /// Mark the storage as pending mutation by `trigger`'s graph.
    pub fn protect(&self, trigger: Weak<dyn EvalTrigger>) {
        *self.trigger.lock() = Some(trigger);
        self.protected.store(true, Ordering::Release);
    }

    /// Clear the protection (called when the graph is evaluated).
    pub fn unprotect(&self) {
        self.protected.store(false, Ordering::Release);
        *self.trigger.lock() = None;
    }

    /// Whether the storage currently has pending mutations.
    pub fn is_protected(&self) -> bool {
        self.protected.load(Ordering::Acquire)
    }

    /// If protected, force the owning context to evaluate. Cheap when not
    /// protected (a single atomic load — this is the fast path every safe
    /// read takes).
    pub fn ensure_evaluated(&self) {
        if self.protected.load(Ordering::Acquire) {
            let trigger = self.trigger.lock().clone();
            if let Some(t) = trigger.and_then(|w| w.upgrade()) {
                t.force();
            } else {
                // The owning context is gone; the data can never be
                // brought up to date, but it is also unobservable through
                // that context, so clear the flag and return what we have.
                self.unprotect();
            }
        }
    }
}

/// Raw storage cell. Interior mutability is required because disjoint
/// ranges of one allocation are mutated concurrently by worker threads.
struct RawStorage<T>(Box<[UnsafeCell<T>]>);

// SAFETY: `RawStorage` is a plain array of `Copy` data. All mutable access
// goes through `SharedVec::slice_mut_unchecked`, whose contract requires
// callers (the Mozart executor and annotated wrappers) to access disjoint
// ranges from different threads. Shared reads through the safe API only
// happen when no execution is in flight (enforced by the protect flag and
// the context's evaluation lock).
unsafe impl<T: Send + Sync> Sync for RawStorage<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Send for RawStorage<T> {}

struct Inner<T> {
    storage: RawStorage<T>,
    protect: ProtectFlag,
    /// Metered footprint registered with [`crate::membudget`] at
    /// construction; returned on drop of the last reference.
    bytes: usize,
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        crate::membudget::note_free(self.bytes);
    }
}

/// A shared, fixed-length vector supporting disjoint parallel mutation.
///
/// This is the "C array" of the reproduction: the substrate libraries take
/// plain slices, and the split types hand out [`SliceView`] pieces that
/// reference ranges of a `SharedVec`.
pub struct SharedVec<T: Copy + Send + Sync + 'static> {
    inner: Arc<Inner<T>>,
}

impl<T: Copy + Send + Sync + 'static> Clone for SharedVec<T> {
    fn clone(&self) -> Self {
        SharedVec {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Copy + Send + Sync + Default + 'static> SharedVec<T> {
    /// Allocate a zero-initialized (default-initialized) buffer of `len`
    /// elements.
    pub fn zeros(len: usize) -> Self {
        Self::from_vec(vec![T::default(); len])
    }

    /// [`SharedVec::zeros`], with every page of the buffer faulted in
    /// up front (see [`prefault_writable`]): placement-merge targets
    /// take their first-touch page faults once, single-threaded, at
    /// allocation, so the parallel placement writes are pure memory
    /// copies.
    pub fn zeros_prefaulted(len: usize) -> Self {
        let v = Self::zeros(len);
        // SAFETY: the buffer was just created, is UnsafeCell-backed,
        // and has no other observer.
        unsafe { prefault_writable(v.base_ptr() as *mut u8, len * std::mem::size_of::<T>()) };
        v
    }

    /// Allocate a buffer of `len` elements with *unspecified* contents,
    /// prefaulted like [`SharedVec::zeros_prefaulted`] but without the
    /// zeroing pass. For placement-merge targets the zeroing is dead
    /// work in every outcome: full coverage overwrites every element,
    /// a `NULL`-split tail is truncated to the written prefix, and an
    /// interior gap fails the merge — no unwritten element is ever
    /// read.
    ///
    /// # Safety
    ///
    /// The caller must ensure every element range is written before it
    /// is read through any API of the returned buffer. The placement
    /// executor guarantees this: the merged value is only released
    /// after its coverage check, restricted to the written prefix.
    #[allow(clippy::uninit_vec)] // the uninit window is this function's documented contract
    pub unsafe fn uninit_prefaulted(len: usize) -> Self {
        let mut v: Vec<UnsafeCell<T>> = Vec::with_capacity(len);
        // SAFETY: capacity was just reserved; `T: Copy` so the elements
        // have no drop obligations, and the caller contract defers
        // initialization to the first writes.
        unsafe { v.set_len(len) };
        let bytes = len * std::mem::size_of::<T>();
        crate::membudget::note_alloc(bytes);
        let sv = SharedVec {
            inner: Arc::new(Inner {
                storage: RawStorage(v.into_boxed_slice()),
                protect: ProtectFlag::default(),
                bytes,
            }),
        };
        // SAFETY: freshly created, no other observer. Clobbering one
        // byte per page of unspecified contents is itself unspecified
        // contents, so zero-writing is the page touch of choice (a
        // read-back touch would read uninitialized memory).
        unsafe { prefault_pages_clobber(sv.base_ptr() as *mut u8, len * std::mem::size_of::<T>()) };
        sv
    }
}

/// Fault in every page of a writable buffer, single-threaded, before
/// parallel writers hit it.
///
/// Zeroed allocations are lazy (copy-on-write zero pages); a buffer
/// that many threads immediately fill in parallel — a placement-merge
/// target — would otherwise take its first-touch faults concurrently
/// on one shared mapping, serializing on kernel page-table locks (and
/// spinning against preempted lock holders on oversubscribed hosts).
/// On Linux the region is first `madvise(MADV_HUGEPAGE)`d (best
/// effort): under THP `madvise` policy that turns one fault per 4 KiB
/// page into one per 2 MiB region, which on fault-expensive
/// virtualized hosts is most of the allocation's cost.
///
/// # Safety
///
/// `ptr..ptr + bytes` must be a live allocation the caller may write
/// through (interior-mutable or exclusively owned), with no concurrent
/// access.
pub unsafe fn prefault_writable(ptr: *mut u8, bytes: usize) {
    if bytes == 0 {
        return;
    }
    // SAFETY: forwarded contract.
    unsafe {
        advise_hugepages(ptr, bytes);
    }
    let mut off = 0;
    while off < bytes {
        // SAFETY: in-bounds per the loop condition; exclusivity is the
        // caller's obligation. Rewriting the byte already there is a
        // bitwise no-op but forces the page present for writing;
        // volatile defeats the malloc+memset→calloc optimization that
        // would make the touch lazy again.
        unsafe {
            let b = std::ptr::read_volatile(ptr.add(off) as *const u8);
            std::ptr::write_volatile(ptr.add(off), b);
        }
        off += 4096;
    }
}

/// Page-touch variant for buffers with unspecified contents: writes a
/// zero byte per page instead of reading anything back.
///
/// # Safety
///
/// Same range/exclusivity contract as [`prefault_writable`]; in
/// addition the caller must tolerate one byte per page being
/// clobbered (trivially true for uninitialized buffers).
unsafe fn prefault_pages_clobber(ptr: *mut u8, bytes: usize) {
    if bytes == 0 {
        return;
    }
    // SAFETY: forwarded contract.
    unsafe {
        advise_hugepages(ptr, bytes);
    }
    let mut off = 0;
    while off < bytes {
        // SAFETY: in-bounds per the loop condition; exclusivity is the
        // caller's obligation.
        unsafe { std::ptr::write_volatile(ptr.add(off), 0) };
        off += 4096;
    }
}

/// Best-effort `madvise(MADV_HUGEPAGE)` over the page-aligned interior
/// of the range: under THP `madvise` policy, one fault per 2 MiB
/// region instead of one per 4 KiB page.
///
/// # Safety
///
/// `ptr..ptr + bytes` must be a live allocation owned by the caller.
#[allow(unused_variables)]
unsafe fn advise_hugepages(ptr: *mut u8, bytes: usize) {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        const MADV_HUGEPAGE: i64 = 14;
        // Page-align inward; madvise requires an aligned start address.
        let start = (ptr as usize).next_multiple_of(4096);
        let end = ptr as usize + bytes;
        if end > start {
            let _ret: i64;
            #[cfg(target_arch = "x86_64")]
            // SAFETY: madvise(2) on an owned mapping range; advisory
            // only, failure is ignored.
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") 28i64 => _ret, // __NR_madvise
                    in("rdi") start,
                    in("rsi") end - start,
                    in("rdx") MADV_HUGEPAGE,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above.
            unsafe {
                std::arch::asm!(
                    "svc 0",
                    inlateout("x8") 233i64 => _, // __NR_madvise
                    inlateout("x0") start => _ret,
                    in("x1") end - start,
                    in("x2") MADV_HUGEPAGE,
                    options(nostack),
                );
            }
        }
    }
}

impl<T: Copy + Send + Sync + 'static> SharedVec<T> {
    /// Take ownership of a `Vec`'s contents.
    pub fn from_vec(v: Vec<T>) -> Self {
        let storage: Box<[UnsafeCell<T>]> = v.into_iter().map(UnsafeCell::new).collect();
        let bytes = storage.len() * std::mem::size_of::<T>();
        crate::membudget::note_alloc(bytes);
        SharedVec {
            inner: Arc::new(Inner {
                storage: RawStorage(storage),
                protect: ProtectFlag::default(),
                bytes,
            }),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.storage.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Address of the backing allocation; used as the buffer's stable
    /// identity for dependency tracking.
    pub fn storage_addr(&self) -> usize {
        Arc::as_ptr(&self.inner) as *const () as usize
    }

    /// Whether two handles share the same backing storage.
    pub fn same_storage(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The buffer's lazy-evaluation flag.
    pub fn protect_flag(&self) -> &ProtectFlag {
        &self.inner.protect
    }

    /// Read access to the whole buffer, forcing any pending lazy
    /// computation that mutates it first (the paper's evaluation point
    /// for values "allocated outside of the dataflow graph but mutated by
    /// an annotated function", §4.1).
    pub fn as_slice(&self) -> &[T] {
        self.inner.protect.ensure_evaluated();
        // SAFETY: `ensure_evaluated` completed all pending mutations, and
        // new mutations only begin after another annotated call is
        // registered, which cannot happen while `&self` borrows from this
        // call are live in well-formed programs; see module docs for the
        // runtime discipline.
        unsafe { self.slice_unchecked(0, self.len()) }
    }

    /// Copy the contents out as a `Vec`, forcing pending computation.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// Read a range without checking the protect flag.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no thread concurrently mutates any
    /// element of `[start, start + len)`. The Mozart executor guarantees
    /// this by assigning workers disjoint element ranges.
    pub unsafe fn slice_unchecked(&self, start: usize, len: usize) -> &[T] {
        debug_assert!(start + len <= self.len());
        let base = self.inner.storage.0.as_ptr() as *const T;
        // SAFETY: in-bounds per the debug_assert and the type invariant
        // that `storage` is a single allocation; aliasing discipline is
        // the caller's obligation per this function's contract.
        unsafe { std::slice::from_raw_parts(base.add(start), len) }
    }

    /// Mutable access to a range of the buffer.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the range `[start, start + len)` is
    /// not accessed (read or written) by any other live reference while
    /// the returned slice is alive. The Mozart executor upholds this by
    /// giving each worker thread a disjoint element range and pipelining
    /// batches sequentially within a worker.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut_unchecked(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len());
        let base = self.inner.storage.0.as_ptr() as *mut T;
        // SAFETY: see function contract.
        unsafe { std::slice::from_raw_parts_mut(base.add(start), len) }
    }

    /// Raw base pointer (for kernels with MKL-style aliasing semantics,
    /// e.g. in-place `out == a`).
    pub fn base_ptr(&self) -> *mut T {
        self.inner.storage.0.as_ptr() as *mut T
    }
}

impl<T: Copy + Send + Sync + std::fmt::Debug + 'static> std::fmt::Debug for SharedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedVec(len={})", self.len())
    }
}

/// A `DataValue` wrapper around a whole [`SharedVec<f64>`].
///
/// This is the value type the MKL-style integrations capture in the
/// dataflow graph. Identity is the backing storage, so in-place mutation
/// chains (`d1 = log(d1); d1 = d1 + tmp; ...`) produce dependency edges.
#[derive(Clone, Debug)]
pub struct VecValue(pub SharedVec<f64>);

impl DataObject for VecValue {
    fn type_name(&self) -> &'static str {
        "VecValue"
    }
    fn stable_identity(&self) -> Option<usize> {
        Some(self.0.storage_addr())
    }
    fn protect_flag(&self) -> Option<&ProtectFlag> {
        Some(self.0.protect_flag())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl VecValue {
    /// Wrap into a dynamic value handle.
    pub fn into_value(self) -> DataValue {
        DataValue::new(self)
    }
}

/// A split piece of a [`SharedVec<f64>`]: the element range
/// `[start, start + len)` of `parent`.
///
/// Pieces alias the parent's storage; "merging" in-place pieces is a
/// no-op, exactly like the paper's MKL integration (§3.3: "updates occur
/// in-place, so no merge operation is needed").
#[derive(Clone, Debug)]
pub struct SliceView {
    /// Buffer the piece refers into.
    pub parent: SharedVec<f64>,
    /// First element of the piece.
    pub start: usize,
    /// Number of elements in the piece.
    pub len: usize,
}

impl SliceView {
    /// Read the piece's elements.
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedVec::slice_unchecked`]: no concurrent
    /// mutation of this range.
    pub unsafe fn as_slice(&self) -> &[f64] {
        // SAFETY: forwarded contract.
        unsafe { self.parent.slice_unchecked(self.start, self.len) }
    }

    /// Mutate the piece's elements.
    ///
    /// # Safety
    ///
    /// Same contract as [`SharedVec::slice_mut_unchecked`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_slice_mut(&self) -> &mut [f64] {
        // SAFETY: forwarded contract.
        unsafe { self.parent.slice_mut_unchecked(self.start, self.len) }
    }

    /// Raw pointer to the first element of the piece. Kernels that allow
    /// `out == in` aliasing (the MKL in-place convention) should use the
    /// pointer API.
    pub fn ptr(&self) -> *mut f64 {
        // SAFETY: `start <= parent.len()` is a construction invariant,
        // so the offset stays inside (or one past) the allocation.
        unsafe { self.parent.base_ptr().add(self.start) }
    }
}

impl DataObject for SliceView {
    fn type_name(&self) -> &'static str {
        "SliceView"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn from_vec_roundtrip() {
        let v = SharedVec::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let v = SharedVec::from_vec(vec![0u8; 8]);
        let w = v.clone();
        assert!(v.same_storage(&w));
        assert_eq!(v.storage_addr(), w.storage_addr());
    }

    #[test]
    fn disjoint_parallel_mutation() {
        let v: SharedVec<f64> = SharedVec::zeros(1000);
        std::thread::scope(|s| {
            for w in 0..4 {
                let v = v.clone();
                s.spawn(move || {
                    // SAFETY: each worker owns the disjoint range
                    // [w*250, (w+1)*250).
                    let chunk = unsafe { v.slice_mut_unchecked(w * 250, 250) };
                    for x in chunk.iter_mut() {
                        *x = w as f64;
                    }
                });
            }
        });
        let s = v.as_slice();
        assert_eq!(s[0], 0.0);
        assert_eq!(s[999], 3.0);
        assert_eq!(s[500], 2.0);
    }

    struct CountingTrigger(AtomicUsize);
    impl EvalTrigger for CountingTrigger {
        fn force(&self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn protected_read_forces_evaluation() {
        let trig = Arc::new(CountingTrigger(AtomicUsize::new(0)));
        let v: SharedVec<f64> = SharedVec::zeros(4);
        let weak: Weak<dyn EvalTrigger> = {
            let t: Arc<dyn EvalTrigger> = trig.clone();
            Arc::downgrade(&t)
        };
        v.protect_flag().protect(weak);
        assert!(v.protect_flag().is_protected());
        let _ = v.as_slice();
        assert_eq!(trig.0.load(Ordering::SeqCst), 1);
        // The trigger is responsible for unprotecting; simulate that.
        v.protect_flag().unprotect();
        let _ = v.as_slice();
        assert_eq!(trig.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn protected_read_with_dead_context_degrades_gracefully() {
        let v: SharedVec<f64> = SharedVec::from_vec(vec![7.0]);
        {
            let t: Arc<dyn EvalTrigger> = Arc::new(CountingTrigger(AtomicUsize::new(0)));
            v.protect_flag().protect(Arc::downgrade(&t));
        } // trigger dropped
        assert_eq!(v.as_slice(), &[7.0]);
        assert!(!v.protect_flag().is_protected());
    }

    #[test]
    fn slice_view_aliases_parent() {
        let v = SharedVec::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let piece = SliceView {
            parent: v.clone(),
            start: 1,
            len: 2,
        };
        // SAFETY: no concurrent mutation in this test.
        unsafe {
            piece.as_slice_mut()[0] = 20.0;
            assert_eq!(piece.as_slice(), &[20.0, 3.0]);
        }
        assert_eq!(v.as_slice(), &[1.0, 20.0, 3.0, 4.0]);
    }

    #[test]
    fn vec_value_identity_tracks_storage() {
        let v = SharedVec::from_vec(vec![0.0]);
        let a = DataValue::new(VecValue(v.clone()));
        let b = DataValue::new(VecValue(v.clone()));
        // Distinct handles, same storage => same identity.
        assert_eq!(a.identity(), b.identity());
        let other = DataValue::new(VecValue(SharedVec::from_vec(vec![0.0])));
        assert_ne!(a.identity(), other.identity());
    }
}
