//! Per-thread CPU-time clock for phase accounting.
//!
//! The executor's worker-parallel phases (split/task/merge) are short
//! windows measured inside the driver loop. On an oversubscribed or
//! virtualized host, a wall clock charges a window for every
//! preemption and every tick of hypervisor steal that lands inside it
//! — with more workers than cores, a 30 µs placement write can read as
//! milliseconds, purely from the scheduler suspending the thread
//! mid-window. Per-thread CPU time (`CLOCK_THREAD_CPUTIME_ID`) counts
//! only what the thread actually executed, which equals wall time on
//! dedicated cores and stays meaningful everywhere else.
//!
//! The workspace is std-only, so the clock is read with a raw
//! `clock_gettime` syscall on Linux (x86-64 and aarch64); other
//! targets fall back to the wall clock.

use std::time::Duration;

/// CPU time consumed by the calling thread, from an arbitrary
/// per-thread epoch. Subtract two readings to time a window.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn thread_cpu_now() -> Duration {
    const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
    let mut ts = [0i64; 2]; // timespec { tv_sec, tv_nsec }
    let ret: i64;
    #[cfg(target_arch = "x86_64")]
    // SAFETY: clock_gettime(2) writes a timespec into the provided
    // buffer and has no other effects.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 228i64 => ret, // __NR_clock_gettime
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: as above.
    unsafe {
        std::arch::asm!(
            "svc 0",
            inlateout("x8") 113i64 => _, // __NR_clock_gettime
            inlateout("x0") CLOCK_THREAD_CPUTIME_ID => ret,
            in("x1") ts.as_mut_ptr(),
            options(nostack),
        );
    }
    if ret != 0 {
        return Duration::ZERO;
    }
    Duration::new(ts[0].max(0) as u64, ts[1].clamp(0, 999_999_999) as u32)
}

/// Wall-clock fallback for targets without the raw-syscall path. The
/// epoch differs per call site, so callers must only ever subtract
/// readings taken on the same thread — which is all the executor does.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn thread_cpu_now() -> Duration {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// `end - start` for two readings from [`thread_cpu_now`], clamped to
/// zero (defensive: the clock is monotonic per thread, but a clamped
/// subtraction makes misuse harmless rather than panicking).
pub fn cpu_elapsed(start: Duration, end: Duration) -> Duration {
    end.saturating_sub(start)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_cpu_work() {
        let t0 = thread_cpu_now();
        // Spin enough to consume measurable CPU.
        let mut acc = 0u64;
        for i in 0..5_000_000u64 {
            acc = acc.wrapping_add(i ^ (acc >> 3));
        }
        assert!(acc != 42, "keep the loop");
        let t1 = thread_cpu_now();
        assert!(t1 > t0, "thread CPU time must advance: {t0:?} -> {t1:?}");
        assert!(cpu_elapsed(t0, t1) > Duration::ZERO);
        assert_eq!(cpu_elapsed(t1, t0), Duration::ZERO, "clamped");
    }

    #[test]
    fn sleeping_consumes_no_cpu_time() {
        let t0 = thread_cpu_now();
        std::thread::sleep(Duration::from_millis(30));
        let t1 = thread_cpu_now();
        // Sleeping must cost (almost) nothing on the CPU clock; allow a
        // generous margin for scheduler bookkeeping.
        assert!(
            cpu_elapsed(t0, t1) < Duration::from_millis(15),
            "sleep charged {:?} of CPU",
            cpu_elapsed(t0, t1)
        );
    }
}
