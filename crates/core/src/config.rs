//! Runtime configuration (worker count, batch-size heuristic, debugging
//! aids).

/// Configuration of a [`MozartContext`](crate::MozartContext).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of worker threads. The paper leaves this to the user; the
    /// default is the machine's available parallelism.
    pub workers: usize,
    /// L2 cache size in bytes, the basis of the batch-size heuristic
    /// `batch = C * L2 / Σ sizeof(element)` (§5.2 step 1).
    pub l2_bytes: u64,
    /// The constant `C` in the batch-size heuristic. The paper found a
    /// fixed constant works well because intermediates still fit in the
    /// larger shared LLC.
    pub batch_constant: f64,
    /// Fixed batch size in elements, overriding the heuristic (used by
    /// the Figure 6 batch-size sweep).
    pub batch_override: Option<u64>,
    /// When `false`, every function gets its own stage: data is split and
    /// parallelized per call but never pipelined across calls. This is
    /// the paper's "Mozart (-pipe)" ablation (Table 4).
    pub pipeline: bool,
    /// When `true` (the default), stages run on the context's persistent
    /// [worker pool](crate::pool): threads are created once and parked
    /// between stages. When `false`, every stage spawns and joins scoped
    /// threads — the historic behavior, kept as a measured ablation for
    /// the `fig5_overheads` benchmark.
    pub reuse_pool: bool,
    /// When `true` (the default), Merge outputs take the *placement*
    /// fast path where the split type supports it: the merged value is
    /// preallocated once and workers write result pieces directly at
    /// their element offsets inside the driver loop
    /// (the [`Placement`](crate::split::Placement) capability of its
    /// [`merge_strategy`](crate::split::Splitter::merge_strategy)),
    /// and final merges of non-placement outputs that nothing later in
    /// the graph consumes are dispatched to the worker pool so they
    /// overlap with planning and executing subsequent stages. When
    /// `false`, every merge runs the historic collect-then-concat path
    /// serially on the caller — kept as a measured ablation for the
    /// `phase_breakdown` benchmark.
    pub placement_merge: bool,
    /// When `true` (the default), a stage's merge output that is only
    /// re-split by later nodes under the same split type is handed
    /// across the stage boundary *in split form* — the worker-produced
    /// piece set with element offsets
    /// ([`SplitForm`](crate::split::SplitForm)) — eliding both the
    /// merge and the downstream re-split, which are pure memory
    /// traffic. Requires the split type to be concatenation-shaped with
    /// a [`Concat`](crate::split::Concat) capability; outputs the
    /// application can still observe, terminal/unknown outputs, and
    /// mut-argument consumers always merge classically. When `false`,
    /// every merge materializes — kept as a measured ablation for the
    /// `phase_breakdown` benchmark.
    pub split_form: bool,
    /// Pedantic mode (§7.1): panic-free runtime checks that splits agree
    /// on element counts, pieces are non-NULL, etc., surfaced as errors.
    pub pedantic: bool,
    /// Statically verify every stage plan before it executes (and on
    /// every plan-cache replay bind) — see
    /// [`verify::verify_stage`](crate::verify::verify_stage) — and
    /// check annotations against the paper's typing rules on
    /// registration. On by default in debug builds and tests, opt-in
    /// for release builds (overridable with `MOZART_VERIFY_PLANS=0/1`).
    /// Verified stages are counted in
    /// [`PhaseStats::plans_verified`](crate::stats::PhaseStats).
    pub verify_plans: bool,
    /// Log every function call on every split piece (§7.1 debugging aid).
    pub log_calls: bool,
    /// Deterministic fault-injection schedule
    /// ([`FaultPlan`](crate::faultinject::FaultPlan)); `None` (the
    /// default) means no injection and costs one branch per batch
    /// phase. Shared via `Arc` so clones of the config (e.g. every
    /// request context of a serving session) draw from one budget.
    pub fault_plan: Option<std::sync::Arc<crate::faultinject::FaultPlan>>,
    /// Span recorder for per-request tracing
    /// ([`TraceRecorder`](crate::trace::TraceRecorder)). `None` (the
    /// default) disables tracing entirely: the executor and context pay
    /// one predictable branch per would-be span and never touch a
    /// clock. Shared via `Arc` so every context of a serving tier
    /// records into one set of rings.
    pub tracing: Option<std::sync::Arc<crate::trace::TraceRecorder>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: default_workers(),
            l2_bytes: detect_l2_bytes(),
            batch_constant: 1.0,
            batch_override: None,
            pipeline: true,
            reuse_pool: true,
            placement_merge: true,
            split_form: true,
            pedantic: cfg!(debug_assertions),
            verify_plans: default_verify_plans(),
            log_calls: false,
            fault_plan: None,
            tracing: None,
        }
    }
}

impl Config {
    /// Default configuration with a fixed worker count.
    pub fn with_workers(workers: usize) -> Self {
        Config {
            workers: workers.max(1),
            ..Config::default()
        }
    }

    /// Check that every field the batch-size heuristic consumes is
    /// usable. Called when a config is attached to a
    /// [`MozartContext`](crate::MozartContext) (construction and
    /// `set_config`), which poisons the context on failure — a NaN or
    /// negative user-set `batch_constant` used to cast to 0 silently and
    /// clamp every stage to pathological 1-element batches.
    pub fn validate(&self) -> crate::error::Result<()> {
        if !self.batch_constant.is_finite() || self.batch_constant <= 0.0 {
            return Err(crate::error::Error::InvalidConfig(format!(
                "batch_constant must be a finite positive number, got {}",
                self.batch_constant
            )));
        }
        if self.l2_bytes == 0 {
            return Err(crate::error::Error::InvalidConfig(
                "l2_bytes must be nonzero (the batch heuristic divides by element bytes \
                 and multiplies by the cache size)"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Compute the batch size for a stage whose split inputs have the
    /// given total per-element footprint in bytes.
    ///
    /// Returns a value clamped to `[1, total_elements]`. Defensive even
    /// under an invalid (unvalidated) `batch_constant`: the heuristic
    /// falls back to the default constant and the `f64 → u64` cast
    /// saturates instead of wrapping, so scheduling degrades to the
    /// stock heuristic rather than to 1-element batches.
    pub fn batch_elements(&self, sum_elem_bytes: u64, total_elements: u64) -> u64 {
        if total_elements == 0 {
            return 1;
        }
        if let Some(b) = self.batch_override {
            return b.clamp(1, total_elements);
        }
        if sum_elem_bytes == 0 {
            // Nothing contributes to cache pressure: one batch.
            return total_elements;
        }
        let constant = if self.batch_constant.is_finite() && self.batch_constant > 0.0 {
            self.batch_constant
        } else {
            1.0
        };
        let raw = constant * self.l2_bytes as f64 / sum_elem_bytes as f64;
        // `as` saturates (NaN -> 0, +inf -> u64::MAX); make the floor
        // explicit so a sub-1.0 ratio still yields one element.
        let b = if raw >= 1.0 { raw as u64 } else { 1 };
        b.clamp(1, total_elements)
    }
}

/// Plan-verification default: `MOZART_VERIFY_PLANS` env var (`1`/`0`),
/// else on in debug builds and off in release.
pub fn default_verify_plans() -> bool {
    if let Ok(s) = std::env::var("MOZART_VERIFY_PLANS") {
        return s != "0";
    }
    cfg!(debug_assertions)
}

/// Worker-count default: `MOZART_WORKERS` env var, else available
/// parallelism.
pub fn default_workers() -> usize {
    if let Ok(s) = std::env::var("MOZART_WORKERS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Read the L2 cache size from sysfs, falling back to 256 KiB (the paper
/// targets per-core L2). Overridable with `MOZART_L2_BYTES`.
pub fn detect_l2_bytes() -> u64 {
    if let Ok(s) = std::env::var("MOZART_L2_BYTES") {
        if let Ok(n) = s.parse::<u64>() {
            return n.max(4096);
        }
    }
    if let Ok(s) = std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index2/size") {
        let s = s.trim();
        if let Some(kb) = s.strip_suffix('K').and_then(|n| n.parse::<u64>().ok()) {
            return kb * 1024;
        }
        if let Some(mb) = s.strip_suffix('M').and_then(|n| n.parse::<u64>().ok()) {
            return mb * 1024 * 1024;
        }
        if let Ok(b) = s.parse::<u64>() {
            return b;
        }
    }
    256 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            workers: 4,
            l2_bytes: 1 << 20,
            batch_constant: 1.0,
            batch_override: None,
            pipeline: true,
            reuse_pool: true,
            placement_merge: true,
            split_form: true,
            pedantic: true,
            verify_plans: true,
            log_calls: false,
            fault_plan: None,
            tracing: None,
        }
    }

    #[test]
    fn batch_size_follows_heuristic() {
        let c = cfg();
        // Three f64 arrays: 24 bytes per element.
        let b = c.batch_elements(24, 1 << 30);
        assert_eq!(b, (1u64 << 20) / 24);
    }

    #[test]
    fn batch_size_clamps_to_total() {
        let c = cfg();
        assert_eq!(c.batch_elements(8, 100), 100);
        assert_eq!(c.batch_elements(0, 100), 100);
        assert_eq!(c.batch_elements(8, 0), 1);
    }

    #[test]
    fn batch_override_wins() {
        let mut c = cfg();
        c.batch_override = Some(4096);
        assert_eq!(c.batch_elements(24, 1 << 30), 4096);
        assert_eq!(c.batch_elements(24, 100), 100);
    }

    #[test]
    fn huge_elements_still_get_a_batch() {
        let c = cfg();
        // One element is larger than L2: batch must still be >= 1.
        assert_eq!(c.batch_elements(1 << 22, 10), 1);
    }

    #[test]
    fn validate_rejects_bad_batch_constant() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let c = Config {
                batch_constant: bad,
                ..cfg()
            };
            let err = c.validate().expect_err("must reject");
            assert!(err.to_string().contains("batch_constant"), "{err}");
        }
        assert!(cfg().validate().is_ok());
        let c = Config {
            l2_bytes: 0,
            ..cfg()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn batch_elements_survives_invalid_constant() {
        // Regression (ISSUE 4): NaN/negative batch_constant used to cast
        // to 0 and clamp every stage to 1-element batches. The defensive
        // path falls back to the default constant instead.
        let sane = cfg().batch_elements(24, 1 << 30);
        for bad in [f64::NAN, -3.0, 0.0] {
            let c = Config {
                batch_constant: bad,
                ..cfg()
            };
            assert_eq!(c.batch_elements(24, 1 << 30), sane, "constant {bad}");
        }
        // An absurdly large constant saturates instead of wrapping.
        let c = Config {
            batch_constant: f64::MAX,
            ..cfg()
        };
        assert_eq!(c.batch_elements(24, 1 << 30), 1 << 30);
    }
}
