//! The persistent work-stealing worker pool.
//!
//! Earlier revisions of the executor spawned OS threads with
//! `std::thread::scope` for every stage, so short stages paid thread
//! creation and teardown on their critical path — exactly the fixed
//! overhead Figure 5 measures. This module keeps one set of workers
//! alive for the lifetime of a [`MozartContext`](crate::MozartContext):
//! workers park on a condition variable between stages and are handed
//! work as a [`Job`] — an immutable stage description plus a shared
//! atomic batch cursor.
//!
//! Scheduling is dynamic: instead of carving the element range into one
//! static span per worker, every participant claims the next cache-sized
//! batch from `Job::cursor` with a `fetch_add`. A worker stuck on a
//! skewed batch (expensive split, data-dependent task cost) simply stops
//! claiming while the others drain the remainder, so the stage finishes
//! at the speed of the aggregate, not of the slowest static range. The
//! calling thread always participates as worker 0, which keeps
//! single-batch stages free of any cross-thread handoff.
//!
//! Per-job bookkeeping (claimed batches per participant, batches that
//! static partitioning would have given to another worker, park/unpark
//! transitions) is aggregated into [`PoolStats`] for the Figure 5
//! overhead analysis; see `MozartContext::pool_stats`.
//!
//! [`run_stage_scoped`] preserves the old spawn-per-stage behavior
//! behind `Config::reuse_pool = false` as a measured ablation for the
//! `fig5_overheads` benchmark; it is not used otherwise.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::error::{Error, Result};
use crate::executor::{run_worker, ExecStage, WorkerOut};
use crate::stats::PoolStats;

/// One stage dispatched to the pool: the immutable stage description,
/// the shared batch cursor workers claim ranges from, and completion
/// bookkeeping.
///
/// Pool workers *join* a job before participating and are counted out
/// when they finish. Once the caller has drained its own share it
/// *closes* the job: workers that have not joined by then are turned
/// away, so a stage the caller drained alone (common for short stages)
/// completes without waiting for any worker to wake up.
pub(crate) struct Job {
    /// The stage being executed (read-only across workers).
    pub(crate) exec: ExecStage,
    /// Next unclaimed element index; workers `fetch_add` the batch size.
    pub(crate) cursor: AtomicU64,
    /// Set when any participant fails, so the others stop claiming.
    pub(crate) failed: AtomicBool,
    /// Participant-index allocator for pool workers (the calling thread
    /// is always participant 0, so tickets start at 1).
    tickets: AtomicUsize,
    /// Worker results and join/finish bookkeeping.
    state: Mutex<JobState>,
    done_cv: Condvar,
}

#[derive(Default)]
struct JobState {
    outs: Vec<WorkerOut>,
    error: Option<Error>,
    /// Pool workers that joined (ran or are running the driver loop).
    joined: usize,
    /// Pool workers that finished.
    finished: usize,
    /// Set by the caller once its own driver loop is done; no further
    /// workers may join.
    closed: bool,
}

impl Job {
    /// Wrap a stage for execution.
    pub(crate) fn new(exec: ExecStage) -> Arc<Job> {
        Arc::new(Job {
            exec,
            cursor: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            tickets: AtomicUsize::new(1),
            state: Mutex::new(JobState::default()),
            done_cv: Condvar::new(),
        })
    }

    /// Record a result into the job state (caller must hold no lock).
    fn record(&self, result: Result<WorkerOut>) {
        if result.is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
        let mut st = lock(&self.state);
        match result {
            Ok(out) => st.outs.push(out),
            Err(e) => {
                if st.error.is_none() {
                    st.error = Some(e);
                }
            }
        }
    }
}

/// What parked workers wake up to.
struct Dispatch {
    /// Bumped on every published job; workers run each epoch once.
    epoch: u64,
    /// The job of the current epoch, cleared once it completes.
    job: Option<Arc<Job>>,
    shutdown: bool,
}

/// Monotonic counters aggregated across jobs (see [`PoolStats`]).
struct Counters {
    jobs: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    stolen: AtomicU64,
    per_worker_batches: Vec<AtomicU64>,
}

impl Counters {
    /// Attribute one participant's successful driver-loop run.
    fn bump_batches(&self, participant: usize, result: &Result<WorkerOut>) {
        if let Ok(out) = result {
            self.stolen.fetch_add(out.stolen, Ordering::Relaxed);
            if let Some(slot) = self.per_worker_batches.get(participant) {
                slot.fetch_add(out.batches, Ordering::Relaxed);
            }
        }
    }
}

struct PoolShared {
    dispatch: Mutex<Dispatch>,
    work_cv: Condvar,
    counters: Counters,
}

/// A persistent set of worker threads, created once per context.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `pool_workers` threads. The calling thread joins
    /// every stage as one extra participant, so a pool sized
    /// `config.workers - 1` saturates `config.workers` cores.
    pub fn new(pool_workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            dispatch: Mutex::new(Dispatch {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            counters: Counters {
                jobs: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                unparks: AtomicU64::new(0),
                stolen: AtomicU64::new(0),
                per_worker_batches: (0..=pool_workers).map(|_| AtomicU64::new(0)).collect(),
            },
        });
        let handles = (0..pool_workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("mozart-worker-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of pool threads (excluding the participating caller).
    pub fn pool_workers(&self) -> usize {
        self.handles.len()
    }

    /// Execute a multi-participant stage on the pool. The caller
    /// participates as worker 0 and blocks until every participant is
    /// done, so jobs never overlap.
    pub(crate) fn run_stage(&self, job: &Arc<Job>) -> Result<Vec<WorkerOut>> {
        debug_assert!(
            job.exec.participants >= 2,
            "single-worker stages run inline"
        );
        let c = &self.shared.counters;
        c.jobs.fetch_add(1, Ordering::Relaxed);
        {
            let mut d = lock(&self.shared.dispatch);
            d.epoch += 1;
            d.job = Some(job.clone());
        }
        // Chained wakeup: wake one worker; each worker that joins wakes
        // the next (see `worker_main`). Compared to a notify_all this
        // avoids a thundering herd on short stages — if the caller
        // drains the cursor before the first worker joins, the rest are
        // never taken off their futex at all.
        self.shared.work_cv.notify_one();

        // Participate from the calling thread.
        let mine = run_worker(&job.exec, &job.cursor, &job.failed, 0);
        c.bump_batches(0, &mine);
        job.record(mine);

        // Close the job — late-waking workers are turned away — and wait
        // for the workers that did join. If the caller drained the whole
        // stage before any worker woke, this returns without a handoff.
        let mut st = lock(&job.state);
        st.closed = true;
        while st.finished < st.joined {
            st = job.done_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        let outs = std::mem::take(&mut st.outs);
        let error = st.error.take();
        drop(st);

        // Unpublish so late-waking workers skip straight back to sleep.
        lock(&self.shared.dispatch).job = None;

        match error {
            Some(e) => Err(e),
            None => Ok(outs),
        }
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            workers: self.handles.len(),
            jobs: c.jobs.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            unparks: c.unparks.load(Ordering::Relaxed),
            batches_stolen: c.stolen.load(Ordering::Relaxed),
            per_worker_batches: c
                .per_worker_batches
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut d = lock(&self.shared.dispatch);
            d.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The body of one pool thread: park until a new epoch publishes a job,
/// claim a participant ticket, run the driver loop, repeat.
fn worker_main(shared: &PoolShared) {
    let c = &shared.counters;
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut d = lock(&shared.dispatch);
            loop {
                if d.shutdown {
                    return;
                }
                if d.epoch != last_epoch {
                    last_epoch = d.epoch;
                    match &d.job {
                        Some(job) => break job.clone(),
                        // The epoch's job already completed: nothing to do.
                        None => continue,
                    }
                }
                c.parks.fetch_add(1, Ordering::Relaxed);
                d = shared.work_cv.wait(d).unwrap_or_else(|p| p.into_inner());
            }
        };

        let ticket = job.tickets.fetch_add(1, Ordering::Relaxed);
        if ticket >= job.exec.participants {
            // More pool workers than the stage has batches.
            continue;
        }
        {
            let mut st = lock(&job.state);
            if st.closed {
                // The caller already drained and closed this stage.
                continue;
            }
            st.joined += 1;
        }
        // Propagate the wake chain before doing work, so the rest of
        // the pool ramps up while this worker runs batches.
        shared.work_cv.notify_one();
        c.unparks.fetch_add(1, Ordering::Relaxed);
        let out = run_worker(&job.exec, &job.cursor, &job.failed, ticket);
        c.bump_batches(ticket, &out);
        job.record(out);
        let mut st = lock(&job.state);
        st.finished += 1;
        if st.closed && st.finished == st.joined {
            job.done_cv.notify_all();
        }
    }
}

/// Spawn-per-stage ablation (`Config::reuse_pool = false`): run the same
/// dynamic-scheduling driver loop, but on scoped threads created for
/// this one stage. Exists so `fig5_overheads` can measure what the
/// persistent pool saves; per-worker pool counters are not updated on
/// this path.
pub(crate) fn run_stage_scoped(job: &Arc<Job>) -> Result<Vec<WorkerOut>> {
    let participants = job.exec.participants;
    let mut outs = Vec::with_capacity(participants);
    let mut results: Vec<Option<Result<WorkerOut>>> = Vec::new();
    results.resize_with(participants - 1, || None);
    let mine = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(participants - 1);
        for w in 1..participants {
            let job = job.clone();
            handles.push(s.spawn(move || {
                let out = run_worker(&job.exec, &job.cursor, &job.failed, w);
                if out.is_err() {
                    // Match the pool path's semantics: one participant
                    // failing stops the others from claiming batches.
                    job.failed.store(true, Ordering::Relaxed);
                }
                out
            }));
        }
        let mine = run_worker(&job.exec, &job.cursor, &job.failed, 0);
        if mine.is_err() {
            job.failed.store(true, Ordering::Relaxed);
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(
                h.join()
                    .unwrap_or_else(|_| Err(Error::Library("worker thread panicked".into()))),
            );
        }
        mine
    });
    outs.push(mine?);
    for r in results {
        outs.push(r.expect("worker result collected")?);
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spins_up_and_shuts_down() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.pool_workers(), 3);
        let s = pool.stats();
        assert_eq!(s.workers, 3);
        assert_eq!(s.jobs, 0);
        assert_eq!(
            s.per_worker_batches.len(),
            4,
            "3 pool workers + caller slot"
        );
        drop(pool); // must not hang
    }

    #[test]
    fn empty_pool_is_valid() {
        // workers == 1 means every stage runs inline on the caller.
        let pool = WorkerPool::new(0);
        assert_eq!(pool.pool_workers(), 0);
        drop(pool);
    }
}
