//! The persistent, shareable work-stealing worker pool.
//!
//! Earlier revisions of the executor spawned OS threads with
//! `std::thread::scope` for every stage, so short stages paid thread
//! creation and teardown on their critical path — exactly the fixed
//! overhead Figure 5 measures. This module keeps one set of workers
//! alive and hands stage work to them as `Job`s — an immutable stage
//! description plus a shared atomic batch cursor.
//!
//! Since the serving work (`mozart-serve`) a pool is no longer owned by
//! exactly one [`MozartContext`](crate::MozartContext): it is handed out
//! as a cheaply clonable [`PoolHandle`] that any number of contexts can
//! attach to. Jobs submitted concurrently by different contexts queue
//! up, and the submitting thread always participates in its own job as
//! worker 0, so a stage makes progress even when every pool thread is
//! busy serving another session — many sessions share one machine's
//! worth of threads instead of oversubscribing it with one pool per
//! context.
//!
//! # Deficit-weighted round-robin across sessions
//!
//! Idle workers do **not** simply serve the oldest open job: a hot
//! tenant submitting stage after stage would then monopolize the pool
//! while a light tenant's occasional job waited behind it. Instead every
//! session carries a *weight* ([`WorkerPool::set_session_weight`],
//! default 1) and a *virtual service time* that advances by
//! `batches / weight` whenever one of its jobs completes. Workers pick
//! the open job of the session with the smallest virtual time — the
//! most-underserved session per unit weight — with queue order breaking
//! ties, so over time each session's batch share converges to its
//! weight share of the contended pool.
//!
//! Two bounds keep this well-behaved:
//!
//! * **Deficit cap.** A session that went idle stops advancing its
//!   virtual clock; re-admitted naively it would hold absolute priority
//!   until it caught up to the hot sessions. On submit, a session's
//!   virtual time is therefore clamped to at most
//!   [`DEFICIT_CAP_BATCHES`] weighted batches behind the furthest-ahead
//!   session — a bounded burst credit, not an unbounded debt.
//! * **Caller participation.** The submitting thread always runs its
//!   own job, so even a session the scheduler never favors progresses
//!   at single-thread speed — no session can be starved outright.
//!
//! [`WorkerPool::set_fair_scheduling`]`(false)` restores the historic
//! FIFO scan as a measured ablation (the `serve_throughput` benchmark
//! compares both).
//!
//! Scheduling within a job is dynamic: instead of carving the element
//! range into one static span per worker, every participant claims the
//! next cache-sized batch — or, when many batches remain, a *guided
//! claim span* of `remaining / (2 · participants)` batches — from
//! `Job::cursor` with a `fetch_add`. A worker stuck on a skewed batch
//! (expensive split, data-dependent task cost) simply stops claiming
//! while the others drain the remainder, so the stage finishes at the
//! speed of the aggregate, not of the slowest static range.
//!
//! Per-job bookkeeping (claimed batches and cursor claims per
//! participant, batches that static partitioning would have given to
//! another worker, park/unpark transitions, per-session job and batch
//! totals) is aggregated into [`PoolStats`]; see
//! `MozartContext::pool_stats` and `PoolHandle::stats`.
//!
//! `run_stage_scoped` preserves the old spawn-per-stage behavior
//! behind `Config::reuse_pool = false` as a measured ablation for the
//! `fig5_overheads` benchmark; it is not used otherwise.
//!
//! # Panic isolation and worker respawn
//!
//! A panic inside a split/task/merge phase is caught *inside* the
//! driver loop (`executor::catch_phase`) and fails only the job it
//! belonged to, as a typed [`Error::TaskPanicked`]; the worker thread
//! survives and serves the next job. Panics that nonetheless unwind a
//! pool thread — a deliberate
//! [`WorkerAbort`](crate::faultinject::WorkerAbort) from the fault
//! injector, or a defect outside the phase wrappers — hit two
//! backstops: `worker_main` completes the job's join bookkeeping (so
//! the submitter unblocks with a typed error instead of hanging) before
//! letting the thread die, and a drop sentinel on the thread's stack
//! respawns a replacement so the pool always returns to its full
//! complement ([`PoolStats::respawned_workers`]).

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::error::{Error, Result};
use crate::executor::{run_worker, ExecStage, WorkerOut};
use crate::faultinject::{panic_message, FaultPhase};
use crate::stats::{PoolStats, SessionPoolStats};

/// One stage dispatched to the pool: the immutable stage description,
/// the shared batch cursor workers claim ranges from, and completion
/// bookkeeping.
///
/// Pool workers *join* a job before participating and are counted out
/// when they finish. Once the caller has drained its own share it
/// *closes* the job: workers that have not joined by then are turned
/// away, so a stage the caller drained alone (common for short stages)
/// completes without waiting for any worker to wake up.
pub(crate) struct Job {
    /// The stage being executed (read-only across workers).
    pub(crate) exec: ExecStage,
    /// Next unclaimed element index; workers `fetch_add` claim spans.
    pub(crate) cursor: AtomicU64,
    /// Set when any participant fails, so the others stop claiming.
    pub(crate) failed: AtomicBool,
    /// Session tag of the submitting context (fairness accounting).
    session: u64,
    /// Nominal bytes this stage splits (`total_elements · Σ elem bytes`
    /// from the split info API), charged to the session's byte totals.
    bytes: u64,
    /// Batches served by pool workers (ticket >= 1; the submitting
    /// caller's share is excluded). Observability only: the DRR clock
    /// charges *total* service (see [`SessionEntry::vtime`]), but this
    /// split shows how the contended worker capacity was divided.
    worker_batches: AtomicU64,
    /// Cleared once the job is closed or fully ticketed, so queue scans
    /// skip it without taking its state lock.
    open: AtomicBool,
    /// Participant-index allocator for pool workers (the calling thread
    /// is always participant 0, so tickets start at 1).
    tickets: AtomicUsize,
    /// Worker results and join/finish bookkeeping.
    state: Mutex<JobState>,
    done_cv: Condvar,
}

#[derive(Default)]
struct JobState {
    outs: Vec<WorkerOut>,
    error: Option<Error>,
    /// Pool workers that joined (ran or are running the driver loop).
    joined: usize,
    /// Pool workers that finished.
    finished: usize,
    /// Set by the caller once its own driver loop is done; no further
    /// workers may join.
    closed: bool,
}

impl Job {
    /// Wrap a stage for execution on behalf of `session`.
    pub(crate) fn new(exec: ExecStage, session: u64) -> Arc<Job> {
        let bytes = exec.total_elements.saturating_mul(exec.sum_elem_bytes);
        Arc::new(Job {
            exec,
            cursor: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            session,
            bytes,
            worker_batches: AtomicU64::new(0),
            open: AtomicBool::new(true),
            tickets: AtomicUsize::new(1),
            state: Mutex::new(JobState::default()),
            done_cv: Condvar::new(),
        })
    }

    /// Record a result into the job state (caller must hold no lock).
    fn record(&self, result: Result<WorkerOut>) {
        if result.is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
        let mut st = lock(&self.state);
        match result {
            Ok(out) => st.outs.push(out),
            Err(e) => {
                if st.error.is_none() {
                    st.error = Some(e);
                }
            }
        }
    }
}

/// What parked workers wake up to: a FIFO of open stage jobs plus a
/// FIFO of one-shot [`SideJob`]s (overlapped final merges). Multiple
/// contexts sharing the pool may each have a job queued; workers drain
/// side jobs first (they are short, and they unblock user-visible
/// results of an *earlier* stage), then serve the oldest open stage
/// job, which keeps sessions coarsely fair (no session's stage can be
/// starved by later arrivals).
struct Queue {
    jobs: VecDeque<Arc<Job>>,
    side: VecDeque<Arc<SideJob>>,
    shutdown: bool,
    /// Join handles of workers the respawn supervisor created. Pushed
    /// under this lock *before* `shutdown` can be observed set, so
    /// [`WorkerPool`]'s `Drop` never misses one.
    respawned: Vec<JoinHandle<()>>,
}

/// A one-shot closure dispatched to the pool — the final merge of a
/// stage output nothing later in the graph consumes, run concurrently
/// with the caller planning and executing subsequent stages.
///
/// The closure is claimed (taken out of the `task` slot) by exactly one
/// thread: either a pool worker that dequeued the job, or the
/// submitting caller reclaiming it in [`SideJob::join`]. The reclaim
/// path makes completion independent of pool size — on a zero-worker
/// pool the caller simply runs the merge itself at join time, which is
/// exactly the serial behavior overlapping replaces.
pub(crate) struct SideJob {
    /// The work, present until some thread claims it.
    task: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    /// Set once the claimed closure has finished running.
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl SideJob {
    /// Wrap a closure for dispatch. Results travel through state the
    /// closure captures (the executor uses a shared result slot).
    pub(crate) fn new(f: impl FnOnce() + Send + 'static) -> Arc<SideJob> {
        Arc::new(SideJob {
            task: Mutex::new(Some(Box::new(f))),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        })
    }

    /// Claim and run the closure if no other thread has; returns
    /// whether this call did the work. A panicking closure is caught
    /// so `done` is always signalled — otherwise a merge that panics
    /// on a pool worker would leave the submitter blocked in
    /// [`SideJob::join`] forever. This catch is a backstop only: the
    /// executor's side-job closures wrap the merge in `catch_phase`
    /// themselves and store a typed [`Error::TaskPanicked`] in the
    /// result slot, so the submitter sees the panic as a typed error,
    /// not just a missing result (see `DeferredMerge::join`, whose
    /// empty-slot fallback is also typed).
    fn run_if_pending(&self) -> bool {
        let f = lock(&self.task).take();
        match f {
            Some(f) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                *lock(&self.done) = true;
                self.done_cv.notify_all();
                true
            }
            None => false,
        }
    }

    /// Wait for the job to complete, reclaiming and running it inline
    /// if no pool worker picked it up yet.
    pub(crate) fn join(&self) {
        if self.run_if_pending() {
            return;
        }
        let mut done = lock(&self.done);
        while !*done {
            done = self.done_cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Per-session scheduling and accounting state (see the module docs on
/// deficit-weighted round-robin).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SessionEntry {
    /// Completed pool jobs.
    jobs: u64,
    /// Batches processed across all participants of this session's jobs.
    batches: u64,
    /// Of those, batches served by pool workers (submitting callers
    /// excluded) — the contended capacity DRR divides.
    worker_batches: u64,
    /// Nominal bytes split by this session's pool jobs.
    bytes: u64,
    /// Fair-share weight (>= 1); a weight-2 session is entitled to twice
    /// the contended batch share of a weight-1 session.
    weight: u32,
    /// Weighted virtual service time: advances by
    /// `batches · VTIME_SCALE / weight` per completed job, counting the
    /// session's *total* service — pool-worker batches and the
    /// submitting caller's own. Charging self-service is deliberate: a
    /// session whose caller drains its own jobs is demonstrably getting
    /// work done, so the scarce pool assist tilts toward sessions that
    /// are not. Workers serve the open job of the session with the
    /// smallest value.
    vtime: u64,
    /// Jobs currently queued or running. A session with open jobs is
    /// never folded into the overflow bucket — evicting it would split
    /// its accounting across two entries when the jobs complete.
    open_jobs: u32,
}

impl Default for SessionEntry {
    fn default() -> Self {
        SessionEntry {
            jobs: 0,
            batches: 0,
            worker_batches: 0,
            bytes: 0,
            weight: 1,
            vtime: 0,
            open_jobs: 0,
        }
    }
}

/// Fixed-point scale of [`SessionEntry::vtime`] (so integer division by
/// the weight keeps sub-batch resolution).
const VTIME_SCALE: u64 = 1024;

/// Deficit cap, in weighted batches: on submit, a session's virtual time
/// is clamped to at most this many weighted batches behind the
/// furthest-ahead session, bounding the burst a long-idle session can
/// claim when it returns (and, symmetrically, how long it can hold
/// strict priority over the hot sessions).
pub const DEFICIT_CAP_BATCHES: u64 = 256;

/// Monotonic counters aggregated across jobs (see [`PoolStats`]).
struct Counters {
    jobs: AtomicU64,
    side_jobs: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    stolen: AtomicU64,
    /// Driver-loop runs that ended in a caught panic
    /// ([`Error::TaskPanicked`]); the job failed, the worker survived.
    panicked: AtomicU64,
    /// Workers the respawn supervisor replaced after an unwinding panic
    /// escaped the phase wrappers and killed the thread.
    respawned: AtomicU64,
    per_worker_batches: Vec<AtomicU64>,
    /// Cursor claims per participant slot (one claim may cover a guided
    /// span of several batches; see the module docs).
    per_worker_claims: Vec<AtomicU64>,
    /// Per-session scheduling and accounting entries, keyed by the
    /// submitting context's session tag. Bounded: once
    /// `MAX_TRACKED_SESSIONS` distinct tags are live, the least-used
    /// *idle* entry is folded into the catch-all [`OVERFLOW_SESSION`]
    /// bucket, so a server opening one session per connection cannot
    /// grow this map without limit.
    sessions: Mutex<HashMap<u64, SessionEntry>>,
}

/// Cap on individually tracked session tags (see [`Counters::sessions`]).
const MAX_TRACKED_SESSIONS: usize = 64;

/// Synthetic session tag aggregating evicted sessions' totals.
pub const OVERFLOW_SESSION: u64 = u64::MAX;

/// Fetch (or create) the entry for `session`, evicting one idle entry
/// first if the map is at capacity and the tag is new.
fn session_entry(sessions: &mut HashMap<u64, SessionEntry>, session: u64) -> &mut SessionEntry {
    if sessions.len() >= MAX_TRACKED_SESSIONS && !sessions.contains_key(&session) {
        evict_one_idle(sessions);
    }
    sessions.entry(session).or_default()
}

/// Fold the least-used *idle* tracked session into the overflow bucket.
///
/// Sessions with jobs currently open are skipped: evicting a live
/// session would let its in-flight completions re-create a fresh entry
/// and split its totals across two buckets — corrupting exactly the
/// per-session batch counts the deficit-weighted scheduler ranks by.
/// If every candidate is live the map transiently exceeds the cap
/// (bounded by the number of concurrently open jobs).
///
/// Among idle candidates, default-weight entries go first: eviction
/// drops an entry's weight and virtual time, so a session whose
/// operator explicitly set a non-default weight keeps its entry as
/// long as any default-weight idle session can be folded instead.
fn evict_one_idle(sessions: &mut HashMap<u64, SessionEntry>) {
    let victim = sessions
        .iter()
        .filter(|(&s, e)| s != OVERFLOW_SESSION && e.open_jobs == 0)
        .min_by_key(|(_, e)| (e.weight != 1, e.jobs))
        .map(|(&s, _)| s);
    if let Some(victim) = victim {
        let e = sessions.remove(&victim).unwrap_or_default();
        let overflow = sessions.entry(OVERFLOW_SESSION).or_default();
        overflow.jobs += e.jobs;
        overflow.batches += e.batches;
        overflow.worker_batches += e.worker_batches;
        overflow.bytes += e.bytes;
    }
}

impl Counters {
    /// Attribute one participant's driver-loop result: batch/claim/steal
    /// counters on success, the panic counter on a caught panic.
    fn bump_batches(&self, participant: usize, result: &Result<WorkerOut>) {
        if matches!(result, Err(Error::TaskPanicked { .. })) {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
        if let Ok(out) = result {
            self.stolen.fetch_add(out.stolen, Ordering::Relaxed);
            if let Some(slot) = self.per_worker_batches.get(participant) {
                slot.fetch_add(out.batches, Ordering::Relaxed);
            }
            if let Some(slot) = self.per_worker_claims.get(participant) {
                slot.fetch_add(out.claims, Ordering::Relaxed);
            }
        }
    }

    /// Session accounting at job submit: count the job open and clamp
    /// the session's virtual time to the deficit cap (module docs).
    fn note_submit(&self, session: u64) {
        let mut sessions = lock(&self.sessions);
        let max_vtime = sessions.values().map(|e| e.vtime).max().unwrap_or(0);
        let entry = session_entry(&mut sessions, session);
        entry.open_jobs += 1;
        let floor = max_vtime.saturating_sub(DEFICIT_CAP_BATCHES * VTIME_SCALE);
        entry.vtime = entry.vtime.max(floor);
    }

    /// Session accounting at job completion: fold in the served batches
    /// and bytes and advance the session's virtual time by its weighted
    /// service.
    fn note_complete(&self, session: u64, batches: u64, worker_batches: u64, bytes: u64) {
        let mut sessions = lock(&self.sessions);
        let entry = session_entry(&mut sessions, session);
        entry.jobs += 1;
        entry.batches += batches;
        entry.worker_batches += worker_batches;
        entry.bytes += bytes;
        entry.open_jobs = entry.open_jobs.saturating_sub(1);
        // Every job advances the clock by at least one batch so a
        // stream of degenerate jobs still rotates fairly.
        entry.vtime += batches.max(1) * VTIME_SCALE / u64::from(entry.weight.max(1));
    }
}

/// Pick the queue index of the open job whose session is most
/// underserved (smallest weighted virtual time); queue order breaks
/// ties, so equal-service sessions are served FIFO.
fn pick_fair(
    open_jobs: impl Iterator<Item = (usize, u64)>,
    sessions: &HashMap<u64, SessionEntry>,
) -> Option<usize> {
    let mut best: Option<(usize, u64)> = None;
    for (idx, session) in open_jobs {
        let vtime = sessions.get(&session).map(|e| e.vtime).unwrap_or(0);
        if best.is_none_or(|(_, bv)| vtime < bv) {
            best = Some((idx, vtime));
        }
    }
    best.map(|(idx, _)| idx)
}

struct PoolShared {
    queue: Mutex<Queue>,
    work_cv: Condvar,
    counters: Counters,
    /// Deficit-weighted session scheduling (default); `false` restores
    /// the historic FIFO queue scan as a measured ablation.
    fair: AtomicBool,
}

/// A persistent set of worker threads shared by every context holding a
/// handle to it.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `pool_workers` threads. Every submitting thread
    /// joins its own stage as one extra participant, so a pool sized
    /// `config.workers - 1` saturates `config.workers` cores for a
    /// single session.
    pub fn new(pool_workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                side: VecDeque::new(),
                shutdown: false,
                respawned: Vec::new(),
            }),
            work_cv: Condvar::new(),
            counters: Counters {
                jobs: AtomicU64::new(0),
                side_jobs: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                unparks: AtomicU64::new(0),
                stolen: AtomicU64::new(0),
                panicked: AtomicU64::new(0),
                respawned: AtomicU64::new(0),
                per_worker_batches: (0..=pool_workers).map(|_| AtomicU64::new(0)).collect(),
                per_worker_claims: (0..=pool_workers).map(|_| AtomicU64::new(0)).collect(),
                sessions: Mutex::new(HashMap::new()),
            },
            fair: AtomicBool::new(true),
        });
        let handles = (0..pool_workers)
            .map(|i| {
                let shared = shared.clone();
                match std::thread::Builder::new()
                    .name(format!("mozart-worker-{i}"))
                    .spawn(move || worker_body(shared, i))
                {
                    Ok(h) => h,
                    Err(e) => panic!("failed to spawn pool worker {i}: {e}"),
                }
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of pool threads (excluding participating submitters).
    pub fn pool_workers(&self) -> usize {
        self.handles.len()
    }

    /// Set the fair-share weight of `session` (clamped to >= 1; every
    /// session defaults to 1). Under deficit-weighted scheduling a
    /// weight-`w` session is entitled to `w` times the contended batch
    /// share of a weight-1 session. Takes effect for jobs completing
    /// after the call.
    pub fn set_session_weight(&self, session: u64, weight: u32) {
        let mut sessions = lock(&self.shared.counters.sessions);
        session_entry(&mut sessions, session).weight = weight.max(1);
    }

    /// Toggle deficit-weighted session scheduling (on by default). With
    /// `false`, idle workers serve the oldest open job regardless of
    /// session — the historic FIFO behavior, kept as a measured ablation
    /// for the `serve_throughput` benchmark.
    pub fn set_fair_scheduling(&self, fair: bool) {
        self.shared.fair.store(fair, Ordering::Relaxed);
    }

    /// Queue a one-shot side job (an overlapped final merge) for any
    /// idle worker to pick up. The submitter later calls
    /// [`SideJob::join`], which reclaims the closure and runs it inline
    /// if no worker got to it first.
    pub(crate) fn submit_side(&self, job: Arc<SideJob>) {
        {
            let mut q = lock(&self.shared.queue);
            q.side.push_back(job);
        }
        self.shared.work_cv.notify_one();
    }

    /// Execute a multi-participant stage on the pool. The caller
    /// participates as worker 0 and blocks until every participant is
    /// done. Safe to call from many threads concurrently: each job is
    /// queued and pool workers serve the oldest open job first.
    pub(crate) fn run_stage(&self, job: &Arc<Job>) -> Result<Vec<WorkerOut>> {
        debug_assert!(
            job.exec.participants >= 2,
            "single-worker stages run inline"
        );
        let c = &self.shared.counters;
        c.jobs.fetch_add(1, Ordering::Relaxed);
        // Open the session's accounting before the job becomes visible:
        // the fair pick reads the entry under the queue lock, and the
        // open-job count must already protect the entry from eviction.
        c.note_submit(job.session);
        {
            let mut q = lock(&self.shared.queue);
            q.jobs.push_back(job.clone());
        }
        // Chained wakeup: wake one worker; each worker that joins wakes
        // the next (see `worker_main`). Compared to a notify_all this
        // avoids a thundering herd on short stages — if the caller
        // drains the cursor before the first worker joins, the rest are
        // never taken off their futex at all.
        self.shared.work_cv.notify_one();

        // Participate from the calling thread.
        let mine = run_worker(&job.exec, &job.cursor, &job.failed, 0);
        c.bump_batches(0, &mine);
        job.record(mine);

        // Close the job — late-waking workers are turned away — and wait
        // for the workers that did join. If the caller drained the whole
        // stage before any worker woke, this returns without a handoff.
        let mut st = lock(&job.state);
        st.closed = true;
        job.open.store(false, Ordering::Relaxed);
        while st.finished < st.joined {
            st = job.done_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        let outs = std::mem::take(&mut st.outs);
        let error = st.error.take();
        drop(st);

        // Remove the completed job so queue scans stay short.
        {
            let mut q = lock(&self.shared.queue);
            q.jobs.retain(|j| !Arc::ptr_eq(j, job));
        }

        // Per-session fairness accounting (pool jobs only; single-batch
        // stages run inline on their caller and are not counted).
        let batches: u64 = outs.iter().map(|o| o.batches).sum();
        let worker_batches = job.worker_batches.load(Ordering::Relaxed);
        c.note_complete(job.session, batches, worker_batches, job.bytes);

        match error {
            Some(e) => Err(e),
            None => Ok(outs),
        }
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        let mut sessions: Vec<SessionPoolStats> = lock(&c.sessions)
            .iter()
            .map(|(&session, e)| SessionPoolStats {
                session,
                jobs: e.jobs,
                batches: e.batches,
                worker_batches: e.worker_batches,
                bytes: e.bytes,
                weight: e.weight,
            })
            .collect();
        sessions.sort_by_key(|s| s.session);
        PoolStats {
            workers: self.handles.len(),
            jobs: c.jobs.load(Ordering::Relaxed),
            side_jobs: c.side_jobs.load(Ordering::Relaxed),
            parks: c.parks.load(Ordering::Relaxed),
            unparks: c.unparks.load(Ordering::Relaxed),
            batches_stolen: c.stolen.load(Ordering::Relaxed),
            per_worker_batches: c
                .per_worker_batches
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            per_worker_claims: c
                .per_worker_claims
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            sessions,
            panicked_batches: c.panicked.load(Ordering::Relaxed),
            respawned_workers: c.respawned.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Respawned replacements park on the same queue and observe the
        // shutdown flag like original workers. Drain in rounds: a worker
        // dying *during* shutdown no longer respawns (the sentinel
        // checks the flag under the queue lock), so this terminates.
        loop {
            let batch = std::mem::take(&mut lock(&self.shared.queue).respawned);
            if batch.is_empty() {
                break;
            }
            self.shared.work_cv.notify_all();
            for h in batch {
                let _ = h.join();
            }
        }
    }
}

/// A cheaply clonable, shareable handle to a [`WorkerPool`].
///
/// Any number of [`MozartContext`](crate::MozartContext)s may attach the
/// same handle (`MozartContext::attach_pool`); their stages then share
/// one set of threads instead of spawning a pool per context. The pool
/// shuts down when the last handle is dropped.
#[derive(Clone)]
pub struct PoolHandle {
    pool: Arc<WorkerPool>,
}

impl PoolHandle {
    /// Spawn a shared pool of `pool_workers` threads (see
    /// [`WorkerPool::new`] for sizing guidance).
    pub fn new(pool_workers: usize) -> PoolHandle {
        PoolHandle {
            pool: Arc::new(WorkerPool::new(pool_workers)),
        }
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }
}

impl std::ops::Deref for PoolHandle {
    type Target = WorkerPool;

    fn deref(&self) -> &WorkerPool {
        &self.pool
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolHandle({} workers)", self.pool.pool_workers())
    }
}

/// The process-global shared pool, created on first use and sized
/// `default_workers() - 1` so that one saturated session uses the whole
/// machine. Serving layers that want explicit sizing should create
/// their own [`PoolHandle`] instead.
pub fn global_pool() -> PoolHandle {
    static GLOBAL: OnceLock<PoolHandle> = OnceLock::new();
    GLOBAL
        .get_or_init(|| PoolHandle::new(crate::config::default_workers().max(1) - 1))
        .clone()
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Work a pool thread dequeued: a one-shot side job or an open stage.
enum Work {
    Side(Arc<SideJob>),
    Stage(Arc<Job>),
}

/// Stack sentinel of a pool thread: if the thread unwinds (a panic
/// escaped every phase wrapper, e.g. the fault injector's
/// [`WorkerAbort`](crate::faultinject::WorkerAbort)), the sentinel's
/// drop runs during the unwind and spawns a replacement worker, so the
/// pool returns to its full complement. Normal exits (shutdown) drop it
/// without effect.
struct RespawnSentinel {
    shared: Arc<PoolShared>,
    idx: usize,
}

impl Drop for RespawnSentinel {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        // Respawn under the queue lock: `Drop for WorkerPool` sets
        // `shutdown` under the same lock, so either we see the flag and
        // stand down, or our replacement's handle lands in
        // `Queue::respawned` before the drain loop reads it.
        let mut q = lock(&self.shared.queue);
        if q.shutdown {
            return;
        }
        let shared = self.shared.clone();
        let idx = self.idx;
        if let Ok(h) = std::thread::Builder::new()
            .name(format!("mozart-worker-{idx}r"))
            .spawn(move || worker_body(shared, idx))
        {
            self.shared
                .counters
                .respawned
                .fetch_add(1, Ordering::Relaxed);
            q.respawned.push(h);
        }
        // A spawn failure here (resource exhaustion mid-unwind) leaves
        // the pool one worker short rather than aborting the process
        // with a double panic.
    }
}

/// Entry point of every pool thread, original or respawned: arm the
/// respawn sentinel, then run the park/serve loop.
fn worker_body(shared: Arc<PoolShared>, idx: usize) {
    let _sentinel = RespawnSentinel {
        shared: shared.clone(),
        idx,
    };
    worker_main(&shared);
}

/// The body of one pool thread: park until the queue holds an open job,
/// claim a participant ticket (or run a side job), repeat.
fn worker_main(shared: &PoolShared) {
    let c = &shared.counters;
    loop {
        let work = {
            let mut q = lock(&shared.queue);
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(side) = q.side.pop_front() {
                    break Work::Side(side);
                }
                // Deficit-weighted round-robin (module docs): serve the
                // open job of the most-underserved session; the FIFO
                // ablation serves the oldest open job. The nested
                // sessions lock is fine — lock order is always
                // queue -> sessions, never the reverse.
                let open = |j: &&Arc<Job>| j.open.load(Ordering::Relaxed);
                let picked = if shared.fair.load(Ordering::Relaxed) {
                    let sessions = lock(&shared.counters.sessions);
                    pick_fair(
                        q.jobs
                            .iter()
                            .enumerate()
                            .filter(|(_, j)| open(j))
                            .map(|(i, j)| (i, j.session)),
                        &sessions,
                    )
                    .and_then(|i| q.jobs.get(i))
                } else {
                    q.jobs.iter().find(open)
                };
                if let Some(job) = picked {
                    break Work::Stage(job.clone());
                }
                c.parks.fetch_add(1, Ordering::Relaxed);
                q = shared.work_cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };

        let job = match work {
            Work::Side(side) => {
                // The submitter may have reclaimed the closure already
                // (join under an empty pool moment); then this is a
                // no-op dequeue.
                if side.run_if_pending() {
                    c.side_jobs.fetch_add(1, Ordering::Relaxed);
                    c.unparks.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            Work::Stage(job) => job,
        };

        let ticket = job.tickets.fetch_add(1, Ordering::Relaxed);
        if ticket >= job.exec.participants {
            // More pool workers than the stage has batches: stop further
            // scans from picking this job up.
            job.open.store(false, Ordering::Relaxed);
            continue;
        }
        {
            let mut st = lock(&job.state);
            if st.closed {
                // The caller already drained and closed this stage.
                continue;
            }
            st.joined += 1;
        }
        // Propagate the wake chain before doing work, so the rest of
        // the pool ramps up while this worker runs batches.
        shared.work_cv.notify_one();
        c.unparks.fetch_add(1, Ordering::Relaxed);
        // Backstop catch: `run_worker` already converts phase panics to
        // typed errors, so anything unwinding out of it is a deliberate
        // worker abort (fault injection) or a defect outside the phase
        // wrappers. Either way the job's join bookkeeping MUST complete
        // before this thread dies, or the submitter blocks forever on
        // `finished == joined`.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_worker(&job.exec, &job.cursor, &job.failed, ticket)
        }));
        let (out, abort) = match caught {
            Ok(out) => (out, None),
            Err(payload) => (
                Err(Error::TaskPanicked {
                    stage: FaultPhase::Worker,
                    payload: panic_message(payload.as_ref()),
                }),
                Some(payload),
            ),
        };
        c.bump_batches(ticket, &out);
        if let Ok(o) = &out {
            // Worker-served share, the capacity DRR divides (the
            // submitting caller's own batches are excluded).
            job.worker_batches.fetch_add(o.batches, Ordering::Relaxed);
        }
        job.record(out);
        {
            let mut st = lock(&job.state);
            st.finished += 1;
            if st.closed && st.finished == st.joined {
                job.done_cv.notify_all();
            }
        }
        if let Some(payload) = abort {
            // Let the thread die; the respawn sentinel replaces it.
            std::panic::resume_unwind(payload);
        }
    }
}

/// Spawn-per-stage ablation (`Config::reuse_pool = false`): run the same
/// dynamic-scheduling driver loop, but on scoped threads created for
/// this one stage. Exists so `fig5_overheads` can measure what the
/// persistent pool saves; per-worker pool counters are not updated on
/// this path.
pub(crate) fn run_stage_scoped(job: &Arc<Job>) -> Result<Vec<WorkerOut>> {
    let participants = job.exec.participants;
    let mut outs = Vec::with_capacity(participants);
    let mut results: Vec<Option<Result<WorkerOut>>> = Vec::new();
    results.resize_with(participants - 1, || None);
    let mine = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(participants - 1);
        for w in 1..participants {
            let job = job.clone();
            handles.push(s.spawn(move || {
                let out = run_worker(&job.exec, &job.cursor, &job.failed, w);
                if out.is_err() {
                    // Match the pool path's semantics: one participant
                    // failing stops the others from claiming batches.
                    job.failed.store(true, Ordering::Relaxed);
                }
                out
            }));
        }
        let mine = run_worker(&job.exec, &job.cursor, &job.failed, 0);
        if mine.is_err() {
            job.failed.store(true, Ordering::Relaxed);
        }
        for (slot, h) in results.iter_mut().zip(handles) {
            // A panicked scoped worker surfaces typed, like the pool
            // path (regression for the historic stringly
            // `Error::Library("worker thread panicked")`).
            *slot = Some(h.join().unwrap_or_else(|payload| {
                Err(Error::TaskPanicked {
                    stage: FaultPhase::Worker,
                    payload: panic_message(payload.as_ref()),
                })
            }));
        }
        mine
    });
    outs.push(mine?);
    // Every slot was filled in the join loop above; `flatten` just
    // avoids asserting it.
    for r in results.into_iter().flatten() {
        outs.push(r?);
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn pool_spins_up_and_shuts_down() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.pool_workers(), 3);
        let s = pool.stats();
        assert_eq!(s.workers, 3);
        assert_eq!(s.jobs, 0);
        assert_eq!(
            s.per_worker_batches.len(),
            4,
            "3 pool workers + caller slot"
        );
        assert_eq!(s.per_worker_claims.len(), 4);
        assert!(s.sessions.is_empty());
        drop(pool); // must not hang
    }

    #[test]
    fn empty_pool_is_valid() {
        // workers == 1 means every stage runs inline on the caller.
        let pool = WorkerPool::new(0);
        assert_eq!(pool.pool_workers(), 0);
        drop(pool);
    }

    #[test]
    fn handles_share_one_pool() {
        let a = PoolHandle::new(2);
        let b = a.clone();
        assert_eq!(a.pool_workers(), 2);
        assert_eq!(b.pool_workers(), 2);
        drop(a);
        // The pool survives while any handle is alive.
        assert_eq!(b.stats().workers, 2);
        drop(b);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global_pool();
        let b = global_pool();
        assert!(Arc::ptr_eq(&a.pool, &b.pool));
    }

    fn counters() -> Counters {
        Counters {
            jobs: AtomicU64::new(0),
            side_jobs: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            respawned: AtomicU64::new(0),
            per_worker_batches: Vec::new(),
            per_worker_claims: Vec::new(),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    #[test]
    fn fair_pick_prefers_underserved_session_weighted() {
        let c = counters();
        // Session 1 has been served 30 batches at weight 1, session 2
        // served 40 batches at weight 2: per unit weight, session 2 is
        // the more underserved (40/2 = 20 < 30/1).
        {
            let mut sessions = lock(&c.sessions);
            session_entry(&mut sessions, 2).weight = 2;
        }
        c.note_submit(1);
        c.note_complete(1, 30, 0, 0);
        c.note_submit(2);
        c.note_complete(2, 40, 0, 0);
        let sessions = lock(&c.sessions);
        let open = [(0usize, 1u64), (1usize, 2u64)];
        assert_eq!(pick_fair(open.iter().copied(), &sessions), Some(1));
        // Queue order breaks exact ties (fresh sessions at vtime 0).
        let fresh = [(0usize, 7u64), (1usize, 8u64)];
        assert_eq!(pick_fair(fresh.iter().copied(), &sessions), Some(0));
        // No open jobs: nothing to pick.
        assert_eq!(pick_fair(std::iter::empty(), &sessions), None);
    }

    #[test]
    fn deficit_cap_bounds_idle_credit() {
        let c = counters();
        // A hot session races ahead of the clock...
        c.note_submit(1);
        c.note_complete(1, 10 * DEFICIT_CAP_BATCHES, 0, 0);
        // ...then a long-idle session submits: its vtime is clamped to
        // at most DEFICIT_CAP_BATCHES weighted batches behind.
        c.note_submit(2);
        let sessions = lock(&c.sessions);
        let hot = sessions[&1].vtime;
        let cold = sessions[&2].vtime;
        assert!(cold < hot, "cold session still holds priority");
        assert_eq!(
            hot - cold,
            DEFICIT_CAP_BATCHES * VTIME_SCALE,
            "idle credit is capped, not unbounded"
        );
    }

    #[test]
    fn eviction_skips_sessions_with_open_jobs() {
        // Regression (ISSUE 4): evicting a session with jobs in flight
        // splits its accounting across the overflow bucket and a fresh
        // entry once the jobs complete.
        let mut sessions: HashMap<u64, SessionEntry> = HashMap::new();
        for s in 0..MAX_TRACKED_SESSIONS as u64 {
            let e = sessions.entry(s).or_default();
            // Session 0 is the least-used *and* live; 1 is the least
            // used idle session.
            e.jobs = s.max(1);
        }
        sessions.get_mut(&0).unwrap().open_jobs = 1;
        let live = sessions[&0].clone();
        // A new tag at capacity evicts exactly one idle session.
        session_entry(&mut sessions, 1_000);
        assert_eq!(
            sessions.get(&0),
            Some(&live),
            "live session must not be folded into overflow"
        );
        assert!(
            !sessions.contains_key(&1),
            "least-used idle session evicted"
        );
        assert_eq!(sessions[&OVERFLOW_SESSION].jobs, 1);
        assert!(sessions.contains_key(&1_000));
    }

    #[test]
    fn eviction_prefers_default_weight_sessions() {
        // An operator-set weight marks an entry worth keeping: eviction
        // folds a default-weight idle session first, even one with more
        // completed jobs.
        let mut sessions: HashMap<u64, SessionEntry> = HashMap::new();
        for s in 0..MAX_TRACKED_SESSIONS as u64 {
            let e = sessions.entry(s).or_default();
            e.jobs = s + 1;
            e.weight = 3; // everyone premium...
        }
        sessions.get_mut(&7).unwrap().weight = 1; // ...except one
        session_entry(&mut sessions, 5_000);
        assert!(
            !sessions.contains_key(&7),
            "the default-weight session is folded first"
        );
        assert!(sessions.contains_key(&0), "premium sessions survive");
    }

    #[test]
    fn eviction_declines_when_every_session_is_live() {
        let mut sessions: HashMap<u64, SessionEntry> = HashMap::new();
        for s in 0..MAX_TRACKED_SESSIONS as u64 {
            sessions.entry(s).or_default().open_jobs = 1;
        }
        session_entry(&mut sessions, 9_999);
        // The map transiently exceeds the cap instead of corrupting a
        // live session's totals.
        assert_eq!(sessions.len(), MAX_TRACKED_SESSIONS + 1);
        assert!(!sessions.contains_key(&OVERFLOW_SESSION));
    }

    #[test]
    fn completed_jobs_advance_weighted_vtime_and_totals() {
        let c = counters();
        {
            let mut sessions = lock(&c.sessions);
            session_entry(&mut sessions, 5).weight = 4;
        }
        c.note_submit(5);
        c.note_complete(5, 8, 6, 4096);
        let sessions = lock(&c.sessions);
        let e = &sessions[&5];
        assert_eq!(
            (e.jobs, e.batches, e.worker_batches, e.bytes),
            (1, 8, 6, 4096)
        );
        assert_eq!(e.open_jobs, 0);
        assert_eq!(e.vtime, 8 * VTIME_SCALE / 4);
    }
}
