//! The lazily-captured dataflow graph (§4).
//!
//! Nodes are calls to annotated functions; values are the data flowing
//! between them. Values are versioned: when a call mutates an argument
//! in place (a `mut` argument), a new value version is created for the
//! same storage, which is how read-after-write dependencies between
//! black-box calls are represented without library cooperation.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use crate::annotation::Annotation;
use crate::value::{DataIdentity, DataValue};

/// Index of a value in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Index of a node (annotated call) in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Where a value comes from.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum ValueOrigin {
    /// Captured from the application (already materialized).
    Source,
    /// The return value of a node.
    Ret(NodeId),
    /// A new version of `prev` produced by node `node` mutating its
    /// argument `arg` in place.
    MutVersion {
        node: NodeId,
        arg: usize,
        prev: ValueId,
    },
}

/// Token proving the application still holds a `Future` for a value.
///
/// The executor merges a stage-internal result only if it is consumed by
/// a later node or the application can still observe it (the token's
/// `Arc` has outstanding clones); otherwise the pieces are discarded.
#[derive(Debug, Default)]
pub struct FutureToken;

/// A value in the dataflow graph.
pub struct ValueEntry {
    /// Provenance.
    pub origin: ValueOrigin,
    /// The value's data. For sources and mut-versions this is set at
    /// capture time (mut versions alias the mutated storage); for
    /// returned values it is filled in after the producing stage merges.
    pub data: Option<DataValue>,
    /// Whether `data` reflects completed computation.
    pub ready: bool,
    /// Nodes that read this value.
    pub consumers: Vec<NodeId>,
    /// Liveness token for application-held `Future`s (return values only).
    pub user_token: Option<Weak<FutureToken>>,
}

/// A captured annotated call.
pub struct Node {
    /// The call's annotation (split types, mutability, the function).
    pub annot: Arc<Annotation>,
    /// Value read for each argument, in annotation order.
    pub args: Vec<ValueId>,
    /// For each argument, the new value version it produces if `mut`.
    pub mut_out: Vec<Option<ValueId>>,
    /// The return value, if the annotation declares one.
    pub ret: Option<ValueId>,
    /// Set once the node's stage has executed.
    pub executed: bool,
}

/// The dataflow graph of one context.
///
/// Values and nodes accumulate over the context's lifetime;
/// `next_unplanned` tracks the boundary between executed and pending
/// nodes. Registration order is a valid topological order because a call
/// can only reference values that already exist.
#[derive(Default)]
pub struct DataflowGraph {
    /// All values, indexed by [`ValueId`].
    pub values: Vec<ValueEntry>,
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// Maps live storage identities to their latest value version.
    pub identity_map: HashMap<DataIdentity, ValueId>,
    /// Index of the first node not yet executed.
    pub next_unplanned: usize,
}

impl DataflowGraph {
    /// Add a value entry, returning its id.
    pub fn push_value(&mut self, entry: ValueEntry) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(entry);
        id
    }

    /// Add a node, updating consumer lists, returning its id.
    pub fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for &arg in &node.args {
            self.values[arg.0 as usize].consumers.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Resolve an argument `DataValue` to a graph value.
    ///
    /// Lazy handles resolve to the value they reference. Materialized
    /// values resolve through the identity map (so the latest in-place
    /// version is used), or become new sources.
    pub fn resolve_arg(&mut self, dv: &DataValue) -> ValueId {
        if let Some(ident) = dv.identity() {
            if let Some(&vid) = self.identity_map.get(&ident) {
                return vid;
            }
            let vid = self.push_value(ValueEntry {
                origin: ValueOrigin::Source,
                data: Some(dv.clone()),
                ready: true,
                consumers: Vec::new(),
                user_token: None,
            });
            self.identity_map.insert(ident, vid);
            vid
        } else {
            // Identity-less (e.g. a fresh scalar): always a new source.
            self.push_value(ValueEntry {
                origin: ValueOrigin::Source,
                data: Some(dv.clone()),
                ready: true,
                consumers: Vec::new(),
                user_token: None,
            })
        }
    }

    /// Whether all registered nodes have executed.
    pub fn fully_executed(&self) -> bool {
        self.next_unplanned >= self.nodes.len()
    }

    /// Number of pending (unexecuted) nodes.
    pub fn pending_nodes(&self) -> usize {
        self.nodes.len() - self.next_unplanned
    }

    /// Data for a value, if it has been produced.
    pub fn value_data(&self, id: ValueId) -> Option<&DataValue> {
        let e = self.values.get(id.0 as usize)?;
        if e.ready {
            e.data.as_ref()
        } else {
            None
        }
    }

    /// Data captured for a value even if its producing call has not run.
    ///
    /// Sources and in-place mut-versions have captured handles whose
    /// *shape* is already correct (in-place mutation cannot change it),
    /// which is all split type constructors may inspect (§3.2: "the
    /// split type ... does not depend on the matrix data itself").
    /// Pending returned values have no captured data.
    pub fn captured_data(&self, id: ValueId) -> Option<&DataValue> {
        self.values.get(id.0 as usize)?.data.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::IntValue;

    #[test]
    fn resolve_arg_reuses_identity() {
        let mut g = DataflowGraph::default();
        let v = DataValue::new(IntValue(1));
        let a = g.resolve_arg(&v);
        let b = g.resolve_arg(&v.clone());
        assert_eq!(a, b);
        let other = DataValue::new(IntValue(1));
        let c = g.resolve_arg(&other);
        assert_ne!(a, c);
    }

    #[test]
    fn lazy_args_have_no_identity_path() {
        let mut g = DataflowGraph::default();
        // A lazy handle is resolved by the context before reaching
        // resolve_arg; here we just confirm identity-less values fork.
        let v = DataValue::Lazy {
            ctx_id: 0,
            value: ValueId(0),
        };
        assert!(v.identity().is_none());
        let a = g.resolve_arg(&DataValue::new(IntValue(3)));
        assert!(g.value_data(a).is_some());
    }

    #[test]
    fn pending_node_accounting() {
        let g = DataflowGraph::default();
        assert!(g.fully_executed());
        assert_eq!(g.pending_nodes(), 0);
    }
}
