//! The lazily-captured dataflow graph (§4).
//!
//! Nodes are calls to annotated functions; values are the data flowing
//! between them. Values are versioned: when a call mutates an argument
//! in place (a `mut` argument), a new value version is created for the
//! same storage, which is how read-after-write dependencies between
//! black-box calls are represented without library cooperation.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use crate::annotation::{Annotation, SplitTypeExpr};
use crate::split::SplitForm;
use crate::value::{DataIdentity, DataValue};

/// Index of a value in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Index of a node (annotated call) in the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Where a value comes from.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum ValueOrigin {
    /// Captured from the application (already materialized).
    Source,
    /// The return value of a node.
    Ret(NodeId),
    /// A new version of `prev` produced by node `node` mutating its
    /// argument `arg` in place.
    MutVersion {
        node: NodeId,
        arg: usize,
        prev: ValueId,
    },
}

/// Token proving the application still holds a `Future` for a value.
///
/// The executor merges a stage-internal result only if it is consumed by
/// a later node or the application can still observe it (the token's
/// `Arc` has outstanding clones); otherwise the pieces are discarded.
#[derive(Debug, Default)]
pub struct FutureToken;

/// A value in the dataflow graph.
pub struct ValueEntry {
    /// Provenance.
    pub origin: ValueOrigin,
    /// The value's data. For sources and mut-versions this is set at
    /// capture time (mut versions alias the mutated storage); for
    /// returned values it is filled in after the producing stage merges.
    pub data: Option<DataValue>,
    /// Whether `data` reflects completed computation.
    pub ready: bool,
    /// The value held *in split form* (pieces, not merged) after its
    /// producing stage elided the merge — set instead of `data`/`ready`
    /// when the planner chose `OutputKind::SplitForm`. Consumed by the
    /// next stage's split phase, or materialized on demand if a
    /// consumer turns out to need the whole value.
    pub split_form: Option<Arc<SplitForm>>,
    /// Nodes that read this value.
    pub consumers: Vec<NodeId>,
    /// Liveness token for application-held `Future`s (return values only).
    pub user_token: Option<Weak<FutureToken>>,
}

/// A captured annotated call.
pub struct Node {
    /// The call's annotation (split types, mutability, the function).
    pub annot: Arc<Annotation>,
    /// Value read for each argument, in annotation order.
    pub args: Vec<ValueId>,
    /// For each argument, the new value version it produces if `mut`.
    pub mut_out: Vec<Option<ValueId>>,
    /// The return value, if the annotation declares one.
    pub ret: Option<ValueId>,
    /// Set once the node's stage has executed.
    pub executed: bool,
}

/// The dataflow graph of one context.
///
/// Values and nodes accumulate over the context's lifetime;
/// `next_unplanned` tracks the boundary between executed and pending
/// nodes. Registration order is a valid topological order because a call
/// can only reference values that already exist.
#[derive(Default)]
pub struct DataflowGraph {
    /// All values, indexed by [`ValueId`].
    pub values: Vec<ValueEntry>,
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// Maps live storage identities to their latest value version.
    pub identity_map: HashMap<DataIdentity, ValueId>,
    /// Index of the first node not yet executed.
    pub next_unplanned: usize,
}

impl DataflowGraph {
    /// Add a value entry, returning its id.
    pub fn push_value(&mut self, entry: ValueEntry) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(entry);
        id
    }

    /// Add a node, updating consumer lists, returning its id.
    pub fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for &arg in &node.args {
            self.values[arg.0 as usize].consumers.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// Resolve an argument `DataValue` to a graph value.
    ///
    /// Lazy handles resolve to the value they reference. Materialized
    /// values resolve through the identity map (so the latest in-place
    /// version is used), or become new sources.
    pub fn resolve_arg(&mut self, dv: &DataValue) -> ValueId {
        if let Some(ident) = dv.identity() {
            if let Some(&vid) = self.identity_map.get(&ident) {
                return vid;
            }
            let vid = self.push_value(ValueEntry {
                origin: ValueOrigin::Source,
                data: Some(dv.clone()),
                ready: true,
                split_form: None,
                consumers: Vec::new(),
                user_token: None,
            });
            self.identity_map.insert(ident, vid);
            vid
        } else {
            // Identity-less (e.g. a fresh scalar): always a new source.
            self.push_value(ValueEntry {
                origin: ValueOrigin::Source,
                data: Some(dv.clone()),
                ready: true,
                split_form: None,
                consumers: Vec::new(),
                user_token: None,
            })
        }
    }

    /// Whether all registered nodes have executed.
    pub fn fully_executed(&self) -> bool {
        self.next_unplanned >= self.nodes.len()
    }

    /// Number of pending (unexecuted) nodes.
    pub fn pending_nodes(&self) -> usize {
        self.nodes.len() - self.next_unplanned
    }

    /// Data for a value, if it has been produced.
    pub fn value_data(&self, id: ValueId) -> Option<&DataValue> {
        let e = self.values.get(id.0 as usize)?;
        if e.ready {
            e.data.as_ref()
        } else {
            None
        }
    }

    /// The split-form piece set for a value, if its producing stage
    /// elided the merge and the value has not been materialized since.
    pub fn split_form(&self, id: ValueId) -> Option<&Arc<SplitForm>> {
        let e = self.values.get(id.0 as usize)?;
        if e.ready {
            None
        } else {
            e.split_form.as_ref()
        }
    }

    /// Materialize a split-form value through the classic merge,
    /// storing the whole value on the entry. Returns `true` if a merge
    /// actually ran (the fallback counter's trigger), `false` if the
    /// value was not in split form.
    pub fn materialize_split_form(&mut self, id: ValueId) -> crate::error::Result<bool> {
        let e = match self.values.get_mut(id.0 as usize) {
            Some(e) if !e.ready && e.split_form.is_some() => e,
            _ => return Ok(false),
        };
        let sf = e.split_form.take().expect("checked above");
        let merged = sf.materialize()?;
        e.data = Some(merged);
        e.ready = true;
        Ok(true)
    }

    /// Data captured for a value even if its producing call has not run.
    ///
    /// Sources and in-place mut-versions have captured handles whose
    /// *shape* is already correct (in-place mutation cannot change it),
    /// which is all split type constructors may inspect (§3.2: "the
    /// split type ... does not depend on the matrix data itself").
    /// Pending returned values have no captured data.
    pub fn captured_data(&self, id: ValueId) -> Option<&DataValue> {
        self.values.get(id.0 as usize)?.data.as_ref()
    }

    /// Canonicalize the pending segment (the nodes registered but not
    /// yet executed) into a [`SegmentShape`]: a structural fingerprint
    /// plus a canonical numbering of every value the segment touches.
    ///
    /// Two graphs whose pending segments call the same annotations in
    /// the same dependency pattern over values of the same shapes (and,
    /// for scalars, the same values) produce equal fingerprints and
    /// matching canonical numberings, even across different contexts —
    /// this is what lets the [plan cache](crate::planner::PlanCache)
    /// replay a plan recorded in one session for a request arriving in
    /// another.
    ///
    /// Returns `None` when nothing is pending, or when some external
    /// value's shape cannot be characterized (no default splitter and
    /// not a known scalar) — such segments are simply not cacheable.
    pub fn pending_shape(&self) -> Option<SegmentShape> {
        if self.fully_executed() {
            return None;
        }
        let mut h = Fnv::new();
        let mut numbering: HashMap<ValueId, u32> = HashMap::new();
        let mut values: Vec<ValueId> = Vec::new();
        let mut externals: Vec<bool> = Vec::new();
        let mut intern =
            |v: ValueId, values: &mut Vec<ValueId>, externals: &mut Vec<bool>, ext: bool| {
                match numbering.get(&v) {
                    Some(&c) => (c, false),
                    None => {
                        let c = values.len() as u32;
                        numbering.insert(v, c);
                        values.push(v);
                        externals.push(ext);
                        (c, true)
                    }
                }
            };
        for node in &self.nodes[self.next_unplanned..] {
            // Annotation identity: the pointer (annotations are built
            // once and live in statics in the generated-wrapper idiom)
            // plus the name, as insurance against address reuse by
            // short-lived dynamic annotations.
            h.usize(Arc::as_ptr(&node.annot) as *const () as usize);
            h.bytes(node.annot.name.as_bytes());
            for (i, spec) in node.annot.args.iter().enumerate() {
                h.u64(spec.mutable as u64);
                hash_expr(&mut h, &spec.ty);
                let vid = node.args[i];
                let (c, first) = intern(vid, &mut values, &mut externals, true);
                h.u64(c as u64);
                if first {
                    // A value first seen as an argument was produced
                    // outside the segment: its shape is part of the key.
                    self.hash_external(&mut h, vid)?;
                }
            }
            for mv in node.mut_out.iter().flatten() {
                let (c, _) = intern(*mv, &mut values, &mut externals, false);
                h.u64(0x4d55_5456 ^ c as u64); // "MUTV"
            }
            match (&node.annot.ret, node.ret) {
                (Some(expr), Some(rv)) => {
                    hash_expr(&mut h, expr);
                    let (c, _) = intern(rv, &mut values, &mut externals, false);
                    h.u64(0x5245_5456 ^ c as u64); // "RETV"
                }
                _ => h.u64(0),
            }
        }
        h.u64(self.pending_nodes() as u64);
        Some(SegmentShape {
            fingerprint: h.finish(),
            values,
            externals,
        })
    }

    /// Hash the shape signature of a value produced outside the pending
    /// segment. Returns `None` (uncacheable) when the value has no data
    /// yet or no way to characterize its shape.
    fn hash_external(&self, h: &mut Fnv, vid: ValueId) -> Option<()> {
        use crate::value::{BoolValue, FloatValue, IntValue, StrValue};
        let data = self.captured_data(vid)?;
        h.bytes(data.type_name().as_bytes());
        // Scalars hash by value: they feed split type constructors
        // (array lengths, matrix dims) and function behavior directly.
        if let Some(i) = data.downcast_ref::<IntValue>() {
            h.u64(1);
            h.u64(i.0 as u64);
            return Some(());
        }
        if let Some(x) = data.downcast_ref::<FloatValue>() {
            h.u64(2);
            h.u64(x.0.to_bits());
            return Some(());
        }
        if let Some(b) = data.downcast_ref::<BoolValue>() {
            h.u64(3);
            h.u64(b.0 as u64);
            return Some(());
        }
        if let Some(s) = data.downcast_ref::<StrValue>() {
            h.u64(4);
            h.bytes(s.0.as_bytes());
            return Some(());
        }
        // Library values hash by their default split type's parameters —
        // the annotator's own shape characterization (lengths, rows,
        // dimensions). No default splitter means no shape key: refuse to
        // cache rather than risk replaying a stale plan.
        let inst = crate::registry::default_instance_for(data).ok()?;
        h.u64(5);
        h.bytes(inst.splitter.name().as_bytes());
        for p in &inst.params {
            h.u64(*p as u64);
        }
        Some(())
    }
}

/// Canonical shape of a graph's pending segment: the plan-cache key and
/// the mapping from canonical value numbers back to this graph's
/// [`ValueId`]s (see [`DataflowGraph::pending_shape`]).
pub struct SegmentShape {
    /// Structural fingerprint of the segment.
    pub fingerprint: u64,
    /// Canonical number → [`ValueId`] in this graph, in first-use order.
    pub values: Vec<ValueId>,
    /// Per canonical number: whether the value was produced *outside*
    /// the segment (its shape — and, for scalars, its value — is pinned
    /// by the fingerprint). Internal values (returns and mut-versions of
    /// pending nodes) are only pinned structurally, so cached split
    /// parameters derived from them are not trustworthy unless they can
    /// be re-derived from the bound data at replay time.
    pub externals: Vec<bool>,
}

fn hash_expr(h: &mut Fnv, expr: &SplitTypeExpr) {
    match expr {
        SplitTypeExpr::Concrete {
            splitter,
            ctor_args,
        } => {
            h.u64(0x10);
            h.bytes(splitter.name().as_bytes());
            for a in ctor_args {
                h.u64(*a as u64);
            }
        }
        SplitTypeExpr::Generic(g) => {
            h.u64(0x20);
            h.u64(*g as u64);
        }
        SplitTypeExpr::Missing => h.u64(0x30),
        SplitTypeExpr::Unknown { merger } => {
            h.u64(0x40);
            h.bytes(merger.name().as_bytes());
        }
    }
}

/// FNV-1a, 64-bit: tiny, deterministic, dependency-free.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::IntValue;

    #[test]
    fn resolve_arg_reuses_identity() {
        let mut g = DataflowGraph::default();
        let v = DataValue::new(IntValue(1));
        let a = g.resolve_arg(&v);
        let b = g.resolve_arg(&v.clone());
        assert_eq!(a, b);
        let other = DataValue::new(IntValue(1));
        let c = g.resolve_arg(&other);
        assert_ne!(a, c);
    }

    #[test]
    fn lazy_args_have_no_identity_path() {
        let mut g = DataflowGraph::default();
        // A lazy handle is resolved by the context before reaching
        // resolve_arg; here we just confirm identity-less values fork.
        let v = DataValue::Lazy {
            ctx_id: 0,
            value: ValueId(0),
        };
        assert!(v.identity().is_none());
        let a = g.resolve_arg(&DataValue::new(IntValue(3)));
        assert!(g.value_data(a).is_some());
    }

    #[test]
    fn pending_node_accounting() {
        let g = DataflowGraph::default();
        assert!(g.fully_executed());
        assert_eq!(g.pending_nodes(), 0);
    }
}
