//! Static soundness verification for annotations and stage plans.
//!
//! Mozart's runtime is only sound when annotations obey the paper's
//! typing rules (§3) and the planner's stage plans respect the
//! executor's memory discipline: placement merges write through raw
//! offsets, split-form hand-offs serve batches straight from
//! planner-derived piece ranges, and mut arguments alias user storage.
//! A bad annotation or a corrupted plan therefore fails *deep* in the
//! executor — as a wrong answer or an out-of-bounds write — long after
//! the mistake was made. This module rejects those inputs up front,
//! before anything executes.
//!
//! Two layers, one diagnostic type ([`VerifyError`]):
//!
//! * **Layer 1 — [`check_annotation`]**: the paper's annotation typing
//!   rules over a runtime-registered [`Annotation`]. Generic split-type
//!   variables must be bound by an argument before the return may use
//!   them; `unknown` is only legal in return position; constructor
//!   argument indices must be in range and never name `mut` positions
//!   (the constructor runs before the call, against pre-mutation
//!   values); `mut` arguments require a merge strategy that recovers
//!   in-place views ([`MergeStrategy::None`] or
//!   [`MergeStrategy::Concat`] — the v1→v2 migration rule); terminal
//!   split types describe partial results and may not type arguments;
//!   and a concatenation-strategy return should carry the
//!   [`Concat`](crate::split::Concat) capability so the planner's
//!   split-form rewrite is available.
//!
//! * **Layer 2 — [`verify_stage`]**: a structural proof over one
//!   [`StagePlan`] against its [`DataflowGraph`], run before execution
//!   and on every plan-cache replay bind (gated by
//!   `Config::verify_plans`): slot assignments are dense, in range and
//!   alias-free; every value a node reads is defined before use (a
//!   stage input, broadcast, or an earlier in-stage product) and never
//!   a stale pre-mutation version; no value is bound both `mut` and
//!   shared; `Discard` outputs are truly dead (no pending consumer, no
//!   live user future); `InPlace` outputs are genuine mut-versions;
//!   split inputs agree on one element total and the batch size
//!   partitions `[0, total)` exactly (which makes the placement write
//!   offsets a partition too); and split-form values — inputs and
//!   elected outputs — are contiguous piece sets under a live
//!   [`Concat`](crate::split::Concat) capability.
//!
//! Verification is cheap (a few hash lookups per stage value, no
//! allocation proportional to data) and is on by default in debug
//! builds and tests; release builds opt in via `Config::verify_plans`
//! or `MOZART_VERIFY_PLANS=1`. Verified stages are counted in
//! [`PhaseStats::plans_verified`](crate::stats::PhaseStats).

use std::collections::{HashMap, HashSet};

use crate::annotation::{Annotation, SplitTypeExpr};
use crate::config::Config;
use crate::graph::{DataflowGraph, ValueOrigin};
use crate::planner::{OutputKind, StagePlan};
use crate::split::MergeStrategy;

/// A soundness violation found by the static verifier.
///
/// Layer-1 variants carry the annotation and argument names; Layer-2
/// variants carry graph value/node indices (`v{n}` / `n{n}` in the
/// rendered message). Every variant is a *rejection*: the runtime
/// refuses to execute rather than risk an unsound run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    // ----- Layer 1: annotation typing rules (§3) -----
    /// `unknown` used outside return position. The paper defines
    /// `unknown` as a fresh unique split type for *results* whose
    /// cardinality is data-dependent; an argument typed `unknown` could
    /// never be split.
    UnknownArgType {
        /// Annotated function name.
        annotation: String,
        /// Offending argument name.
        arg: String,
    },
    /// The return is annotated with the missing (`_`) split type.
    /// `_` means "broadcast whole, never split" and is only meaningful
    /// for arguments; a `_` return would be unmergeable.
    MissingReturnType {
        /// Annotated function name.
        annotation: String,
    },
    /// The return uses a generic split-type variable that no argument
    /// binds, so inference could never resolve it.
    UnboundReturnGeneric {
        /// Annotated function name.
        annotation: String,
        /// The unbound generic's id.
        generic: u32,
    },
    /// A split-type constructor references an argument index that does
    /// not exist.
    CtorArgOutOfRange {
        /// Annotated function name.
        annotation: String,
        /// Position whose type carries the constructor ("return" for
        /// the return type).
        position: String,
        /// The out-of-range constructor index.
        index: usize,
        /// Number of declared arguments.
        arity: usize,
    },
    /// A split-type constructor references a `mut` argument.
    /// Constructors run once, before the call, against pre-mutation
    /// values; deriving split parameters from storage the same call
    /// mutates is order-dependent and unsound.
    CtorArgMutable {
        /// Annotated function name.
        annotation: String,
        /// Position whose type carries the constructor.
        position: String,
        /// The constructor index naming a mut argument.
        index: usize,
    },
    /// A `mut` argument's split type cannot recover in-place views:
    /// its merge strategy is not [`MergeStrategy::None`] or
    /// [`MergeStrategy::Concat`], or the type is generic/missing so
    /// nothing can be proven about it. Mut pieces alias the caller's
    /// storage; a commutative or custom merge would build a *new*
    /// value and silently drop the in-place writes.
    MutArgNotInPlace {
        /// Annotated function name.
        annotation: String,
        /// Offending argument name.
        arg: String,
        /// Why the type cannot recover in-place views.
        reason: String,
    },
    /// An argument is typed with a *terminal* split type. Terminal
    /// types describe partial results that must merge before any
    /// consumer runs; an argument of that type can never be split
    /// (reducer splitters are merge-only), so the annotation could
    /// never execute.
    TerminalArgType {
        /// Annotated function name.
        annotation: String,
        /// Offending argument name.
        arg: String,
        /// The terminal split type's name.
        split_type: String,
    },
    /// A return's split type declares [`MergeStrategy::Concat`] but
    /// exposes no [`Concat`](crate::split::Concat) capability, so the
    /// planner's split-form rewrite (elide merge→re-split) silently
    /// never fires for it.
    ConcatWithoutCapability {
        /// Annotated function name.
        annotation: String,
        /// The split type missing its `concat()` capability.
        split_type: String,
    },

    // ----- Layer 2: stage-plan structural rules -----
    /// A node id in the plan does not exist in the graph.
    NodeOutOfRange {
        /// The dangling node index.
        node: u32,
    },
    /// A value the stage touches has no slot assignment.
    SlotMissing {
        /// The unslotted value.
        value: u32,
    },
    /// A slot index is outside `[0, num_slots)`.
    SlotOutOfRange {
        /// The value whose slot is out of range.
        value: u32,
        /// Its assigned slot.
        slot: u32,
        /// The plan's slot count.
        num_slots: u32,
    },
    /// Two distinct values share one slot — the executor's dense value
    /// array would alias them.
    SlotAliased {
        /// The shared slot.
        slot: u32,
        /// First value mapped to it.
        first: u32,
        /// Second value mapped to it.
        second: u32,
    },
    /// A node reads a value that is neither a stage input, a broadcast,
    /// nor produced by an earlier node in the stage.
    UseBeforeDef {
        /// The reading node.
        node: u32,
        /// The undefined value.
        value: u32,
    },
    /// A node reads a pre-mutation version of storage an earlier node
    /// in the stage mutated in place — the read would observe mutated
    /// bytes under the old value's identity.
    StaleRead {
        /// The reading node.
        node: u32,
        /// The stale (pre-mutation) value.
        value: u32,
        /// The earlier node that mutated the storage.
        mutated_by: u32,
    },
    /// One node binds a value `mut` (split, written in place) while the
    /// stage also broadcasts it whole: every worker's whole-value view
    /// would race with the in-place writes. (Two *split* bindings of
    /// one value alias identical ranges — one slot per value — which
    /// elementwise annotations tolerate by design.)
    MutSharedAlias {
        /// The node with the double binding.
        node: u32,
        /// The value bound twice.
        value: u32,
    },
    /// An output marked `Discard` is still observable: a pending node
    /// outside the stage consumes it, or the application holds a live
    /// future for it.
    DiscardedLive {
        /// The wrongly discarded value.
        value: u32,
        /// A pending consumer outside the stage, if that is the leak
        /// (`None` when the leak is a live user future).
        consumer: Option<u32>,
    },
    /// An output marked `InPlace` is not a mut-version — there is no
    /// aliased storage for it to recover, so the "output" would be
    /// whatever stale data the entry held.
    InPlaceNotMutVersion {
        /// The mismarked value.
        value: u32,
    },
    /// An `InPlace` output's *resolved* split instance cannot recover
    /// in-place views (strategy is not `None`/`Concat`) — the plan-time
    /// counterpart of [`VerifyError::MutArgNotInPlace`] for generic mut
    /// arguments, whose concrete type is only known after inference.
    InPlaceBadStrategy {
        /// The output value.
        value: u32,
        /// The resolved split type.
        split_type: String,
    },
    /// An output appears in the plan but no node in the stage produces
    /// it.
    OutputNotProduced {
        /// The foreign value.
        value: u32,
    },
    /// Split inputs disagree on the stage's element total (§3.4: all
    /// split functions of a stage must produce the same number of
    /// splits).
    ElementMismatch {
        /// The disagreeing input value.
        value: u32,
        /// Total the stage's earlier inputs agreed on.
        expected: u64,
        /// This input's total.
        actual: u64,
    },
    /// The batch size cannot partition `[0, total)`: zero-sized batches
    /// would spin the driver loop and corrupt placement offsets.
    BadBatchPartition {
        /// The degenerate batch size.
        batch: u64,
        /// The stage element total.
        total: u64,
    },
    /// A split input's runtime info is unavailable — the splitter
    /// refused to characterize the value (merge-only reducers do
    /// this), so the stage could never size batches.
    InfoUnavailable {
        /// The uncharacterizable input value.
        value: u32,
        /// Its split type.
        split_type: String,
        /// The splitter's own error message.
        message: String,
    },
    /// A stage input is typed with a terminal split type: its pieces
    /// would be partial results consumed without the mandatory merge.
    TerminalInput {
        /// The input value.
        value: u32,
        /// The terminal split type's name.
        split_type: String,
    },
    /// A `SplitForm` output was elected for a split type without a
    /// usable [`Concat`](crate::split::Concat) capability (not
    /// concatenation-shaped, unknown, or no capability object) — the
    /// consuming stage could never re-slice misaligned batches.
    SplitFormNoConcat {
        /// The output value.
        value: u32,
        /// Its split type.
        split_type: String,
    },
    /// A split-form input's piece set is not contiguous from element 0
    /// or overruns its declared total — offsets into it would read the
    /// wrong elements.
    SplitFormGap {
        /// The malformed split-form value.
        value: u32,
        /// First element where contiguity breaks.
        at: u64,
    },
    /// A split-form input is bound under a different split type than
    /// the one its pieces were produced under.
    SplitFormTypeMismatch {
        /// The rebound value.
        value: u32,
        /// The type the pieces carry.
        held: String,
        /// The type the plan binds.
        bound: String,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::UnknownArgType { annotation, arg } => write!(
                f,
                "{annotation}: argument `{arg}` has the `unknown` split type; \
                 `unknown` is only legal in return position"
            ),
            VerifyError::MissingReturnType { annotation } => write!(
                f,
                "{annotation}: return type is `_`; a missing-typed return cannot be merged"
            ),
            VerifyError::UnboundReturnGeneric {
                annotation,
                generic,
            } => write!(
                f,
                "{annotation}: return type uses generic S{generic} that no argument binds"
            ),
            VerifyError::CtorArgOutOfRange {
                annotation,
                position,
                index,
                arity,
            } => write!(
                f,
                "{annotation}: {position} constructor references argument {index}, \
                 but the function has {arity} arguments"
            ),
            VerifyError::CtorArgMutable {
                annotation,
                position,
                index,
            } => write!(
                f,
                "{annotation}: {position} constructor references mut argument {index}; \
                 constructors must not depend on storage the call mutates"
            ),
            VerifyError::MutArgNotInPlace {
                annotation,
                arg,
                reason,
            } => write!(
                f,
                "{annotation}: mut argument `{arg}` cannot recover in-place views: {reason}"
            ),
            VerifyError::TerminalArgType {
                annotation,
                arg,
                split_type,
            } => write!(
                f,
                "{annotation}: argument `{arg}` is typed with terminal split type \
                 {split_type}; terminal types describe partial results and cannot \
                 type arguments"
            ),
            VerifyError::ConcatWithoutCapability {
                annotation,
                split_type,
            } => write!(
                f,
                "{annotation}: return split type {split_type} declares a Concat merge \
                 strategy but exposes no concat() capability, so split-form hand-offs \
                 can never fire"
            ),
            VerifyError::NodeOutOfRange { node } => {
                write!(f, "plan references node n{node} which does not exist")
            }
            VerifyError::SlotMissing { value } => {
                write!(f, "stage value v{value} has no slot assignment")
            }
            VerifyError::SlotOutOfRange {
                value,
                slot,
                num_slots,
            } => write!(
                f,
                "value v{value} is assigned slot {slot}, outside the stage's \
                 {num_slots} slots"
            ),
            VerifyError::SlotAliased {
                slot,
                first,
                second,
            } => write!(
                f,
                "values v{first} and v{second} share slot {slot}; the executor \
                 would alias them"
            ),
            VerifyError::UseBeforeDef { node, value } => write!(
                f,
                "node n{node} reads v{value}, which is neither a stage input nor \
                 produced earlier in the stage"
            ),
            VerifyError::StaleRead {
                node,
                value,
                mutated_by,
            } => write!(
                f,
                "node n{node} reads v{value} after node n{mutated_by} mutated that \
                 storage in place; the read would observe mutated bytes under a \
                 stale identity"
            ),
            VerifyError::MutSharedAlias { node, value } => write!(
                f,
                "node n{node} binds v{value} mut while the stage broadcasts it \
                 whole; whole-value readers would race the in-place writes"
            ),
            VerifyError::DiscardedLive { value, consumer } => match consumer {
                Some(c) => write!(
                    f,
                    "output v{value} is marked Discard but pending node n{c} \
                     outside the stage still consumes it"
                ),
                None => write!(
                    f,
                    "output v{value} is marked Discard but the application holds a \
                     live future for it"
                ),
            },
            VerifyError::InPlaceNotMutVersion { value } => write!(
                f,
                "output v{value} is marked InPlace but is not a mut-version; \
                 there is no aliased storage to recover"
            ),
            VerifyError::InPlaceBadStrategy { value, split_type } => write!(
                f,
                "InPlace output v{value} resolved to split type {split_type}, \
                 whose merge strategy cannot recover in-place views"
            ),
            VerifyError::OutputNotProduced { value } => write!(
                f,
                "output v{value} is not produced by any node in the stage"
            ),
            VerifyError::ElementMismatch {
                value,
                expected,
                actual,
            } => write!(
                f,
                "split input v{value} covers {actual} elements but the stage \
                 agreed on {expected} (§3.4: all split functions of a stage must \
                 produce the same number of splits)"
            ),
            VerifyError::BadBatchPartition { batch, total } => {
                write!(f, "batch size {batch} cannot partition [0, {total})")
            }
            VerifyError::InfoUnavailable {
                value,
                split_type,
                message,
            } => write!(
                f,
                "split input v{value} under {split_type} has no runtime info: {message}"
            ),
            VerifyError::TerminalInput { value, split_type } => write!(
                f,
                "stage input v{value} is typed with terminal split type \
                 {split_type}; partial results must merge before consumption"
            ),
            VerifyError::SplitFormNoConcat { value, split_type } => write!(
                f,
                "output v{value} was elected for split-form hand-off but split \
                 type {split_type} has no usable concat capability"
            ),
            VerifyError::SplitFormGap { value, at } => write!(
                f,
                "split-form value v{value} has a gap or overlap at element {at}"
            ),
            VerifyError::SplitFormTypeMismatch { value, held, bound } => write!(
                f,
                "split-form value v{value} holds pieces under {held} but the plan \
                 binds it as {bound}"
            ),
        }
    }
}

/// Layer 1: check a runtime-registered annotation against the paper's
/// typing rules (§3). Returns every violation found, empty when the
/// annotation is sound.
pub fn check_annotation(annot: &Annotation) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    let name = annot.name.to_string();
    let arity = annot.args.len();
    let mutable = |i: usize| annot.args.get(i).map(|s| s.mutable).unwrap_or(false);

    let mut bound_generics: HashSet<u32> = HashSet::new();
    for spec in &annot.args {
        if let SplitTypeExpr::Generic(g) = &spec.ty {
            bound_generics.insert(*g);
        }
    }

    // Constructor discipline, shared between argument and return types.
    let check_ctor = |position: &str, ctor_args: &[usize], errs: &mut Vec<VerifyError>| {
        for &idx in ctor_args {
            if idx >= arity {
                errs.push(VerifyError::CtorArgOutOfRange {
                    annotation: name.clone(),
                    position: position.to_string(),
                    index: idx,
                    arity,
                });
            } else if mutable(idx) {
                errs.push(VerifyError::CtorArgMutable {
                    annotation: name.clone(),
                    position: position.to_string(),
                    index: idx,
                });
            }
        }
    };

    for spec in &annot.args {
        match &spec.ty {
            SplitTypeExpr::Unknown { .. } => errs.push(VerifyError::UnknownArgType {
                annotation: name.clone(),
                arg: spec.name.to_string(),
            }),
            SplitTypeExpr::Concrete {
                splitter,
                ctor_args,
            } => {
                check_ctor(&format!("argument `{}`", spec.name), ctor_args, &mut errs);
                let strategy = splitter.merge_strategy();
                if strategy.terminal() {
                    errs.push(VerifyError::TerminalArgType {
                        annotation: name.clone(),
                        arg: spec.name.to_string(),
                        split_type: splitter.name().to_string(),
                    });
                }
                if spec.mutable
                    && !matches!(strategy, MergeStrategy::None | MergeStrategy::Concat { .. })
                {
                    errs.push(VerifyError::MutArgNotInPlace {
                        annotation: name.clone(),
                        arg: spec.name.to_string(),
                        reason: format!(
                            "{} merges with strategy {:?}, which builds a new value \
                             instead of recovering the mutated storage",
                            splitter.name(),
                            strategy
                        ),
                    });
                }
            }
            // Generic mut args are legal: the generic resolves to a
            // concrete instance at plan time, and the plan verifier
            // checks the resolved strategy on every InPlace output.
            SplitTypeExpr::Missing if spec.mutable => {
                errs.push(VerifyError::MutArgNotInPlace {
                    annotation: name.clone(),
                    arg: spec.name.to_string(),
                    reason: "it is broadcast whole (`_`); concurrent batches would \
                             race on the shared storage"
                        .to_string(),
                });
            }
            _ => {}
        }
    }

    match &annot.ret {
        Some(SplitTypeExpr::Missing) => errs.push(VerifyError::MissingReturnType {
            annotation: name.clone(),
        }),
        Some(SplitTypeExpr::Generic(g)) => {
            if !bound_generics.contains(g) {
                errs.push(VerifyError::UnboundReturnGeneric {
                    annotation: name.clone(),
                    generic: *g,
                });
            }
        }
        Some(SplitTypeExpr::Concrete {
            splitter: _,
            ctor_args,
        }) => {
            check_ctor("return", ctor_args, &mut errs);
        }
        Some(SplitTypeExpr::Unknown { .. }) | None => {}
    }

    errs
}

/// Advisory lints over one annotation: findings that indicate a missed
/// optimization or a suspicious declaration rather than unsoundness.
/// The runtime gate ([`check_annotation`]) does not enforce these —
/// a Concat-strategy splitter without the [`Concat`](crate::split::Concat)
/// capability still merges correctly through placement or
/// [`Splitter::merge`](crate::split::Splitter::merge) — but
/// `mozart-check` reports them so annotators
/// notice that the planner's split-form rewrite can never fire.
pub fn lint_annotation(annot: &Annotation) -> Vec<VerifyError> {
    let mut lints = Vec::new();
    let exprs = annot
        .args
        .iter()
        .map(|a| Some(&a.ty))
        .chain(std::iter::once(annot.ret.as_ref()));
    let mut seen: Vec<&str> = Vec::new();
    for expr in exprs.flatten() {
        if let SplitTypeExpr::Concrete { splitter, .. } = expr {
            if seen.contains(&splitter.name()) {
                continue;
            }
            seen.push(splitter.name());
            if matches!(splitter.merge_strategy(), MergeStrategy::Concat { .. })
                && splitter.concat().is_none()
            {
                lints.push(VerifyError::ConcatWithoutCapability {
                    annotation: annot.name.to_string(),
                    split_type: splitter.name().to_string(),
                });
            }
        }
    }
    lints
}

/// Layer 2: statically prove one stage plan sound against its graph.
///
/// Run before execution (and on every plan-cache replay bind) when
/// `Config::verify_plans` is set. Returns the first violation found;
/// the caller surfaces it as [`Error::Verify`](crate::error::Error)
/// and refuses to execute the stage.
pub fn verify_stage(
    graph: &DataflowGraph,
    plan: &StagePlan,
    config: &Config,
) -> Result<(), VerifyError> {
    // --- Slot map integrity -------------------------------------------
    let mut slot_owner: HashMap<u32, u32> = HashMap::new();
    let mut check_slot = |vid: crate::graph::ValueId| -> Result<(), VerifyError> {
        let slot = match plan.slots.get(&vid) {
            Some(&s) => s,
            None => return Err(VerifyError::SlotMissing { value: vid.0 }),
        };
        if slot >= plan.num_slots {
            return Err(VerifyError::SlotOutOfRange {
                value: vid.0,
                slot,
                num_slots: plan.num_slots,
            });
        }
        match slot_owner.get(&slot) {
            Some(&owner) if owner != vid.0 => Err(VerifyError::SlotAliased {
                slot,
                first: owner,
                second: vid.0,
            }),
            _ => {
                slot_owner.insert(slot, vid.0);
                Ok(())
            }
        }
    };

    for (vid, _) in &plan.inputs {
        check_slot(*vid)?;
    }
    for vid in &plan.broadcast {
        check_slot(*vid)?;
    }
    for &nid in &plan.nodes {
        let node = graph
            .nodes
            .get(nid.0 as usize)
            .ok_or(VerifyError::NodeOutOfRange { node: nid.0 })?;
        for &a in &node.args {
            check_slot(a)?;
        }
        for mv in node.mut_out.iter().flatten() {
            check_slot(*mv)?;
        }
        if let Some(rv) = node.ret {
            check_slot(rv)?;
        }
    }

    // --- Def-before-use, stale reads, mut/shared aliasing -------------
    let mut defined: HashSet<crate::graph::ValueId> = HashSet::new();
    for (vid, _) in &plan.inputs {
        defined.insert(*vid);
    }
    for vid in &plan.broadcast {
        defined.insert(*vid);
    }
    // Base value -> node that mutated its storage earlier in the stage.
    let mut mutated: HashMap<crate::graph::ValueId, u32> = HashMap::new();
    // Everything a node in this stage produces (rets + mut versions).
    let mut produced: HashSet<crate::graph::ValueId> = HashSet::new();

    for &nid in &plan.nodes {
        let node = &graph.nodes[nid.0 as usize];
        for (i, &a) in node.args.iter().enumerate() {
            if !defined.contains(&a) {
                return Err(VerifyError::UseBeforeDef {
                    node: nid.0,
                    value: a.0,
                });
            }
            if let Some(&m) = mutated.get(&a) {
                return Err(VerifyError::StaleRead {
                    node: nid.0,
                    value: a.0,
                    mutated_by: m,
                });
            }
            // A value bound mut (split, written in place) that is also
            // broadcast whole to every worker: the whole-value readers
            // race with the in-place writers. Two *split* bindings of
            // the same value are fine — one slot per value means both
            // positions see the identical range, the aliasing
            // elementwise annotations document as tolerated.
            if node.mut_out.get(i).map(|m| m.is_some()).unwrap_or(false)
                && plan.broadcast.contains(&a)
            {
                return Err(VerifyError::MutSharedAlias {
                    node: nid.0,
                    value: a.0,
                });
            }
        }
        for (i, mv) in node.mut_out.iter().enumerate() {
            if let Some(mv) = mv {
                mutated.insert(node.args[i], nid.0);
                defined.insert(*mv);
                produced.insert(*mv);
            }
        }
        if let Some(rv) = node.ret {
            defined.insert(rv);
            produced.insert(rv);
        }
    }

    // --- Output discipline --------------------------------------------
    let stage_nodes: HashSet<u32> = plan.nodes.iter().map(|n| n.0).collect();
    for out in &plan.outputs {
        if !produced.contains(&out.value) {
            return Err(VerifyError::OutputNotProduced { value: out.value.0 });
        }
        let entry = &graph.values[out.value.0 as usize];
        match out.kind {
            OutputKind::Discard => {
                for c in &entry.consumers {
                    if !stage_nodes.contains(&c.0) && !graph.nodes[c.0 as usize].executed {
                        return Err(VerifyError::DiscardedLive {
                            value: out.value.0,
                            consumer: Some(c.0),
                        });
                    }
                }
                let user_visible = entry
                    .user_token
                    .as_ref()
                    .map(|w| w.strong_count() > 0)
                    .unwrap_or(false);
                if user_visible {
                    return Err(VerifyError::DiscardedLive {
                        value: out.value.0,
                        consumer: None,
                    });
                }
            }
            OutputKind::InPlace => {
                if !matches!(entry.origin, ValueOrigin::MutVersion { .. }) {
                    return Err(VerifyError::InPlaceNotMutVersion { value: out.value.0 });
                }
                // The annotation checker can only vet *concrete* mut
                // arg types; a generic one resolves here, so re-check
                // that the resolved strategy recovers in-place views.
                if !matches!(
                    out.instance.merge_strategy(),
                    MergeStrategy::None | MergeStrategy::Concat { .. }
                ) {
                    return Err(VerifyError::InPlaceBadStrategy {
                        value: out.value.0,
                        split_type: out.instance.splitter.name().to_string(),
                    });
                }
            }
            OutputKind::SplitForm => {
                if out.instance.split_form_concat().is_none() {
                    return Err(VerifyError::SplitFormNoConcat {
                        value: out.value.0,
                        split_type: out.instance.splitter.name().to_string(),
                    });
                }
            }
            OutputKind::Merge => {}
        }
    }

    // --- Element totals, batch partition, split-form inputs -----------
    let mut total: Option<u64> = None;
    let mut sum_elem_bytes: u64 = 0;
    for (vid, instance) in &plan.inputs {
        if instance.terminal() {
            return Err(VerifyError::TerminalInput {
                value: vid.0,
                split_type: instance.splitter.name().to_string(),
            });
        }
        let (input_total, elem_bytes) = if let Some(sf) = graph.split_form(*vid) {
            if !sf.instance().same_type(instance) {
                return Err(VerifyError::SplitFormTypeMismatch {
                    value: vid.0,
                    held: format!("{:?}", sf.instance()),
                    bound: format!("{instance:?}"),
                });
            }
            if sf.instance().split_form_concat().is_none() {
                return Err(VerifyError::SplitFormNoConcat {
                    value: vid.0,
                    split_type: sf.instance().splitter.name().to_string(),
                });
            }
            let mut cursor = 0u64;
            for (start, end) in sf.ranges() {
                if start != cursor || end < start {
                    return Err(VerifyError::SplitFormGap {
                        value: vid.0,
                        at: cursor,
                    });
                }
                cursor = end;
            }
            if cursor > sf.total() {
                return Err(VerifyError::SplitFormGap {
                    value: vid.0,
                    at: sf.total(),
                });
            }
            (sf.total(), sf.elem_size_bytes())
        } else {
            // Verification must work on *pending* plans: fall back to
            // captured (pre-execution) data where the merged value does
            // not exist yet, exactly like the planner's constructor
            // pass. Values with no data at all (returns of earlier
            // unexecuted stages) cannot be characterized here; skip
            // them rather than reject — the executor re-checks totals
            // when it binds real data.
            match graph.captured_data(*vid) {
                Some(data) => match instance.splitter.info(data, &instance.params) {
                    Ok(info) => (info.total_elements, info.elem_size_bytes),
                    Err(e) => {
                        return Err(VerifyError::InfoUnavailable {
                            value: vid.0,
                            split_type: instance.splitter.name().to_string(),
                            message: e.to_string(),
                        })
                    }
                },
                None => continue,
            }
        };
        match total {
            None => total = Some(input_total),
            Some(t) if t == input_total => {}
            Some(t) => {
                return Err(VerifyError::ElementMismatch {
                    value: vid.0,
                    expected: t,
                    actual: input_total,
                })
            }
        }
        sum_elem_bytes += elem_bytes;
    }

    // Batch partition proof: with total `n` and batch `b >= 1`, the
    // executor's cursor claims ranges [i*b, min((i+1)*b, n)), which
    // partition [0, n) exactly — each element lands in range i = e/b,
    // ranges are disjoint by construction, and the last range clamps to
    // n. The only degenerate case is b == 0 (driver spin, placement
    // offset corruption), which batch_elements is supposed to make
    // impossible; prove it per stage anyway.
    let total_elements = total.unwrap_or(1);
    let batch = config.batch_elements(sum_elem_bytes, total_elements);
    if batch == 0 || (total_elements > 0 && batch > total_elements) {
        return Err(VerifyError::BadBatchPartition {
            batch,
            total: total_elements,
        });
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::{concrete, generic, missing, unknown, Annotation};
    use crate::split::{SizeSplit, SplitInstance, Splitter};
    use crate::value::DataValue;
    use std::ops::Range;
    use std::sync::Arc;

    /// A merge-only terminal reducer for rule tests.
    struct TermReduce;
    impl Splitter for TermReduce {
        fn name(&self) -> &'static str {
            "TermReduce"
        }
        fn construct(&self, _c: &[&DataValue]) -> crate::error::Result<crate::split::Params> {
            Ok(vec![])
        }
        fn info(
            &self,
            _a: &DataValue,
            _p: &crate::split::Params,
        ) -> crate::error::Result<crate::split::RuntimeInfo> {
            Err(crate::error::Error::Split {
                split_type: "TermReduce",
                message: "merge-only".into(),
            })
        }
        fn split(
            &self,
            _a: &DataValue,
            _r: Range<u64>,
            _p: &crate::split::Params,
        ) -> crate::error::Result<Option<DataValue>> {
            Err(crate::error::Error::Split {
                split_type: "TermReduce",
                message: "merge-only".into(),
            })
        }
        fn merge(
            &self,
            pieces: Vec<DataValue>,
            _p: &crate::split::Params,
            _t: u64,
        ) -> crate::error::Result<DataValue> {
            Ok(pieces.into_iter().next().expect("nonempty"))
        }
        fn merge_strategy(&self) -> MergeStrategy {
            MergeStrategy::Commutative { terminal: true }
        }
    }

    /// A concat-strategy splitter with no concat capability.
    struct ConcatNoCap;
    impl Splitter for ConcatNoCap {
        fn name(&self) -> &'static str {
            "ConcatNoCap"
        }
        fn construct(&self, _c: &[&DataValue]) -> crate::error::Result<crate::split::Params> {
            Ok(vec![])
        }
        fn info(
            &self,
            _a: &DataValue,
            _p: &crate::split::Params,
        ) -> crate::error::Result<crate::split::RuntimeInfo> {
            Ok(crate::split::RuntimeInfo {
                total_elements: 1,
                elem_size_bytes: 0,
            })
        }
        fn split(
            &self,
            a: &DataValue,
            _r: Range<u64>,
            _p: &crate::split::Params,
        ) -> crate::error::Result<Option<DataValue>> {
            Ok(Some(a.clone()))
        }
        fn merge(
            &self,
            pieces: Vec<DataValue>,
            _p: &crate::split::Params,
            _t: u64,
        ) -> crate::error::Result<DataValue> {
            Ok(pieces.into_iter().next().expect("nonempty"))
        }
        fn merge_strategy(&self) -> MergeStrategy {
            MergeStrategy::Concat { placement: None }
        }
    }

    fn noop(_: &crate::annotation::Invocation<'_>) -> crate::error::Result<Option<DataValue>> {
        Ok(None)
    }

    #[test]
    fn sound_annotation_passes() {
        let a = Annotation::new("ok", noop)
            .arg("size", concrete(Arc::new(SizeSplit), vec![0]))
            .arg("x", generic(0))
            .ret(generic(0))
            .build();
        assert!(check_annotation(&a).is_empty());
    }

    #[test]
    fn unknown_arg_rejected() {
        let a = Annotation::new("bad", noop)
            .arg("x", unknown(Arc::new(SizeSplit)))
            .build();
        let errs = check_annotation(&a);
        assert!(
            matches!(errs[0], VerifyError::UnknownArgType { .. }),
            "{errs:?}"
        );
    }

    #[test]
    fn unbound_return_generic_rejected() {
        let a = Annotation::new("bad", noop)
            .arg("x", generic(0))
            .ret(generic(1))
            .build();
        let errs = check_annotation(&a);
        assert!(
            matches!(
                errs[0],
                VerifyError::UnboundReturnGeneric { generic: 1, .. }
            ),
            "{errs:?}"
        );
    }

    #[test]
    fn ctor_rules_rejected() {
        let a = Annotation::new("bad", noop)
            .arg("x", concrete(Arc::new(SizeSplit), vec![5]))
            .build();
        let errs = check_annotation(&a);
        assert!(
            matches!(
                errs[0],
                VerifyError::CtorArgOutOfRange {
                    index: 5,
                    arity: 1,
                    ..
                }
            ),
            "{errs:?}"
        );

        let a = Annotation::new("bad2", noop)
            .arg("x", generic(0))
            .mut_arg(
                "out",
                concrete(Arc::new(crate::array_split::ArraySplit), vec![1]),
            )
            .build();
        let errs = check_annotation(&a);
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::CtorArgMutable { index: 1, .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn mut_arg_strategy_rules() {
        // Commutative strategy cannot recover in-place views.
        let a = Annotation::new("bad", noop)
            .mut_arg("out", concrete(Arc::new(SizeSplit), vec![]))
            .build();
        let errs = check_annotation(&a);
        assert!(
            errs.iter()
                .any(|e| matches!(e, VerifyError::MutArgNotInPlace { .. })),
            "{errs:?}"
        );
        // A broadcast (`_`) mut arg would race across batches.
        let a = Annotation::new("bad2", noop)
            .mut_arg("out", missing())
            .build();
        assert!(check_annotation(&a)
            .iter()
            .any(|e| matches!(e, VerifyError::MutArgNotInPlace { .. })));
        // A generic mut arg is fine at annotation level: the plan
        // verifier checks the resolved instance instead.
        let a = Annotation::new("ok2", noop)
            .mut_arg("out", generic(0))
            .build();
        assert!(check_annotation(&a).is_empty());
        // ArraySplit (Concat) mut args are the sanctioned pattern.
        let a = Annotation::new("ok", noop)
            .mut_arg(
                "out",
                concrete(Arc::new(crate::array_split::ArraySplit), vec![]),
            )
            .build();
        assert!(check_annotation(&a).is_empty());
    }

    #[test]
    fn terminal_arg_rejected_and_ret_allowed() {
        let a = Annotation::new("bad", noop)
            .arg("x", concrete(Arc::new(TermReduce), vec![]))
            .build();
        let errs = check_annotation(&a);
        assert!(
            matches!(errs[0], VerifyError::TerminalArgType { .. }),
            "{errs:?}"
        );
        let a = Annotation::new("ok", noop)
            .arg("x", generic(0))
            .ret(concrete(Arc::new(TermReduce), vec![]))
            .build();
        assert!(check_annotation(&a).is_empty());
    }

    #[test]
    fn concat_ret_without_capability_is_a_lint_not_an_error() {
        let a = Annotation::new("bad", noop)
            .arg("x", generic(0))
            .ret(concrete(Arc::new(ConcatNoCap), vec![]))
            .build();
        // Legal at runtime: placement / Splitter::merge still work.
        assert!(check_annotation(&a).is_empty());
        // But mozart-check reports the missed split-form rewrite.
        let lints = lint_annotation(&a);
        assert!(
            matches!(lints[0], VerifyError::ConcatWithoutCapability { .. }),
            "{lints:?}"
        );
    }

    #[test]
    fn missing_ret_rejected() {
        let a = Annotation::new("bad", noop)
            .arg("x", generic(0))
            .ret(missing())
            .build();
        let errs = check_annotation(&a);
        assert!(
            matches!(errs[0], VerifyError::MissingReturnType { .. }),
            "{errs:?}"
        );
    }

    #[test]
    fn terminal_input_instance_rejected_in_plan() {
        use crate::graph::{DataflowGraph, ValueId};
        use crate::planner::StagePlan;
        let graph = DataflowGraph::default();
        let inst = SplitInstance::new(Arc::new(TermReduce), vec![]);
        let plan = StagePlan {
            nodes: vec![],
            inputs: vec![(ValueId(0), inst)],
            broadcast: vec![],
            outputs: vec![],
            slots: std::iter::once((ValueId(0), 0)).collect(),
            num_slots: 1,
        };
        let err = verify_stage(&graph, &plan, &Config::with_workers(1)).unwrap_err();
        assert!(matches!(err, VerifyError::TerminalInput { .. }), "{err}");
    }
}
