//! The parallel, pipelined execution engine (§5.2).
//!
//! Each stage is executed by (1) discovering runtime parameters via the
//! splitting API's `Info` function and choosing a cache-sized batch,
//! (2) running the *driver loop* — split every input for a batch, call
//! every function in the stage on the pieces, stash result pieces — on
//! the participants of the context's persistent [worker
//! pool](crate::pool), and (3) merging partial results per worker and
//! then once more on the calling thread.
//!
//! Two properties distinguish this engine from a naive per-stage
//! fork/join:
//!
//! * **Workers are persistent and scheduling is dynamic.** Threads are
//!   created once per context and park between stages; batches are
//!   claimed from a shared atomic cursor rather than pre-partitioned
//!   into static ranges, so a worker that draws an expensive batch
//!   (skewed split or data-dependent task cost) never idles the rest of
//!   the pool. The calling thread participates as worker 0, which keeps
//!   single-batch stages handoff-free.
//! * **The driver loop is hash-free.** The planner assigns every
//!   stage-local value a dense `u32` slot at plan time
//!   ([`StagePlan::slots`]); arguments, returns, and mut-aliases are
//!   resolved to slot offsets once per stage in `build_exec_stage`,
//!   and the per-batch loop indexes a flat `Vec<Option<DataValue>>`.
//!   Broadcast (`_`-typed) values are written once per worker, not once
//!   per batch.
//!
//! Because batches may complete out of claim order, every stashed piece
//! carries the element range that produced it. Workers pre-merge
//! contiguous runs (or everything, for
//! [commutative](crate::split::MergeStrategy::Commutative) merges such
//! as reductions), and the final merge orders runs by element offset, so
//! split types still observe pieces in element order (§3.4).
//!
//! # Placement merges
//!
//! Concat-shaped outputs additionally support a *placement* fast path
//! (`Config::placement_merge`, on by default): when a split type's
//! [`merge_strategy`](crate::split::Splitter::merge_strategy) is
//! [`MergeStrategy::Concat`](crate::split::MergeStrategy::Concat) with a
//! [`Placement`] capability, the merged value
//! is preallocated once — on the first result piece any worker
//! produces, so data-dependent layouts (DataFrame schemas, column
//! dtypes) size correctly — and every worker then
//! [`write_piece`](crate::split::Placement::write_piece)s its results
//! directly at their element offsets inside the driver loop. The
//! worker-local pre-merge and the serial O(total) final concat both
//! disappear: merging becomes parallel in-place writes, exactly like
//! the mut-argument `SliceView` path that MKL-style outputs already
//! take. Out-of-claim-order batches are harmless (offsets are absolute),
//! and a `NULL`-split tail shrinks the output to the written prefix via
//! [`truncate_merged`](crate::split::Placement::truncate_merged).
//!
//! Outputs whose split type declines placement still avoid serial tail
//! latency where possible: a final merge whose value no later node
//! consumes ([`StageOutput::last_use`](crate::planner::StageOutput)) is
//! dispatched to the worker pool as a one-shot side job and joined only
//! when evaluation finishes, overlapping the merge with planning and
//! executing subsequent stages.
//!
//! # Split-form hand-offs
//!
//! When the planner marks an output [`OutputKind::SplitForm`] (see the
//! split-form rewrite in [`crate::planner`]), the merge is elided
//! entirely: worker batch pieces are collected with their element
//! ranges (never locally merged, placement disabled) and stored on the
//! value entry as a [`SplitForm`] — an ordered, contiguous piece set.
//! The *consuming* stage's `build_exec_stage` recognizes the form and
//! serves its batches from [`SplitForm::slice`] instead of calling the
//! split type's `split` on a materialized value: a batch range landing
//! on piece boundaries is a clone of the piece (the common case, since
//! batch sizing is deterministic in the element count and per-element
//! footprint, both preserved by the hand-off), and a misaligned range
//! is re-sliced through the split type's
//! [`Concat`](crate::split::Concat) capability (counted in
//! [`PhaseStats::split_form_reslices`]). Cancellation, fault injection,
//! tracing, and pedantic checks all apply unchanged — the hand-off only
//! replaces where batch pieces come from and where result pieces go.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::annotation::Invocation;
use crate::config::Config;
use crate::cputime::{cpu_elapsed, thread_cpu_now};
use crate::error::{Error, Result};
use crate::faultinject::{panic_message, CancelToken, FaultPhase, FaultPlan, WorkerAbort};
use crate::graph::{DataflowGraph, ValueId};
use crate::planner::{OutputKind, StagePlan};
use crate::pool::{run_stage_scoped, Job, SideJob, WorkerPool};
use crate::split::{Placement, SplitForm, SplitInstance};
use crate::stats::PhaseStats;
use crate::trace::{SpanKind, TraceCtx, SERVICE_WORKER};
use crate::value::DataValue;

/// Saturating `Duration -> u64` nanoseconds for span fields.
#[inline]
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Immutable description of a stage shared across worker threads.
///
/// All values are addressed by dense plan-time slot indices; see the
/// module docs.
pub(crate) struct ExecStage {
    nodes: Vec<ExecNode>,
    inputs: Vec<ExecInput>,
    /// Values passed whole to every batch, written once per worker.
    broadcast: Vec<(u32, DataValue)>,
    /// Outputs whose pieces must be collected and merged.
    merge_outputs: Vec<MergeOutput>,
    /// Slots written by node execution, cleared at the top of every
    /// batch so output-presence checks see only this batch's pieces.
    produced_slots: Vec<u32>,
    num_slots: usize,
    pub(crate) total_elements: u64,
    /// Per-element footprint summed over the split inputs (split info
    /// API); `total_elements · sum_elem_bytes` is the stage's nominal
    /// split cost in bytes, the signal behind per-session byte budgets.
    pub(crate) sum_elem_bytes: u64,
    batch: u64,
    /// Worker count for this stage (callers + pool workers), already
    /// capped by the number of batches.
    pub(crate) participants: usize,
    log_calls: bool,
    pedantic: bool,
    /// Index of this stage in the owning evaluation (0-based), the
    /// coordinate fault points address stages by.
    stage_idx: u64,
    /// The config's fault-injection schedule, consulted per batch phase.
    faults: Option<Arc<FaultPlan>>,
    /// Cooperative cancellation: polled at batch boundaries; a
    /// cancelled token abandons the stage with [`Error::Cancelled`].
    cancel: Option<Arc<CancelToken>>,
    /// Span recorder + trace id (see [`crate::trace`]); rides into pool
    /// jobs so worker threads record per-batch phase spans under the
    /// request's trace. `None` when tracing is off, costing one branch
    /// per phase.
    trace: Option<TraceCtx>,
}

struct ExecInput {
    slot: u32,
    instance: SplitInstance,
    data: InputData,
}

/// The backing storage a split input draws its batch pieces from.
enum InputData {
    /// A materialized value; batches are cut by the split type's
    /// `split` function (the classic path).
    Whole(DataValue),
    /// A split-form hand-off from the producing stage
    /// ([`OutputKind::SplitForm`]): batches are served from the piece
    /// set by [`SplitForm::slice`] — a clone when batch boundaries line
    /// up with piece boundaries (the common case, since batch sizing is
    /// deterministic in the element count and footprint both preserved
    /// by the hand-off), a `Concat`-capability re-slice otherwise.
    Pieces(Arc<SplitForm>),
}

struct ExecNode {
    name: &'static str,
    func: crate::annotation::LibFn,
    /// Argument slots, in annotation order.
    args: Vec<u32>,
    /// `(arg index, mut-version slot)`: after the call, the mut version
    /// aliases the argument's piece.
    mut_alias: Vec<(usize, u32)>,
    ret: Option<u32>,
}

struct MergeOutput {
    slot: u32,
    value: ValueId,
    instance: SplitInstance,
    /// Cached: whether the merge strategy is commutative.
    commutative: bool,
    /// Whether no unexecuted node outside the stage consumes the value
    /// (see [`crate::planner::StageOutput`]); such final merges may be
    /// overlapped with subsequent planning.
    last_use: bool,
    /// Placement-merge capability + probe state; `None` when the config
    /// disables placement or the split type's merge strategy carries no
    /// placement capability (commutative merges never do — partial
    /// results have no meaningful element offsets).
    placement: Option<PlacementMerge>,
    /// `true` for [`OutputKind::SplitForm`] outputs: the pieces are
    /// never merged — they are collected (each batch piece its own run,
    /// placement disabled) and handed to the consuming stage as a
    /// [`SplitForm`].
    split_form: bool,
}

/// One output's placement merge: the split type's capability object and
/// the resolve-once probe state shared across workers.
struct PlacementMerge {
    cap: Arc<dyn Placement>,
    state: PlacementState,
}

/// Shared state of one output's placement merge, resolved exactly once
/// across all workers.
struct PlacementState {
    /// `Some(out)` once a worker allocated the placement output (every
    /// piece is then written in place); `None` once the split type
    /// declined placement for this stage (pieces collect as usual).
    /// Resolved on the first piece produced, whichever worker gets
    /// there first.
    out: OnceLock<Option<DataValue>>,
    /// Elements written across all pieces.
    written: AtomicU64,
    /// Highest element offset written (exclusive).
    high: AtomicU64,
}

impl PlacementState {
    fn new() -> PlacementState {
        PlacementState {
            out: OnceLock::new(),
            written: AtomicU64::new(0),
            high: AtomicU64::new(0),
        }
    }
}

/// `(merge result, merge duration)` slot a side job fills in.
type MergeSlot = Arc<Mutex<Option<(Result<DataValue>, Duration)>>>;

/// A final merge dispatched to the pool as a side job, joined when the
/// evaluation finishes (see the module docs on overlapped merges).
pub(crate) struct DeferredMerge {
    value: ValueId,
    side: Arc<SideJob>,
    /// Result slot written by the side job.
    result: MergeSlot,
    /// Split instance of the merged output, for byte accounting at join.
    instance: SplitInstance,
}

impl DeferredMerge {
    /// Wait for the merge (running it inline if no pool worker picked
    /// it up), materialize the value, and account the merge time.
    pub(crate) fn join(self, graph: &mut DataflowGraph, stats: &mut PhaseStats) -> Result<()> {
        self.side.join();
        // An empty slot after join means the merge closure panicked so
        // hard its own phase wrapper could not record a result (the
        // side job's outer catch keeps the submitter from blocking
        // forever); surface it as a typed merge panic.
        let (result, took) = self
            .result
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .unwrap_or_else(|| {
                (
                    Err(Error::TaskPanicked {
                        stage: FaultPhase::Merge,
                        payload: "overlapped final merge panicked on a pool worker".into(),
                    }),
                    Duration::ZERO,
                )
            });
        stats.merge += took;
        let merged = result?;
        stats.bytes_merged += merged_bytes(&self.instance, &merged);
        let entry = &mut graph.values[self.value.0 as usize];
        entry.data = Some(merged);
        entry.ready = true;
        Ok(())
    }
}

/// Nominal size in bytes of a materialized merge output, via the split
/// info API (`total_elements · elem_size_bytes`); zero when the info
/// call declines, since byte budgets are a load-shedding signal, not an
/// exact meter.
fn merged_bytes(instance: &SplitInstance, merged: &DataValue) -> u64 {
    if instance.is_unknown() {
        // `unknown` instances carry no params and only delegate their
        // merge; their info contract does not cover merged values.
        return 0;
    }
    instance
        .splitter
        .info(merged, &instance.params)
        .map(|i| i.total_elements.saturating_mul(i.elem_size_bytes))
        .unwrap_or(0)
}

/// Run one phase of the batch pipeline with panic isolation: a panic
/// unwinding out of foreign split/task/merge code is caught at the
/// phase boundary and surfaced as the typed
/// [`Error::TaskPanicked`], attributed to `phase` — the worker thread
/// (and every other job on the pool) survives. The one exception is the
/// fault injector's [`WorkerAbort`] marker, which is deliberately
/// re-raised so chaos tests can exercise the pool's respawn supervisor.
pub(crate) fn catch_phase<T>(phase: FaultPhase, f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            if payload.downcast_ref::<WorkerAbort>().is_some() {
                std::panic::resume_unwind(payload);
            }
            Err(Error::TaskPanicked {
                stage: phase,
                payload: panic_message(payload.as_ref()),
            })
        }
    }
}

/// Consult the stage's fault plan at one (phase, batch) point and
/// trigger whatever it schedules. Called *inside* the phase's
/// [`catch_phase`] wrapper so injected panics take the same typed path
/// organic panics do.
#[inline]
fn inject(exec: &ExecStage, phase: FaultPhase, batch_idx: u64, worker_idx: usize) -> Result<()> {
    if let Some(plan) = &exec.faults {
        if let Some(kind) = plan.check(exec.stage_idx, phase, batch_idx) {
            kind.trigger(phase, exec.stage_idx, batch_idx, worker_idx)?;
        }
    }
    Ok(())
}

/// A merged (or single) piece covering elements `[start, end)`. The
/// classic merge path only orders by `start`; split-form hand-offs also
/// need `end` to rebuild the piece set's element ranges.
pub(crate) struct PieceRun {
    start: u64,
    end: u64,
    piece: DataValue,
}

/// Per-worker result: pre-merged partial runs and phase timings.
pub(crate) struct WorkerOut {
    /// Per merge output: runs in increasing element order.
    partials: Vec<Vec<PieceRun>>,
    split: Duration,
    task: Duration,
    merge: Duration,
    pub(crate) batches: u64,
    calls: u64,
    /// Result pieces written in place by the placement fast path.
    placement_writes: u64,
    /// Batch ranges served from a split-form input that did not line up
    /// with a hand-off piece boundary and went through a
    /// `Concat`-capability re-slice.
    split_form_reslices: u64,
    /// Cursor claims (each covering a guided span of >= 1 batches).
    pub(crate) claims: u64,
    /// Batches this worker claimed that static partitioning would have
    /// assigned to a different worker.
    pub(crate) stolen: u64,
}

/// Execute one stage, materializing its outputs into the graph.
///
/// `session` tags the pool job for per-session fairness accounting when
/// the pool is shared between contexts (see
/// [`PoolStats::sessions`](crate::stats::PoolStats)). Final merges that
/// can be overlapped with subsequent planning are pushed onto
/// `deferred` instead of running here; the caller must join every
/// [`DeferredMerge`] before the evaluation returns.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_stage(
    graph: &mut DataflowGraph,
    stage: &StagePlan,
    config: &Config,
    stats: &mut PhaseStats,
    pool: Option<&WorkerPool>,
    session: u64,
    cancel: Option<&Arc<CancelToken>>,
    trace: Option<&TraceCtx>,
    deferred: &mut Vec<DeferredMerge>,
) -> Result<()> {
    let stage_idx = stats.stages;
    if let Some(c) = cancel {
        if c.is_cancelled() {
            return Err(Error::Cancelled(format!(
                "evaluation abandoned before stage {stage_idx}"
            )));
        }
    }
    let exec = build_exec_stage(
        graph,
        stage,
        config,
        stage_idx,
        cancel.cloned(),
        trace.cloned(),
    )?;

    // Stage-start placement allocation: split types whose parameters
    // determine the output layout allocate (and pre-fault) the merged
    // value here, on the calling thread while the pool is parked —
    // first-touch page faults taken inside worker merge windows would
    // contend with the parallel phase's own faults. Data-dependent
    // layouts resolve later, on the first piece produced. Counted as
    // merge time: it is the placement path's share of what the
    // collect-then-concat path pays inside its final merge.
    let t_alloc = thread_cpu_now();
    for mo in &exec.merge_outputs {
        if let Some(pm) = &mo.placement {
            if let Some(out) =
                pm.cap
                    .alloc_merged(exec.total_elements, &mo.instance.params, None)?
            {
                let _ = pm.state.out.set(Some(out));
            }
        }
    }
    let prealloc = cpu_elapsed(t_alloc, thread_cpu_now());

    let job = Job::new(exec, session);

    let mut outs: Vec<WorkerOut> = if job.exec.participants <= 1 {
        vec![run_worker(&job.exec, &job.cursor, &job.failed, 0)?]
    } else if let Some(pool) = pool {
        // Whatever `config.reuse_pool` says, a provided pool is used:
        // an attached shared pool must never be bypassed by a session
        // config that happens to disable context-owned pools.
        pool.run_stage(&job)?
    } else {
        // Spawn-per-stage ablation for the fig5 overhead benchmark
        // (`reuse_pool = false`, no attached pool): the context owns no
        // pool in this mode.
        run_stage_scoped(&job)?
    };
    let exec = &job.exec;

    // Final merge on the calling thread (§5.2 step 3): order every
    // worker's partial runs by element offset, then merge once.
    // Placement outputs skip all of this — their pieces already live in
    // the preallocated value — and non-placement outputs nothing later
    // consumes are dispatched to the pool instead of merged here.
    let t0 = thread_cpu_now();
    let w0 = trace.map(|t| t.recorder.now_ns());
    for (i, mo) in exec.merge_outputs.iter().enumerate() {
        if let Some(merged) = finish_placement(mo, exec.total_elements)? {
            stats.bytes_merged += merged_bytes(&mo.instance, &merged);
            let entry = &mut graph.values[mo.value.0 as usize];
            entry.data = Some(merged);
            entry.ready = true;
            continue;
        }
        // Take ownership of the runs out of the worker results instead
        // of cloning every piece into the merge call.
        let mut runs: Vec<PieceRun> = outs
            .iter_mut()
            .flat_map(|o| std::mem::take(&mut o.partials[i]))
            .collect();
        if runs.is_empty() {
            return Err(Error::Merge {
                split_type: mo.instance.splitter.name(),
                message: format!(
                    "stage {stage_idx} produced no pieces for its {} output \
                     (v{}): every batch came back empty",
                    mo.instance.splitter.name(),
                    mo.value.0
                ),
            });
        }
        runs.sort_by_key(|r| r.start);
        if mo.split_form {
            // Split-form hand-off: no merge at all. The ordered piece
            // set (with element ranges) is stored on the value entry for
            // the consuming stage's split phase to slice from;
            // `SplitForm::new` validates contiguity, so an interior gap
            // a concat would have silently closed fails loudly here.
            let pieces: Vec<(u64, u64, DataValue)> = runs
                .into_iter()
                .map(|r| (r.start, r.end, r.piece))
                .collect();
            let piece_count = pieces.len() as u64;
            // Per-element footprint via the split info API on the first
            // piece (the info contract covers pieces; elem size is
            // range-independent). Zero when the info call declines —
            // byte-budget degradation, not a correctness issue.
            let elem_size = mo
                .instance
                .splitter
                .info(&pieces[0].2, &mo.instance.params)
                .map(|i| i.elem_size_bytes)
                .unwrap_or(0);
            let sf = SplitForm::new(pieces, exec.total_elements, mo.instance.clone(), elem_size)?;
            let entry = &mut graph.values[mo.value.0 as usize];
            entry.split_form = Some(Arc::new(sf));
            entry.data = None;
            entry.ready = false;
            stats.split_form_handoffs += 1;
            if let Some(t) = trace {
                // Near-zero-duration marker span: the elided-merge
                // analogue of FinalMerge (arg = stage, link = pieces).
                let now = t.recorder.now_ns();
                t.emit(
                    SpanKind::SplitFormHandoff,
                    SERVICE_WORKER,
                    stage_idx,
                    piece_count,
                    now,
                    0,
                    0,
                );
            }
            continue;
        }
        let pieces: Vec<DataValue> = runs.into_iter().map(|r| r.piece).collect();
        // Merge-size hint (ROADMAP): the final merged value covers the
        // stage's whole element range, so concat-style mergers can
        // preallocate once instead of growing per piece.
        if let (true, Some(pool)) = (config.placement_merge && mo.last_use, pool) {
            // Overlapped final merge: nothing later in the graph reads
            // this value, so the concat can ride on a pool worker while
            // the caller plans and executes subsequent stages.
            let instance = mo.instance.clone();
            let total = exec.total_elements;
            let result: MergeSlot = Arc::new(Mutex::new(None));
            let result2 = Arc::clone(&result);
            let side = SideJob::new(move || {
                let t = thread_cpu_now();
                // Phase-wrapped so a panicking foreign merge reaches
                // the submitter as the typed error through the result
                // slot (the side job's own catch would otherwise leave
                // the slot empty and lose the payload).
                let merged = catch_phase(FaultPhase::Merge, || {
                    instance.splitter.merge(pieces, &instance.params, total)
                });
                let took = cpu_elapsed(t, thread_cpu_now());
                *result2.lock().unwrap_or_else(|p| p.into_inner()) = Some((merged, took));
            });
            pool.submit_side(Arc::clone(&side));
            deferred.push(DeferredMerge {
                value: mo.value,
                side,
                result,
                instance: mo.instance.clone(),
            });
            stats.overlapped_merges += 1;
            continue;
        }
        let merged = catch_phase(FaultPhase::Merge, || {
            mo.instance
                .splitter
                .merge(pieces, &mo.instance.params, exec.total_elements)
        })?;
        stats.bytes_merged += merged_bytes(&mo.instance, &merged);
        let entry = &mut graph.values[mo.value.0 as usize];
        entry.data = Some(merged);
        entry.ready = true;
    }
    let final_merge = cpu_elapsed(t0, thread_cpu_now());
    if let (Some(t), Some(w0)) = (trace, w0) {
        // One final-merge span per stage on the calling thread; CPU time
        // also folds in the stage-start placement preallocation, which
        // is the placement path's share of merge work.
        t.emit(
            SpanKind::FinalMerge,
            SERVICE_WORKER,
            stage_idx,
            0,
            w0,
            t.recorder.now_ns().saturating_sub(w0),
            duration_ns(final_merge + prealloc),
        );
    }

    // Materialize in-place and discarded outputs.
    for out in &stage.outputs {
        let entry = &mut graph.values[out.value.0 as usize];
        match out.kind {
            OutputKind::InPlace => entry.ready = true,
            OutputKind::Discard => entry.ready = false,
            OutputKind::Merge | OutputKind::SplitForm => {} // handled above
        }
    }

    for &n in &stage.nodes {
        graph.nodes[n.0 as usize].executed = true;
    }
    graph.next_unplanned += stage.nodes.len();

    // Phase accounting: worker-parallel phases report the per-stage max.
    stats.stages += 1;
    stats.split += outs.iter().map(|o| o.split).max().unwrap_or_default();
    stats.task += outs.iter().map(|o| o.task).max().unwrap_or_default();
    stats.merge += outs.iter().map(|o| o.merge).max().unwrap_or_default() + final_merge + prealloc;
    stats.batches += outs.iter().map(|o| o.batches).sum::<u64>();
    stats.calls += outs.iter().map(|o| o.calls).sum::<u64>();
    stats.placement_writes += outs.iter().map(|o| o.placement_writes).sum::<u64>();
    stats.split_form_reslices += outs.iter().map(|o| o.split_form_reslices).sum::<u64>();
    stats.bytes_split += exec.total_elements.saturating_mul(exec.sum_elem_bytes);
    Ok(())
}

/// Complete a placement merge, if this output resolved to one: the
/// pieces already live in the preallocated value, so the "merge" is a
/// coverage check plus, for `NULL`-split tails, a truncation to the
/// written prefix.
fn finish_placement(mo: &MergeOutput, total_elements: u64) -> Result<Option<DataValue>> {
    let Some(pm) = &mo.placement else {
        return Ok(None);
    };
    let ps = &pm.state;
    // `None` cell: no piece was ever produced (the no-pieces error on
    // the classic path below reports it) or the splitter declined.
    let Some(Some(out)) = ps.out.get() else {
        return Ok(None);
    };
    let written = ps.written.load(Ordering::Relaxed);
    let high = ps.high.load(Ordering::Relaxed);
    if written != high {
        // A batch inside the written range produced no piece: the
        // output has an interior hole, which a concat of collected
        // pieces would have silently closed but an in-place buffer
        // cannot. Fail loudly rather than return stale elements.
        return Err(Error::Merge {
            split_type: mo.instance.splitter.name(),
            message: format!(
                "placement output has interior gaps: {written} of {high} \
                 leading elements written"
            ),
        });
    }
    if high == total_elements {
        return Ok(Some(out.clone()));
    }
    // NULL-split tail: the sources dried up before the declared total.
    pm.cap
        .truncate_merged(out.clone(), high, &mo.instance.params)
        .map(Some)
}

/// Gather materialized data, run `Info`, size batches, and resolve every
/// value reference to its dense slot.
fn build_exec_stage(
    graph: &DataflowGraph,
    stage: &StagePlan,
    config: &Config,
    stage_idx: u64,
    cancel: Option<Arc<CancelToken>>,
    trace: Option<TraceCtx>,
) -> Result<ExecStage> {
    let mut inputs = Vec::with_capacity(stage.inputs.len());
    let mut total: Option<u64> = None;
    let mut sum_elem_bytes: u64 = 0;

    for (vid, instance) in &stage.inputs {
        // A split-form hand-off serves batches straight from its piece
        // set; its element count and footprint come from the form (the
        // producing stage's info results), never from a split call on
        // the unmaterialized value.
        let (data, input_total, elem_bytes) = if let Some(sf) = graph.split_form(*vid) {
            (
                InputData::Pieces(Arc::clone(sf)),
                sf.total(),
                sf.elem_size_bytes(),
            )
        } else {
            let data = graph
                .value_data(*vid)
                .cloned()
                .ok_or(Error::ValueUnavailable)?;
            let info = instance.splitter.info(&data, &instance.params)?;
            (
                InputData::Whole(data),
                info.total_elements,
                info.elem_size_bytes,
            )
        };
        match total {
            None => total = Some(input_total),
            Some(t) if t == input_total => {}
            Some(t) => {
                return Err(Error::ElementMismatch {
                    expected: t,
                    actual: input_total,
                })
            }
        }
        sum_elem_bytes += elem_bytes;
        inputs.push(ExecInput {
            slot: stage.slot_of(*vid),
            instance: instance.clone(),
            data,
        });
    }

    // A stage with no split inputs (e.g. a call whose arguments are all
    // `_`) executes as a single batch of one element.
    let total_elements = total.unwrap_or(1);
    let batch = config.batch_elements(sum_elem_bytes, total_elements);
    let num_batches = total_elements.div_ceil(batch.max(1)).max(1);
    let participants = config.workers.max(1).min(num_batches as usize);

    let mut broadcast = Vec::with_capacity(stage.broadcast.len());
    for vid in &stage.broadcast {
        let data = graph
            .value_data(*vid)
            .cloned()
            .ok_or(Error::ValueUnavailable)?;
        broadcast.push((stage.slot_of(*vid), data));
    }

    let mut nodes = Vec::with_capacity(stage.nodes.len());
    let mut produced_slots: Vec<u32> = Vec::new();
    for &nid in &stage.nodes {
        let node = &graph.nodes[nid.0 as usize];
        let mut_alias: Vec<(usize, u32)> = node
            .mut_out
            .iter()
            .enumerate()
            .filter_map(|(i, mv)| mv.map(|v| (i, stage.slot_of(v))))
            .collect();
        let ret = node.ret.map(|rv| stage.slot_of(rv));
        produced_slots.extend(mut_alias.iter().map(|&(_, s)| s));
        produced_slots.extend(ret);
        nodes.push(ExecNode {
            name: node.annot.name,
            func: node.annot.func.clone(),
            args: node.args.iter().map(|a| stage.slot_of(*a)).collect(),
            mut_alias,
            ret,
        });
    }
    produced_slots.sort_unstable();
    produced_slots.dedup();

    let merge_outputs = stage
        .outputs
        .iter()
        .filter(|o| matches!(o.kind, OutputKind::Merge | OutputKind::SplitForm))
        .map(|o| {
            let split_form = o.kind == OutputKind::SplitForm;
            let strategy = o.instance.merge_strategy();
            let commutative = strategy.commutative();
            // The placement capability comes straight from the merge
            // strategy probe (`MergeStrategy::Concat { placement }`).
            // `unknown` outputs (filters, anything whose pieces do not
            // correspond to input elements, §3.2) compact: a piece may
            // hold fewer elements than the batch that produced it, so
            // batch offsets are meaningless there and the merger must
            // concatenate; commutative strategies cannot carry
            // placement by construction. Split-form outputs never take
            // placement — the whole point is that no merged value is
            // ever allocated.
            let placement = (config.placement_merge && !o.instance.is_unknown() && !split_form)
                .then(|| strategy.placement().cloned())
                .flatten()
                .map(|cap| PlacementMerge {
                    cap,
                    state: PlacementState::new(),
                });
            MergeOutput {
                slot: stage.slot_of(o.value),
                value: o.value,
                commutative,
                last_use: o.last_use,
                placement,
                split_form,
                instance: o.instance.clone(),
            }
        })
        .collect();

    Ok(ExecStage {
        nodes,
        inputs,
        broadcast,
        merge_outputs,
        produced_slots,
        num_slots: stage.num_slots as usize,
        total_elements,
        sum_elem_bytes,
        batch,
        participants,
        log_calls: config.log_calls,
        pedantic: config.pedantic,
        stage_idx,
        faults: config.fault_plan.clone(),
        cancel,
        trace,
    })
}

/// The driver loop (§5.2 step 2) for one participant.
///
/// Claims batches from the shared `cursor` until the elements are
/// exhausted, a split returns `NULL`, or another participant fails.
pub(crate) fn run_worker(
    exec: &ExecStage,
    cursor: &AtomicU64,
    failed: &AtomicBool,
    worker_idx: usize,
) -> Result<WorkerOut> {
    let mut out = WorkerOut {
        partials: Vec::new(),
        split: Duration::ZERO,
        task: Duration::ZERO,
        merge: Duration::ZERO,
        batches: 0,
        calls: 0,
        placement_writes: 0,
        split_form_reslices: 0,
        claims: 0,
        stolen: 0,
    };
    // Raw pieces per merge output, tagged `(start, end, piece)`. Claims
    // from the shared cursor are monotonic, so these stay sorted.
    let mut pending: Vec<Vec<(u64, u64, DataValue)>> = vec![Vec::new(); exec.merge_outputs.len()];
    let mut slots: Vec<Option<DataValue>> = vec![None; exec.num_slots];
    for (slot, data) in &exec.broadcast {
        slots[*slot as usize] = Some(data.clone());
    }
    // The range a static partitioner would have given this worker, for
    // the steal counter.
    let static_share = exec
        .total_elements
        .div_ceil(exec.participants.max(1) as u64)
        .max(1);

    'driver: loop {
        if failed.load(Ordering::Relaxed) {
            break;
        }
        // Guided claim spans (ROADMAP): while many batches remain, claim
        // `remaining / (2 · participants)` batches per `fetch_add` so the
        // cursor cache line is touched O(workers · log batches) times
        // instead of once per batch; the halving keeps the tail fine-
        // grained for load balance. The estimate reads a possibly stale
        // cursor, which only affects span length, never claim ownership.
        let batch = exec.batch.max(1);
        let span_batches = {
            let pos = cursor.load(Ordering::Relaxed);
            if pos >= exec.total_elements {
                break;
            }
            let remaining = (exec.total_elements - pos).div_ceil(batch);
            (remaining / (2 * exec.participants.max(1) as u64)).max(1)
        };
        let start = cursor.fetch_add(span_batches * batch, Ordering::Relaxed);
        if start >= exec.total_elements {
            break;
        }
        let claim_end = (start + span_batches * batch).min(exec.total_elements);
        out.claims += 1;
        let mut start = start;
        while start < claim_end {
            if failed.load(Ordering::Relaxed) {
                break 'driver;
            }
            // Cooperative cancellation, polled per batch: a request
            // whose deadline passed stops burning pool time here, at
            // the claim boundary — a batch that already started always
            // runs to completion (library calls are never interrupted).
            if let Some(c) = &exec.cancel {
                if c.is_cancelled() {
                    failed.store(true, Ordering::Relaxed);
                    return Err(Error::Cancelled(format!(
                        "deadline passed or token cancelled at stage {} \
                         batch boundary",
                        exec.stage_idx
                    )));
                }
            }
            let end = (start + batch).min(claim_end);
            let batch_idx = start / batch;

            // Split every input for this batch. Worker-parallel
            // phases are timed on the per-thread CPU clock (see
            // `crate::cputime`): wall windows on an oversubscribed
            // host charge a phase for every preemption that lands in
            // it, which systematically misattributes scheduler noise
            // to whichever phase has the most windows.
            //
            // Each phase body runs under `catch_phase`: a panic in
            // foreign split/task/merge code fails this job with the
            // typed `Error::TaskPanicked` and the thread survives.
            let t0 = thread_cpu_now();
            let w0 = exec.trace.as_ref().map(|t| t.recorder.now_ns());
            for &s in &exec.produced_slots {
                slots[s as usize] = None;
            }
            let null_split = catch_phase(FaultPhase::Split, || {
                inject(exec, FaultPhase::Split, batch_idx, worker_idx)?;
                let mut produced = 0usize;
                for input in &exec.inputs {
                    // Split-form inputs never see a `split` call — their
                    // batches come straight from the hand-off piece set
                    // (a clone when the range lands on piece boundaries,
                    // a `Concat` re-slice otherwise).
                    let piece = match &input.data {
                        InputData::Whole(data) => input.instance.splitter.split(
                            data,
                            start..end,
                            &input.instance.params,
                        )?,
                        InputData::Pieces(sf) => sf.slice(start..end)?.map(|(piece, resliced)| {
                            if resliced {
                                out.split_form_reslices += 1;
                            }
                            piece
                        }),
                    };
                    match piece {
                        Some(piece) => {
                            slots[input.slot as usize] = Some(piece);
                            produced += 1;
                        }
                        None => {
                            if exec.pedantic && produced > 0 {
                                return Err(Error::Pedantic(format!(
                                    "split type {} returned NULL for elements [{start}, {end}) \
                                 while other inputs produced pieces",
                                    input.instance.splitter.name()
                                )));
                            }
                            // The paper's NULL return: no data here,
                            // stop claiming.
                            return Ok(true);
                        }
                    }
                }
                Ok(false)
            });
            let split_cpu = cpu_elapsed(t0, thread_cpu_now());
            out.split += split_cpu;
            if let (Some(t), Some(w0)) = (&exec.trace, w0) {
                t.emit(
                    SpanKind::Split,
                    worker_idx as u32,
                    exec.stage_idx,
                    batch_idx,
                    w0,
                    t.recorder.now_ns().saturating_sub(w0),
                    duration_ns(split_cpu),
                );
            }
            if null_split? {
                break 'driver;
            }

            // Run the pipeline on this batch's pieces.
            let t1 = thread_cpu_now();
            let w1 = exec.trace.as_ref().map(|t| t.recorder.now_ns());
            let task_result = catch_phase(FaultPhase::Task, || {
                inject(exec, FaultPhase::Task, batch_idx, worker_idx)?;
                for node in &exec.nodes {
                    let mut args: Vec<DataValue> = Vec::with_capacity(node.args.len());
                    for &slot in &node.args {
                        match &slots[slot as usize] {
                            Some(piece) => args.push(piece.clone()),
                            None => return Err(Error::ValueUnavailable),
                        }
                    }
                    if exec.log_calls {
                        eprintln!(
                    "mozart: worker {worker_idx} call {} on elements [{start}, {end}) ({} args)",
                    node.name,
                    args.len()
                );
                    }
                    let inv = Invocation {
                        function: node.name,
                        args: &args,
                    };
                    let ret = (node.func)(&inv)?;
                    for &(arg_idx, mv_slot) in &node.mut_alias {
                        slots[mv_slot as usize] = Some(args[arg_idx].clone());
                    }
                    match (ret, node.ret) {
                        (Some(piece), Some(rv_slot)) => {
                            slots[rv_slot as usize] = Some(piece);
                        }
                        (None, None) => {}
                        (None, Some(_)) => {
                            return Err(Error::Library(format!(
                                "{} is annotated with a return split type but returned nothing",
                                node.name
                            )))
                        }
                        (Some(_), None) => {
                            return Err(Error::Library(format!(
                                "{} returned a value but its annotation declares none",
                                node.name
                            )))
                        }
                    }
                    out.calls += 1;
                }
                Ok(())
            });
            let task_cpu = cpu_elapsed(t1, thread_cpu_now());
            out.task += task_cpu;
            if let (Some(t), Some(w1)) = (&exec.trace, w1) {
                t.emit(
                    SpanKind::Task,
                    worker_idx as u32,
                    exec.stage_idx,
                    batch_idx,
                    w1,
                    t.recorder.now_ns().saturating_sub(w1),
                    duration_ns(task_cpu),
                );
            }
            task_result?;

            // Stash pieces of observable outputs ("moved to a list of
            // partial results", §5.2), tagged with their element range —
            // or, on the placement path, write them straight into the
            // preallocated merge output at their element offset.
            catch_phase(FaultPhase::Merge, || {
                inject(exec, FaultPhase::Merge, batch_idx, worker_idx)?;
                for (i, mo) in exec.merge_outputs.iter().enumerate() {
                    match &slots[mo.slot as usize] {
                        Some(piece) => {
                            if let Some(pm) = &mo.placement {
                                let t2 = thread_cpu_now();
                                let w2 = exec.trace.as_ref().map(|t| t.recorder.now_ns());
                                let mut alloc_err: Option<Error> = None;
                                // Resolve the placement decision exactly
                                // once, on the first piece any worker
                                // produces — it serves as the exemplar for
                                // data-dependent output layouts.
                                let placed = pm.state.out.get_or_init(|| {
                                    match pm.cap.alloc_merged(
                                        exec.total_elements,
                                        &mo.instance.params,
                                        Some(piece),
                                    ) {
                                        Ok(v) => v,
                                        Err(e) => {
                                            alloc_err = Some(e);
                                            None
                                        }
                                    }
                                });
                                if let Some(e) = alloc_err {
                                    return Err(e);
                                }
                                if let Some(out_val) = placed {
                                    // Coverage tracks the piece's actual
                                    // element count, not the batch range:
                                    // a source that dries up mid-batch
                                    // writes fewer elements, and the
                                    // truncation below must not include
                                    // the unwritten remainder.
                                    let n = pm.cap.write_piece(out_val, start, piece)?;
                                    pm.state.written.fetch_add(n, Ordering::Relaxed);
                                    pm.state.high.fetch_max(start + n, Ordering::Relaxed);
                                    out.placement_writes += 1;
                                    let write_cpu = cpu_elapsed(t2, thread_cpu_now());
                                    out.merge += write_cpu;
                                    if let (Some(t), Some(w2)) = (&exec.trace, w2) {
                                        t.emit(
                                            SpanKind::PlacementWrite,
                                            worker_idx as u32,
                                            exec.stage_idx,
                                            batch_idx,
                                            w2,
                                            t.recorder.now_ns().saturating_sub(w2),
                                            duration_ns(write_cpu),
                                        );
                                    }
                                    continue;
                                }
                                out.merge += cpu_elapsed(t2, thread_cpu_now());
                            }
                            pending[i].push((start, end, piece.clone()));
                        }
                        None if exec.pedantic => {
                            return Err(Error::Pedantic(format!(
                                "output of split type {} missing after batch [{start}, {end})",
                                mo.instance.splitter.name()
                            )))
                        }
                        None => {}
                    }
                }
                Ok(())
            })?;

            if start / static_share != worker_idx as u64 {
                out.stolen += 1;
            }
            out.batches += 1;
            start = end;
        }
    }

    // Worker-local merge (§5.2 step 3, first level). Commutative merges
    // fold everything this worker produced into one partial; order-
    // sensitive merges fold each contiguous run so the final merge can
    // order them globally.
    let t2 = thread_cpu_now();
    let w2 = exec.trace.as_ref().map(|t| t.recorder.now_ns());
    let partials = catch_phase(FaultPhase::Merge, || {
        exec.merge_outputs
            .iter()
            .zip(pending.iter_mut())
            .map(|(mo, pieces)| local_merge(mo, std::mem::take(pieces)))
            .collect::<Result<Vec<Vec<PieceRun>>>>()
    });
    let merge_cpu = cpu_elapsed(t2, thread_cpu_now());
    out.merge += merge_cpu;
    if let (Some(t), Some(w2)) = (&exec.trace, w2) {
        if out.batches > 0 {
            t.emit(
                SpanKind::Merge,
                worker_idx as u32,
                exec.stage_idx,
                0,
                w2,
                t.recorder.now_ns().saturating_sub(w2),
                duration_ns(merge_cpu),
            );
        }
    }
    out.partials = partials?;
    Ok(out)
}

/// First-level merge of one worker's pieces for one output.
fn local_merge(mo: &MergeOutput, pieces: Vec<(u64, u64, DataValue)>) -> Result<Vec<PieceRun>> {
    if pieces.is_empty() {
        return Ok(Vec::new());
    }
    if mo.split_form {
        // No merging at any level: each batch piece stays its own run,
        // so the hand-off keeps per-batch granularity and the consuming
        // stage's aligned batches take the clone fast path instead of
        // re-slicing out of a worker-concatenated chunk.
        return Ok(pieces
            .into_iter()
            .map(|(start, end, piece)| PieceRun { start, end, piece })
            .collect());
    }
    if mo.commutative {
        let start = pieces[0].0;
        let end = pieces.last().map(|&(_, e, _)| e).unwrap_or(start);
        let covered: u64 = pieces.iter().map(|(s, e, _)| e - s).sum();
        let piece = merge_group(mo, pieces.into_iter().map(|p| p.2).collect(), covered)?;
        return Ok(vec![PieceRun { start, end, piece }]);
    }
    let mut runs = Vec::new();
    let mut group: Vec<DataValue> = Vec::new();
    let mut group_start = 0;
    let mut group_end = 0;
    for (start, end, piece) in pieces {
        if !group.is_empty() && start != group_end {
            runs.push(PieceRun {
                start: group_start,
                end: group_end,
                piece: merge_group(mo, std::mem::take(&mut group), group_end - group_start)?,
            });
        }
        if group.is_empty() {
            group_start = start;
        }
        group_end = end;
        group.push(piece);
    }
    if !group.is_empty() {
        runs.push(PieceRun {
            start: group_start,
            end: group_end,
            piece: merge_group(mo, group, group_end - group_start)?,
        });
    }
    Ok(runs)
}

/// Merge a group of pieces covering `elements` elements, skipping the
/// library call for singletons.
fn merge_group(mo: &MergeOutput, mut group: Vec<DataValue>, elements: u64) -> Result<DataValue> {
    if group.len() == 1 {
        return Ok(group.pop().expect("len checked"));
    }
    mo.instance
        .splitter
        .merge(group, &mo.instance.params, elements)
}
