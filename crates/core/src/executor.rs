//! The parallel, pipelined execution engine (§5.2).
//!
//! Each stage is executed by (1) discovering runtime parameters via the
//! splitting API's `Info` function and choosing a cache-sized batch,
//! (2) statically partitioning elements across worker threads, each of
//! which runs the *driver loop* — split every input, call every function
//! in the stage on the pieces, stash result pieces — and (3) merging
//! partial results per worker and then once more on the calling thread.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::annotation::Invocation;
use crate::config::Config;
use crate::error::{Error, Result};
use crate::graph::{DataflowGraph, ValueId};
use crate::planner::{OutputKind, StagePlan};
use crate::split::SplitInstance;
use crate::stats::PhaseStats;
use crate::value::DataValue;

/// Immutable description of a stage shared across worker threads.
struct ExecStage {
    nodes: Vec<ExecNode>,
    inputs: Vec<ExecInput>,
    /// Materialized values passed whole to every batch: `(value, data)`.
    broadcast: Vec<(ValueId, DataValue)>,
    /// Outputs whose pieces must be collected and merged.
    merge_outputs: Vec<(ValueId, SplitInstance)>,
    total_elements: u64,
    batch: u64,
    log_calls: bool,
    pedantic: bool,
}

struct ExecInput {
    value: ValueId,
    instance: SplitInstance,
    data: DataValue,
}

struct ExecNode {
    name: &'static str,
    func: crate::annotation::LibFn,
    args: Vec<ValueId>,
    /// `(arg index, mut-version value)`: after the call, the mut version
    /// aliases the argument's piece.
    mut_alias: Vec<(usize, ValueId)>,
    ret: Option<ValueId>,
}

/// Per-worker result: merged partials and phase timings.
struct WorkerOut {
    /// One merged partial per merge output (None if the worker produced
    /// no pieces for it).
    partials: Vec<Option<DataValue>>,
    split: Duration,
    task: Duration,
    merge: Duration,
    batches: u64,
    calls: u64,
}

/// Execute one stage, materializing its outputs into the graph.
pub fn execute_stage(
    graph: &mut DataflowGraph,
    stage: &StagePlan,
    config: &Config,
    stats: &mut PhaseStats,
) -> Result<()> {
    let exec = build_exec_stage(graph, stage, config)?;

    let workers = effective_workers(config.workers, exec.total_elements);
    let per_worker = exec.total_elements.div_ceil(workers as u64);

    let mut outs: Vec<WorkerOut> = Vec::with_capacity(workers);
    if workers == 1 {
        outs.push(run_worker(&exec, 0..exec.total_elements)?);
    } else {
        let mut results: Vec<Option<Result<WorkerOut>>> = Vec::new();
        results.resize_with(workers, || None);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let start = w as u64 * per_worker;
                let end = (start + per_worker).min(exec.total_elements);
                let exec = &exec;
                handles.push(s.spawn(move || run_worker(exec, start..end)));
            }
            for (slot, h) in results.iter_mut().zip(handles) {
                *slot = Some(h.join().unwrap_or_else(|_| {
                    Err(Error::Library("worker thread panicked".into()))
                }));
            }
        });
        for r in results {
            outs.push(r.expect("worker result collected")?);
        }
    }

    // Final merge on the calling thread (§5.2 step 3).
    let t0 = Instant::now();
    for (i, (vid, instance)) in exec.merge_outputs.iter().enumerate() {
        let pieces: Vec<DataValue> =
            outs.iter().filter_map(|o| o.partials[i].clone()).collect();
        if pieces.is_empty() {
            return Err(Error::Merge {
                split_type: instance.splitter.name(),
                message: format!("no pieces produced for output of stage"),
            });
        }
        let merged = instance.splitter.merge(pieces, &instance.params)?;
        let entry = &mut graph.values[vid.0 as usize];
        entry.data = Some(merged);
        entry.ready = true;
    }
    let final_merge = t0.elapsed();

    // Materialize in-place and discarded outputs.
    for out in &stage.outputs {
        let entry = &mut graph.values[out.value.0 as usize];
        match out.kind {
            OutputKind::InPlace => entry.ready = true,
            OutputKind::Discard => entry.ready = false,
            OutputKind::Merge => {} // handled above
        }
    }

    for &n in &stage.nodes {
        graph.nodes[n.0 as usize].executed = true;
    }
    graph.next_unplanned += stage.nodes.len();

    // Phase accounting: worker-parallel phases report the per-stage max.
    stats.stages += 1;
    stats.split += outs.iter().map(|o| o.split).max().unwrap_or_default();
    stats.task += outs.iter().map(|o| o.task).max().unwrap_or_default();
    stats.merge +=
        outs.iter().map(|o| o.merge).max().unwrap_or_default() + final_merge;
    stats.batches += outs.iter().map(|o| o.batches).sum::<u64>();
    stats.calls += outs.iter().map(|o| o.calls).sum::<u64>();
    Ok(())
}

fn effective_workers(configured: usize, total: u64) -> usize {
    configured.max(1).min(total.max(1) as usize)
}

/// Gather materialized data, run `Info`, and size batches.
fn build_exec_stage(
    graph: &DataflowGraph,
    stage: &StagePlan,
    config: &Config,
) -> Result<ExecStage> {
    let mut inputs = Vec::with_capacity(stage.inputs.len());
    let mut total: Option<u64> = None;
    let mut sum_elem_bytes: u64 = 0;

    for (vid, instance) in &stage.inputs {
        let data = graph.value_data(*vid).cloned().ok_or(Error::ValueUnavailable)?;
        let info = instance.splitter.info(&data, &instance.params)?;
        match total {
            None => total = Some(info.total_elements),
            Some(t) if t == info.total_elements => {}
            Some(t) => {
                return Err(Error::ElementMismatch {
                    expected: t,
                    actual: info.total_elements,
                })
            }
        }
        sum_elem_bytes += info.elem_size_bytes;
        inputs.push(ExecInput { value: *vid, instance: instance.clone(), data });
    }

    // A stage with no split inputs (e.g. a call whose arguments are all
    // `_`) executes as a single batch of one element.
    let total_elements = total.unwrap_or(1);
    let batch = config.batch_elements(sum_elem_bytes, total_elements);

    let mut broadcast = Vec::with_capacity(stage.broadcast.len());
    for vid in &stage.broadcast {
        let data = graph.value_data(*vid).cloned().ok_or(Error::ValueUnavailable)?;
        broadcast.push((*vid, data));
    }

    let mut nodes = Vec::with_capacity(stage.nodes.len());
    for &nid in &stage.nodes {
        let node = &graph.nodes[nid.0 as usize];
        let mut_alias = node
            .mut_out
            .iter()
            .enumerate()
            .filter_map(|(i, mv)| mv.map(|v| (i, v)))
            .collect();
        nodes.push(ExecNode {
            name: node.annot.name,
            func: node.annot.func.clone(),
            args: node.args.clone(),
            mut_alias,
            ret: node.ret,
        });
    }

    let merge_outputs = stage
        .outputs
        .iter()
        .filter(|o| o.kind == OutputKind::Merge)
        .map(|o| (o.value, o.instance.clone()))
        .collect();

    Ok(ExecStage {
        nodes,
        inputs,
        broadcast,
        merge_outputs,
        total_elements,
        batch,
        log_calls: config.log_calls,
        pedantic: config.pedantic,
    })
}

/// The driver loop (§5.2 step 2) for one worker's element range.
fn run_worker(exec: &ExecStage, range: std::ops::Range<u64>) -> Result<WorkerOut> {
    let mut out = WorkerOut {
        partials: vec![None; exec.merge_outputs.len()],
        split: Duration::ZERO,
        task: Duration::ZERO,
        merge: Duration::ZERO,
        batches: 0,
        calls: 0,
    };
    let mut pending: Vec<Vec<DataValue>> = vec![Vec::new(); exec.merge_outputs.len()];
    let mut slots: HashMap<ValueId, DataValue> = HashMap::new();

    let mut start = range.start;
    'driver: while start < range.end {
        let end = (start + exec.batch).min(range.end);

        // Split every input for this batch.
        let t0 = Instant::now();
        slots.clear();
        for (vid, data) in &exec.broadcast {
            slots.insert(*vid, data.clone());
        }
        let mut produced = 0usize;
        for input in &exec.inputs {
            match input.instance.splitter.split(
                &input.data,
                start..end,
                &input.instance.params,
            )? {
                Some(piece) => {
                    slots.insert(input.value, piece);
                    produced += 1;
                }
                None => {
                    if exec.pedantic && produced > 0 {
                        return Err(Error::Pedantic(format!(
                            "split type {} returned NULL while other inputs produced pieces",
                            input.instance.splitter.name()
                        )));
                    }
                    out.split += t0.elapsed();
                    break 'driver;
                }
            }
        }
        out.split += t0.elapsed();

        // Run the pipeline on this batch's pieces.
        let t1 = Instant::now();
        for node in &exec.nodes {
            let mut args: Vec<DataValue> = Vec::with_capacity(node.args.len());
            for vid in &node.args {
                match slots.get(vid) {
                    Some(piece) => args.push(piece.clone()),
                    None => return Err(Error::ValueUnavailable),
                }
            }
            if exec.log_calls {
                eprintln!(
                    "mozart: call {} on elements [{start}, {end}) ({} args)",
                    node.name,
                    args.len()
                );
            }
            let inv = Invocation { function: node.name, args: &args };
            let ret = (node.func)(&inv)?;
            for &(arg_idx, mv) in &node.mut_alias {
                let piece = args[arg_idx].clone();
                slots.insert(mv, piece);
            }
            match (ret, node.ret) {
                (Some(piece), Some(rv)) => {
                    slots.insert(rv, piece);
                }
                (None, None) => {}
                (None, Some(_)) => {
                    return Err(Error::Library(format!(
                        "{} is annotated with a return split type but returned nothing",
                        node.name
                    )))
                }
                (Some(_), None) => {
                    return Err(Error::Library(format!(
                        "{} returned a value but its annotation declares none",
                        node.name
                    )))
                }
            }
            out.calls += 1;
        }
        out.task += t1.elapsed();

        // Stash pieces of observable outputs ("moved to a list of
        // partial results", §5.2).
        for (i, (vid, instance)) in exec.merge_outputs.iter().enumerate() {
            match slots.get(vid) {
                Some(piece) => pending[i].push(piece.clone()),
                None if exec.pedantic => {
                    return Err(Error::Pedantic(format!(
                        "output of split type {} missing after batch",
                        instance.splitter.name()
                    )))
                }
                None => {}
            }
        }

        out.batches += 1;
        start = end;
    }

    // Worker-local merge (§5.2 step 3, first level).
    let t2 = Instant::now();
    for (i, (_, instance)) in exec.merge_outputs.iter().enumerate() {
        let pieces = std::mem::take(&mut pending[i]);
        out.partials[i] = match pieces.len() {
            0 => None,
            1 => Some(pieces.into_iter().next().expect("len checked")),
            _ => Some(instance.splitter.merge(pieces, &instance.params)?),
        };
    }
    out.merge += t2.elapsed();
    Ok(out)
}
