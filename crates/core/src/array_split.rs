//! `ArraySplit` — the paper's canonical split type (§2.1, §3.2): a C
//! array split into regularly-sized pieces. Parameter: the array length.
//!
//! Pieces are [`SliceView`]s aliasing the parent buffer, so functions
//! that mutate their output argument write directly into the final
//! location and no merge is required (the MKL convention).

use std::ops::Range;
use std::sync::Arc;

use crate::buffer::{SliceView, VecValue};
use crate::error::{Error, Result};
use crate::registry::register_default_splitter;
use crate::split::{Params, RuntimeInfo, Splitter};
use crate::value::DataValue;

/// Split type for [`VecValue`] (shared `f64` buffers).
pub struct ArraySplit;

impl ArraySplit {
    /// Register `ArraySplit` as the default split type for `VecValue`,
    /// used when type inference cannot resolve a generic (§5.1).
    pub fn register_default() {
        register_default_splitter::<VecValue>(Arc::new(ArraySplit));
    }
}

impl Splitter for ArraySplit {
    fn name(&self) -> &'static str {
        "ArraySplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        // Constructed either from a size argument (MKL style, where the
        // length precedes the array) or from the array itself.
        let first = ctor_args.first().ok_or_else(|| Error::Constructor {
            split_type: "ArraySplit",
            message: "expected a size or array argument".into(),
        })?;
        if let Some(n) = crate::value::as_i64(first) {
            return Ok(vec![n]);
        }
        if let Some(v) = first.downcast_ref::<VecValue>() {
            return Ok(vec![v.0.len() as i64]);
        }
        Err(Error::Constructor {
            split_type: "ArraySplit",
            message: format!("cannot derive length from {}", first.type_name()),
        })
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params.first().copied().unwrap_or(0).max(0) as u64,
            elem_size_bytes: std::mem::size_of::<f64>() as u64,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let v = arg.downcast_ref::<VecValue>().ok_or_else(|| Error::Split {
            split_type: "ArraySplit",
            message: format!("expected VecValue, got {}", arg.type_name()),
        })?;
        let total = params.first().copied().unwrap_or(0).max(0) as u64;
        if v.0.len() as u64 != total {
            return Err(Error::Split {
                split_type: "ArraySplit",
                message: format!(
                    "array length {} does not match split type parameter {}",
                    v.0.len(),
                    total
                ),
            });
        }
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total);
        Ok(Some(DataValue::new(SliceView {
            parent: v.0.clone(),
            start: range.start as usize,
            len: (end - range.start) as usize,
        })))
    }

    fn merge(&self, pieces: Vec<DataValue>, _params: &Params) -> Result<DataValue> {
        // Pieces alias a single parent buffer; the merged value is that
        // buffer.
        let first = pieces.first().ok_or_else(|| Error::Merge {
            split_type: "ArraySplit",
            message: "no pieces to merge".into(),
        })?;
        let parent = first
            .downcast_ref::<SliceView>()
            .ok_or_else(|| Error::Merge {
                split_type: "ArraySplit",
                message: format!("expected SliceView piece, got {}", first.type_name()),
            })?
            .parent
            .clone();
        for p in &pieces[1..] {
            let v = p.downcast_ref::<SliceView>().ok_or_else(|| Error::Merge {
                split_type: "ArraySplit",
                message: "mixed piece types".into(),
            })?;
            if !v.parent.same_storage(&parent) {
                return Err(Error::Merge {
                    split_type: "ArraySplit",
                    message: "pieces come from different buffers".into(),
                });
            }
        }
        Ok(DataValue::new(VecValue(parent)))
    }

    fn needs_merge(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::SharedVec;

    fn vec_value(n: usize) -> DataValue {
        DataValue::new(VecValue(SharedVec::from_vec(
            (0..n).map(|i| i as f64).collect(),
        )))
    }

    #[test]
    fn construct_from_size_or_array() {
        let s = ArraySplit;
        let size = DataValue::new(crate::value::IntValue(8));
        assert_eq!(s.construct(&[&size]).unwrap(), vec![8]);
        let arr = vec_value(5);
        assert_eq!(s.construct(&[&arr]).unwrap(), vec![5]);
        assert!(s.construct(&[]).is_err());
    }

    #[test]
    fn split_produces_aliasing_views() {
        let s = ArraySplit;
        let arr = vec_value(10);
        let params = vec![10];
        let piece = s.split(&arr, 2..5, &params).unwrap().unwrap();
        let view = piece.downcast_ref::<SliceView>().unwrap();
        assert_eq!(view.start, 2);
        assert_eq!(view.len, 3);
        // SAFETY: single-threaded test.
        assert_eq!(unsafe { view.as_slice() }, &[2.0, 3.0, 4.0]);
        // Clamps the tail and terminates past the end.
        let piece = s.split(&arr, 8..16, &params).unwrap().unwrap();
        assert_eq!(piece.downcast_ref::<SliceView>().unwrap().len, 2);
        assert!(s.split(&arr, 10..12, &params).unwrap().is_none());
    }

    #[test]
    fn split_rejects_stale_params() {
        let s = ArraySplit;
        let arr = vec_value(10);
        assert!(s.split(&arr, 0..4, &vec![12]).is_err());
    }

    #[test]
    fn merge_recovers_parent() {
        let s = ArraySplit;
        let arr = vec_value(10);
        let params = vec![10];
        let a = s.split(&arr, 0..5, &params).unwrap().unwrap();
        let b = s.split(&arr, 5..10, &params).unwrap().unwrap();
        let merged = s.merge(vec![a, b], &params).unwrap();
        let v = merged.downcast_ref::<VecValue>().unwrap();
        assert_eq!(v.0.len(), 10);
        assert!(!s.needs_merge());
    }

    #[test]
    fn merge_rejects_foreign_pieces() {
        let s = ArraySplit;
        let a = s.split(&vec_value(4), 0..2, &vec![4]).unwrap().unwrap();
        let b = s.split(&vec_value(4), 2..4, &vec![4]).unwrap().unwrap();
        assert!(s.merge(vec![a, b], &vec![4]).is_err());
        assert!(s.merge(vec![], &vec![4]).is_err());
    }
}
