//! `ArraySplit` — the paper's canonical split type (§2.1, §3.2): a C
//! array split into regularly-sized pieces. Parameter: the array length.
//!
//! Pieces are [`SliceView`]s aliasing the parent buffer, so functions
//! that mutate their output argument write directly into the final
//! location and no merge is required (the MKL convention).
//!
//! Functions that instead *return* freshly allocated arrays per batch
//! merge by **placement**: the runtime preallocates one `SharedVec` of
//! the full length and workers copy their pieces in at their element
//! offsets (the [`Placement`] capability inside
//! [`MergeStrategy::Concat`]). When the exemplar piece is a
//! [`SliceView`] — the pieces already alias one final buffer — placement
//! is declined, since recovering the parent is cheaper than any copy.
//!
//! `ArraySplit` also exposes the [`Concat`] capability (the inverse of
//! `split`): whole buffers concatenate end to end and element ranges
//! slice back out, which is what the serving layer's generic
//! cross-request coalescing rides on.

use std::ops::Range;
use std::sync::Arc;

use crate::buffer::{SharedVec, SliceView, VecValue};
use crate::error::{Error, Result};
use crate::registry::register_default_splitter;
use crate::split::{Concat, MergeStrategy, Params, Placement, RuntimeInfo, Splitter};
use crate::value::DataValue;

/// Split type for [`VecValue`] (shared `f64` buffers).
pub struct ArraySplit;

impl ArraySplit {
    /// Register `ArraySplit` as the default split type for `VecValue`,
    /// used when type inference cannot resolve a generic (§5.1).
    pub fn register_default() {
        register_default_splitter::<VecValue>(Arc::new(ArraySplit));
    }
}

/// Borrow a value's elements as an `f64` slice, whichever array form it
/// takes.
///
/// # Safety
///
/// For `SliceView` values the caller must guarantee no concurrent
/// mutation of the viewed range (the merge/concat phases' contract).
unsafe fn elems(v: &DataValue) -> Result<&[f64]> {
    if let Some(v) = v.downcast_ref::<VecValue>() {
        return Ok(v.0.as_slice());
    }
    if let Some(v) = v.downcast_ref::<SliceView>() {
        // SAFETY: per this function's contract.
        return Ok(unsafe { v.as_slice() });
    }
    Err(Error::Merge {
        split_type: "ArraySplit",
        message: format!("expected an array value, got {}", v.type_name()),
    })
}

impl Splitter for ArraySplit {
    fn name(&self) -> &'static str {
        "ArraySplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        // Constructed either from a size argument (MKL style, where the
        // length precedes the array) or from the array itself.
        let first = ctor_args.first().ok_or_else(|| Error::Constructor {
            split_type: "ArraySplit",
            message: "expected a size or array argument".into(),
        })?;
        if let Some(n) = crate::value::as_i64(first) {
            return Ok(vec![n]);
        }
        if let Some(v) = first.downcast_ref::<VecValue>() {
            return Ok(vec![v.0.len() as i64]);
        }
        Err(Error::Constructor {
            split_type: "ArraySplit",
            message: format!("cannot derive length from {}", first.type_name()),
        })
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params.first().copied().unwrap_or(0).max(0) as u64,
            elem_size_bytes: std::mem::size_of::<f64>() as u64,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let v = arg.downcast_ref::<VecValue>().ok_or_else(|| Error::Split {
            split_type: "ArraySplit",
            message: format!("expected VecValue, got {}", arg.type_name()),
        })?;
        let total = params.first().copied().unwrap_or(0).max(0) as u64;
        if v.0.len() as u64 != total {
            return Err(Error::Split {
                split_type: "ArraySplit",
                message: format!(
                    "array length {} does not match split type parameter {}",
                    v.0.len(),
                    total
                ),
            });
        }
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total);
        Ok(Some(DataValue::new(SliceView {
            parent: v.0.clone(),
            start: range.start as usize,
            len: (end - range.start) as usize,
        })))
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        total_elements: u64,
    ) -> Result<DataValue> {
        let first = pieces.first().ok_or_else(|| Error::Merge {
            split_type: "ArraySplit",
            message: "no pieces to merge".into(),
        })?;
        if first.downcast_ref::<SliceView>().is_some() {
            // In-place views alias a single parent buffer; the merged
            // value is that buffer, recovered without touching elements.
            let parent = first
                .downcast_ref::<SliceView>()
                .expect("checked above")
                .parent
                .clone();
            for p in &pieces[1..] {
                let v = p.downcast_ref::<SliceView>().ok_or_else(|| Error::Merge {
                    split_type: "ArraySplit",
                    message: "mixed piece types".into(),
                })?;
                if !v.parent.same_storage(&parent) {
                    return Err(Error::Merge {
                        split_type: "ArraySplit",
                        message: "pieces come from different buffers".into(),
                    });
                }
            }
            return Ok(DataValue::new(VecValue(parent)));
        }
        // Fresh owned pieces (the placement-disabled fallback path):
        // concatenate, preallocating from the size hint. Only owned
        // `VecValue` pieces are legal here: a stray `SliceView` means
        // view pieces were pre-merged into whole parents elsewhere and
        // a concat would duplicate data — fail loudly (the v1 contract)
        // rather than return a corrupt buffer.
        let mut out: Vec<f64> = Vec::with_capacity(total_elements as usize);
        for p in &pieces {
            let v = p.downcast_ref::<VecValue>().ok_or_else(|| Error::Merge {
                split_type: "ArraySplit",
                message: "mixed piece types".into(),
            })?;
            out.extend_from_slice(v.0.as_slice());
        }
        if total_elements > 0 && out.len() as u64 != total_elements {
            return Err(Error::Merge {
                split_type: "ArraySplit",
                message: format!(
                    "concatenated {} elements but the merge covers {total_elements} \
                     (pieces are not a partition of the output)",
                    out.len()
                ),
            });
        }
        Ok(DataValue::new(VecValue(SharedVec::from_vec(out))))
    }

    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Concat {
            placement: Some(Arc::new(ArraySplit)),
        }
    }

    fn concat(&self) -> Option<Arc<dyn Concat>> {
        Some(Arc::new(ArraySplit))
    }
}

impl Placement for ArraySplit {
    fn alloc_merged(
        &self,
        total_elements: u64,
        _params: &Params,
        exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>> {
        // Whether placement pays depends on what the pieces are, so
        // the stage-start probe (no exemplar yet) is declined.
        let Some(exemplar) = exemplar else {
            return Ok(None);
        };
        // SliceView pieces alias a parent buffer already — `merge`
        // recovers it without touching a single element, so placement
        // (which would copy) is a regression there. Fresh owned arrays
        // (`VecValue` pieces) are what placement exists for.
        if exemplar.downcast_ref::<SliceView>().is_some() {
            return Ok(None);
        }
        if exemplar.downcast_ref::<VecValue>().is_none() {
            return Ok(None);
        }
        // SAFETY: the executor's coverage check guarantees every
        // element of the placement output is written before the merged
        // value is released (or it is truncated to the written
        // prefix), so the unspecified initial contents are never read.
        let out = unsafe { SharedVec::uninit_prefaulted(total_elements as usize) };
        Ok(Some(DataValue::new(VecValue(out))))
    }

    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64> {
        let dst = out.downcast_ref::<VecValue>().ok_or_else(|| Error::Merge {
            split_type: "ArraySplit",
            message: format!("placement output is {}, not VecValue", out.type_name()),
        })?;
        let write = |src: &[f64]| -> Result<u64> {
            let offset = offset as usize;
            if offset
                .checked_add(src.len())
                .is_none_or(|e| e > dst.0.len())
            {
                return Err(Error::Merge {
                    split_type: "ArraySplit",
                    message: format!(
                        "piece of {} elements at offset {offset} exceeds output length {}",
                        src.len(),
                        dst.0.len()
                    ),
                });
            }
            // SAFETY: the executor guarantees concurrent `write_piece`
            // calls cover disjoint element ranges, and the bounds were
            // checked above.
            unsafe { dst.0.slice_mut_unchecked(offset, src.len()) }.copy_from_slice(src);
            Ok(src.len() as u64)
        };
        if let Some(v) = piece.downcast_ref::<VecValue>() {
            return write(v.0.as_slice());
        }
        if let Some(v) = piece.downcast_ref::<SliceView>() {
            // SAFETY: pieces are read-only during the merge phase; the
            // written range belongs to `dst`, a different buffer.
            return write(unsafe { v.as_slice() });
        }
        Err(Error::Merge {
            split_type: "ArraySplit",
            message: format!("unexpected placement piece type {}", piece.type_name()),
        })
    }

    fn truncate_merged(
        &self,
        out: DataValue,
        elements: u64,
        _params: &Params,
    ) -> Result<DataValue> {
        let v = out.downcast_ref::<VecValue>().ok_or_else(|| Error::Merge {
            split_type: "ArraySplit",
            message: format!("placement output is {}, not VecValue", out.type_name()),
        })?;
        // Rare path (NULL-split tail): copy the written prefix out.
        let prefix = v.0.as_slice()[..(elements as usize).min(v.0.len())].to_vec();
        Ok(DataValue::new(VecValue(SharedVec::from_vec(prefix))))
    }
}

impl Concat for ArraySplit {
    fn concat(&self, values: &[DataValue]) -> Result<(DataValue, Vec<u64>)> {
        if values.is_empty() {
            return Err(Error::Merge {
                split_type: "ArraySplit",
                message: "nothing to concatenate".into(),
            });
        }
        let mut offsets = Vec::with_capacity(values.len());
        let mut total = 0usize;
        for v in values {
            offsets.push(total as u64);
            // SAFETY: whole input values are not concurrently mutated
            // while being concatenated.
            total += unsafe { elems(v)? }.len();
        }
        let mut out: Vec<f64> = Vec::with_capacity(total);
        for v in values {
            // SAFETY: as above.
            out.extend_from_slice(unsafe { elems(v)? });
        }
        Ok((DataValue::new(VecValue(SharedVec::from_vec(out))), offsets))
    }

    fn slice_back(&self, out: &DataValue, offset: u64, len: u64) -> Result<DataValue> {
        // SAFETY: concatenated outputs are fully materialized before
        // slicing back (reading a `VecValue` forces evaluation).
        let all = unsafe { elems(out)? };
        let (offset, len) = (offset as usize, len as usize);
        if offset.checked_add(len).is_none_or(|e| e > all.len()) {
            return Err(Error::Merge {
                split_type: "ArraySplit",
                message: format!(
                    "slice [{offset}, {offset}+{len}) exceeds concatenated length {}",
                    all.len()
                ),
            });
        }
        Ok(DataValue::new(VecValue(SharedVec::from_vec(
            all[offset..offset + len].to_vec(),
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::SharedVec;

    fn vec_value(n: usize) -> DataValue {
        DataValue::new(VecValue(SharedVec::from_vec(
            (0..n).map(|i| i as f64).collect(),
        )))
    }

    #[test]
    fn construct_from_size_or_array() {
        let s = ArraySplit;
        let size = DataValue::new(crate::value::IntValue(8));
        assert_eq!(s.construct(&[&size]).unwrap(), vec![8]);
        let arr = vec_value(5);
        assert_eq!(s.construct(&[&arr]).unwrap(), vec![5]);
        assert!(s.construct(&[]).is_err());
    }

    #[test]
    fn split_produces_aliasing_views() {
        let s = ArraySplit;
        let arr = vec_value(10);
        let params = vec![10];
        let piece = s.split(&arr, 2..5, &params).unwrap().unwrap();
        let view = piece.downcast_ref::<SliceView>().unwrap();
        assert_eq!(view.start, 2);
        assert_eq!(view.len, 3);
        // SAFETY: single-threaded test.
        assert_eq!(unsafe { view.as_slice() }, &[2.0, 3.0, 4.0]);
        // Clamps the tail and terminates past the end.
        let piece = s.split(&arr, 8..16, &params).unwrap().unwrap();
        assert_eq!(piece.downcast_ref::<SliceView>().unwrap().len, 2);
        assert!(s.split(&arr, 10..12, &params).unwrap().is_none());
    }

    #[test]
    fn split_rejects_stale_params() {
        let s = ArraySplit;
        let arr = vec_value(10);
        assert!(s.split(&arr, 0..4, &vec![12]).is_err());
    }

    #[test]
    fn merge_recovers_parent() {
        let s = ArraySplit;
        let arr = vec_value(10);
        let params = vec![10];
        let a = s.split(&arr, 0..5, &params).unwrap().unwrap();
        let b = s.split(&arr, 5..10, &params).unwrap().unwrap();
        let merged = s.merge(vec![a, b], &params, 10).unwrap();
        let v = merged.downcast_ref::<VecValue>().unwrap();
        assert_eq!(v.0.len(), 10);
        assert!(matches!(s.merge_strategy(), MergeStrategy::Concat { .. }));
    }

    #[test]
    fn merge_concatenates_fresh_pieces() {
        // The placement-disabled fallback: owned per-batch arrays merge
        // by concatenation, preallocated from the hint.
        let s = ArraySplit;
        let a = DataValue::new(VecValue(SharedVec::from_vec(vec![1.0, 2.0])));
        let b = DataValue::new(VecValue(SharedVec::from_vec(vec![3.0])));
        let merged = s.merge(vec![a, b], &vec![3], 3).unwrap();
        assert_eq!(
            merged.downcast_ref::<VecValue>().unwrap().0.as_slice(),
            &[1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn placement_declined_for_aliasing_views_taken_for_fresh_arrays() {
        let s = ArraySplit;
        let arr = vec_value(8);
        let params = vec![8];
        // SliceView exemplar: the pieces already alias a final buffer;
        // recovering the parent beats copying.
        let view = s.split(&arr, 0..4, &params).unwrap().unwrap();
        assert!(Placement::alloc_merged(&s, 8, &params, Some(&view))
            .unwrap()
            .is_none());
        // Fresh VecValue exemplar: placement engages.
        let fresh = DataValue::new(VecValue(SharedVec::from_vec(vec![1.0, 2.0])));
        let out = Placement::alloc_merged(&s, 8, &params, Some(&fresh))
            .unwrap()
            .unwrap();
        // Out-of-order writes land at their offsets; views and owned
        // pieces both write. (The output is uninitialized until
        // written, so the test covers all 8 elements before reading.)
        s.write_piece(&out, 4, &view).unwrap();
        s.write_piece(&out, 2, &fresh).unwrap();
        s.write_piece(&out, 0, &fresh).unwrap();
        let v = out.downcast_ref::<VecValue>().unwrap();
        assert_eq!(
            v.0.as_slice(),
            &[1.0, 2.0, 1.0, 2.0, 0.0, 1.0, 2.0, 3.0],
            "views copy their aliased elements, fresh pieces their own"
        );
        // Out-of-range writes are rejected before touching memory.
        assert!(s.write_piece(&out, 7, &fresh).is_err());
        // Truncation returns the written prefix.
        let t = s.truncate_merged(out, 4, &params).unwrap();
        assert_eq!(
            t.downcast_ref::<VecValue>().unwrap().0.as_slice(),
            &[1.0, 2.0, 1.0, 2.0]
        );
    }

    #[test]
    fn concat_capability_roundtrips() {
        // concat is the inverse of split: whole values concatenate end
        // to end, and slice_back recovers each one's elements.
        let s = ArraySplit;
        let cap = Splitter::concat(&s).expect("ArraySplit exposes Concat");
        let a = DataValue::new(VecValue(SharedVec::from_vec(vec![1.0, 2.0, 3.0])));
        let b = DataValue::new(VecValue(SharedVec::from_vec(vec![4.0])));
        let c = DataValue::new(VecValue(SharedVec::from_vec(vec![5.0, 6.0])));
        let (cat, offsets) = cap.concat(&[a, b, c]).unwrap();
        assert_eq!(offsets, vec![0, 3, 4]);
        assert_eq!(
            cat.downcast_ref::<VecValue>().unwrap().0.as_slice(),
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        let back = cap.slice_back(&cat, 3, 1).unwrap();
        assert_eq!(
            back.downcast_ref::<VecValue>().unwrap().0.as_slice(),
            &[4.0]
        );
        // Out-of-range slices are rejected; empty concats error.
        assert!(cap.slice_back(&cat, 5, 2).is_err());
        assert!(cap.concat(&[]).is_err());
    }

    #[test]
    fn owned_merge_fallback_fails_loudly_on_views_and_bad_coverage() {
        // Regression: the owned-piece concat fallback must never
        // silently absorb view-derived pieces (pre-merged whole
        // parents would duplicate data) or return a buffer that does
        // not cover the merge's element total.
        let s = ArraySplit;
        let arr = vec_value(6);
        let params = vec![6];
        let view = s.split(&arr, 0..3, &params).unwrap().unwrap();
        let owned = DataValue::new(VecValue(SharedVec::from_vec(vec![9.0, 9.0, 9.0])));
        // Owned first, view second: mixed types are rejected.
        assert!(s.merge(vec![owned.clone(), view], &params, 6).is_err());
        // Owned pieces that do not partition the declared total are
        // rejected instead of returning a short (or long) buffer.
        assert!(s.merge(vec![owned.clone()], &params, 6).is_err());
        assert!(s
            .merge(vec![owned.clone(), owned.clone()], &params, 6)
            .is_ok());
        assert!(s
            .merge(vec![owned.clone(), owned.clone(), owned], &params, 6)
            .is_err());
    }

    #[test]
    fn merge_rejects_foreign_pieces() {
        let s = ArraySplit;
        let a = s.split(&vec_value(4), 0..2, &vec![4]).unwrap().unwrap();
        let b = s.split(&vec_value(4), 2..4, &vec![4]).unwrap().unwrap();
        assert!(s.merge(vec![a, b], &vec![4], 4).is_err());
        assert!(s.merge(vec![], &vec![4], 4).is_err());
    }
}
