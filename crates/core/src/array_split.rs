//! `ArraySplit` — the paper's canonical split type (§2.1, §3.2): a C
//! array split into regularly-sized pieces. Parameter: the array length.
//!
//! Pieces are [`SliceView`]s aliasing the parent buffer, so functions
//! that mutate their output argument write directly into the final
//! location and no merge is required (the MKL convention).
//!
//! Functions that instead *return* freshly allocated arrays per batch
//! merge by **placement**: the runtime preallocates one `SharedVec` of
//! the full length and workers copy their pieces in at their element
//! offsets ([`Splitter::alloc_merged`]). When the exemplar piece is a
//! [`SliceView`] — the pieces already alias one final buffer — placement
//! is declined, since recovering the parent is cheaper than any copy.

use std::ops::Range;
use std::sync::Arc;

use crate::buffer::{SharedVec, SliceView, VecValue};
use crate::error::{Error, Result};
use crate::registry::register_default_splitter;
use crate::split::{Params, RuntimeInfo, Splitter};
use crate::value::DataValue;

/// Split type for [`VecValue`] (shared `f64` buffers).
pub struct ArraySplit;

impl ArraySplit {
    /// Register `ArraySplit` as the default split type for `VecValue`,
    /// used when type inference cannot resolve a generic (§5.1).
    pub fn register_default() {
        register_default_splitter::<VecValue>(Arc::new(ArraySplit));
    }
}

impl Splitter for ArraySplit {
    fn name(&self) -> &'static str {
        "ArraySplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        // Constructed either from a size argument (MKL style, where the
        // length precedes the array) or from the array itself.
        let first = ctor_args.first().ok_or_else(|| Error::Constructor {
            split_type: "ArraySplit",
            message: "expected a size or array argument".into(),
        })?;
        if let Some(n) = crate::value::as_i64(first) {
            return Ok(vec![n]);
        }
        if let Some(v) = first.downcast_ref::<VecValue>() {
            return Ok(vec![v.0.len() as i64]);
        }
        Err(Error::Constructor {
            split_type: "ArraySplit",
            message: format!("cannot derive length from {}", first.type_name()),
        })
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params.first().copied().unwrap_or(0).max(0) as u64,
            elem_size_bytes: std::mem::size_of::<f64>() as u64,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let v = arg.downcast_ref::<VecValue>().ok_or_else(|| Error::Split {
            split_type: "ArraySplit",
            message: format!("expected VecValue, got {}", arg.type_name()),
        })?;
        let total = params.first().copied().unwrap_or(0).max(0) as u64;
        if v.0.len() as u64 != total {
            return Err(Error::Split {
                split_type: "ArraySplit",
                message: format!(
                    "array length {} does not match split type parameter {}",
                    v.0.len(),
                    total
                ),
            });
        }
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total);
        Ok(Some(DataValue::new(SliceView {
            parent: v.0.clone(),
            start: range.start as usize,
            len: (end - range.start) as usize,
        })))
    }

    fn merge(&self, pieces: Vec<DataValue>, _params: &Params) -> Result<DataValue> {
        // Pieces alias a single parent buffer; the merged value is that
        // buffer.
        let first = pieces.first().ok_or_else(|| Error::Merge {
            split_type: "ArraySplit",
            message: "no pieces to merge".into(),
        })?;
        let parent = first
            .downcast_ref::<SliceView>()
            .ok_or_else(|| Error::Merge {
                split_type: "ArraySplit",
                message: format!("expected SliceView piece, got {}", first.type_name()),
            })?
            .parent
            .clone();
        for p in &pieces[1..] {
            let v = p.downcast_ref::<SliceView>().ok_or_else(|| Error::Merge {
                split_type: "ArraySplit",
                message: "mixed piece types".into(),
            })?;
            if !v.parent.same_storage(&parent) {
                return Err(Error::Merge {
                    split_type: "ArraySplit",
                    message: "pieces come from different buffers".into(),
                });
            }
        }
        Ok(DataValue::new(VecValue(parent)))
    }

    fn needs_merge(&self) -> bool {
        false
    }

    fn alloc_merged(
        &self,
        total_elements: u64,
        _params: &Params,
        exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>> {
        // Whether placement pays depends on what the pieces are, so
        // the stage-start probe (no exemplar yet) is declined.
        let Some(exemplar) = exemplar else {
            return Ok(None);
        };
        // SliceView pieces alias a parent buffer already — `merge`
        // recovers it without touching a single element, so placement
        // (which would copy) is a regression there. Fresh owned arrays
        // (`VecValue` pieces) are what placement exists for.
        if exemplar.downcast_ref::<SliceView>().is_some() {
            return Ok(None);
        }
        if exemplar.downcast_ref::<VecValue>().is_none() {
            return Ok(None);
        }
        // SAFETY: the executor's coverage check guarantees every
        // element of the placement output is written before the merged
        // value is released (or it is truncated to the written
        // prefix), so the unspecified initial contents are never read.
        let out = unsafe { SharedVec::uninit_prefaulted(total_elements as usize) };
        Ok(Some(DataValue::new(VecValue(out))))
    }

    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64> {
        let dst = out.downcast_ref::<VecValue>().ok_or_else(|| Error::Merge {
            split_type: "ArraySplit",
            message: format!("placement output is {}, not VecValue", out.type_name()),
        })?;
        let write = |src: &[f64]| -> Result<u64> {
            let offset = offset as usize;
            if offset
                .checked_add(src.len())
                .is_none_or(|e| e > dst.0.len())
            {
                return Err(Error::Merge {
                    split_type: "ArraySplit",
                    message: format!(
                        "piece of {} elements at offset {offset} exceeds output length {}",
                        src.len(),
                        dst.0.len()
                    ),
                });
            }
            // SAFETY: the executor guarantees concurrent `write_piece`
            // calls cover disjoint element ranges, and the bounds were
            // checked above.
            unsafe { dst.0.slice_mut_unchecked(offset, src.len()) }.copy_from_slice(src);
            Ok(src.len() as u64)
        };
        if let Some(v) = piece.downcast_ref::<VecValue>() {
            return write(v.0.as_slice());
        }
        if let Some(v) = piece.downcast_ref::<SliceView>() {
            // SAFETY: pieces are read-only during the merge phase; the
            // written range belongs to `dst`, a different buffer.
            return write(unsafe { v.as_slice() });
        }
        Err(Error::Merge {
            split_type: "ArraySplit",
            message: format!("unexpected placement piece type {}", piece.type_name()),
        })
    }

    fn truncate_merged(
        &self,
        out: DataValue,
        elements: u64,
        _params: &Params,
    ) -> Result<DataValue> {
        let v = out.downcast_ref::<VecValue>().ok_or_else(|| Error::Merge {
            split_type: "ArraySplit",
            message: format!("placement output is {}, not VecValue", out.type_name()),
        })?;
        // Rare path (NULL-split tail): copy the written prefix out.
        let prefix = v.0.as_slice()[..(elements as usize).min(v.0.len())].to_vec();
        Ok(DataValue::new(VecValue(SharedVec::from_vec(prefix))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::SharedVec;

    fn vec_value(n: usize) -> DataValue {
        DataValue::new(VecValue(SharedVec::from_vec(
            (0..n).map(|i| i as f64).collect(),
        )))
    }

    #[test]
    fn construct_from_size_or_array() {
        let s = ArraySplit;
        let size = DataValue::new(crate::value::IntValue(8));
        assert_eq!(s.construct(&[&size]).unwrap(), vec![8]);
        let arr = vec_value(5);
        assert_eq!(s.construct(&[&arr]).unwrap(), vec![5]);
        assert!(s.construct(&[]).is_err());
    }

    #[test]
    fn split_produces_aliasing_views() {
        let s = ArraySplit;
        let arr = vec_value(10);
        let params = vec![10];
        let piece = s.split(&arr, 2..5, &params).unwrap().unwrap();
        let view = piece.downcast_ref::<SliceView>().unwrap();
        assert_eq!(view.start, 2);
        assert_eq!(view.len, 3);
        // SAFETY: single-threaded test.
        assert_eq!(unsafe { view.as_slice() }, &[2.0, 3.0, 4.0]);
        // Clamps the tail and terminates past the end.
        let piece = s.split(&arr, 8..16, &params).unwrap().unwrap();
        assert_eq!(piece.downcast_ref::<SliceView>().unwrap().len, 2);
        assert!(s.split(&arr, 10..12, &params).unwrap().is_none());
    }

    #[test]
    fn split_rejects_stale_params() {
        let s = ArraySplit;
        let arr = vec_value(10);
        assert!(s.split(&arr, 0..4, &vec![12]).is_err());
    }

    #[test]
    fn merge_recovers_parent() {
        let s = ArraySplit;
        let arr = vec_value(10);
        let params = vec![10];
        let a = s.split(&arr, 0..5, &params).unwrap().unwrap();
        let b = s.split(&arr, 5..10, &params).unwrap().unwrap();
        let merged = s.merge(vec![a, b], &params).unwrap();
        let v = merged.downcast_ref::<VecValue>().unwrap();
        assert_eq!(v.0.len(), 10);
        assert!(!s.needs_merge());
    }

    #[test]
    fn placement_declined_for_aliasing_views_taken_for_fresh_arrays() {
        let s = ArraySplit;
        let arr = vec_value(8);
        let params = vec![8];
        // SliceView exemplar: the pieces already alias a final buffer;
        // recovering the parent beats copying.
        let view = s.split(&arr, 0..4, &params).unwrap().unwrap();
        assert!(s.alloc_merged(8, &params, Some(&view)).unwrap().is_none());
        // Fresh VecValue exemplar: placement engages.
        let fresh = DataValue::new(VecValue(SharedVec::from_vec(vec![1.0, 2.0])));
        let out = s.alloc_merged(8, &params, Some(&fresh)).unwrap().unwrap();
        // Out-of-order writes land at their offsets; views and owned
        // pieces both write. (The output is uninitialized until
        // written, so the test covers all 8 elements before reading.)
        s.write_piece(&out, 4, &view).unwrap();
        s.write_piece(&out, 2, &fresh).unwrap();
        s.write_piece(&out, 0, &fresh).unwrap();
        let v = out.downcast_ref::<VecValue>().unwrap();
        assert_eq!(
            v.0.as_slice(),
            &[1.0, 2.0, 1.0, 2.0, 0.0, 1.0, 2.0, 3.0],
            "views copy their aliased elements, fresh pieces their own"
        );
        // Out-of-range writes are rejected before touching memory.
        assert!(s.write_piece(&out, 7, &fresh).is_err());
        // Truncation returns the written prefix.
        let t = s.truncate_merged(out, 4, &params).unwrap();
        assert_eq!(
            t.downcast_ref::<VecValue>().unwrap().0.as_slice(),
            &[1.0, 2.0, 1.0, 2.0]
        );
    }

    #[test]
    fn merge_rejects_foreign_pieces() {
        let s = ArraySplit;
        let a = s.split(&vec_value(4), 0..2, &vec![4]).unwrap().unwrap();
        let b = s.split(&vec_value(4), 2..4, &vec![4]).unwrap().unwrap();
        assert!(s.merge(vec![a, b], &vec![4]).is_err());
        assert!(s.merge(vec![], &vec![4]).is_err());
    }
}
