//! Split annotations (§3.2) — the metadata an annotator attaches to an
//! unmodified, side-effect-free library function.
//!
//! An [`Annotation`] corresponds to one `@splittable(...)` declaration
//! (Listing 3): it names each argument, marks mutability, assigns each
//! argument and the return value a [`SplitTypeExpr`], and carries the
//! black-box function itself as a callable.
//!
//! The split types an expression names implement the **v2 splitting
//! API** ([`crate::split`]): the core
//! [`Splitter`] methods (`construct`/`info`/`split`/`merge`) plus the
//! single [`merge_strategy`](crate::split::Splitter::merge_strategy)
//! capability probe, which tells the runtime how pieces merge
//! (in-place view recovery, commutative fold, placement-capable
//! concatenation, or custom) — the planner reads `terminal` from it to
//! end stages at partial results, and the executor reads
//! commutativity and the optional placement capability from it. See
//! the [`crate::split`] module docs for the v1 → v2 migration map.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::split::Splitter;
use crate::value::{DataObject, DataValue};

/// Identifier of a generic split type variable within one annotation
/// (the paper's `S`; names are local to an SA, §3.2 "Generics").
pub type GenericId = u32;

/// The split type expression assigned to an argument or return value.
#[derive(Clone)]
#[allow(missing_docs)] // variant docs describe the fields
pub enum SplitTypeExpr {
    /// A named split type with a constructor. `ctor_args` are the indices
    /// of the annotated function's arguments fed to the constructor
    /// (the paper's `Name(A0...An)` syntax).
    Concrete {
        splitter: Arc<dyn Splitter>,
        ctor_args: Vec<usize>,
    },
    /// A generic split type variable (`S`).
    Generic(GenericId),
    /// The "missing" split type `_`: the argument is not split but copied
    /// (pointer-copied) to each pipeline.
    Missing,
    /// The `unknown` split type (return position only): the result's
    /// split type is a fresh unique type. `merger` defines how the pieces
    /// a stage produced are merged into the final value.
    Unknown { merger: Arc<dyn Splitter> },
}

impl std::fmt::Debug for SplitTypeExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplitTypeExpr::Concrete {
                splitter,
                ctor_args,
            } => {
                write!(f, "{}({:?})", splitter.name(), ctor_args)
            }
            SplitTypeExpr::Generic(g) => write!(f, "S{g}"),
            SplitTypeExpr::Missing => write!(f, "_"),
            SplitTypeExpr::Unknown { .. } => write!(f, "unknown"),
        }
    }
}

/// One annotated argument.
#[derive(Clone, Debug)]
pub struct ArgSpec {
    /// Name assigned in the SA (used by constructors and diagnostics).
    pub name: &'static str,
    /// Whether the function mutates this argument (`mut` tag). Mozart
    /// uses this to add data-dependency edges (§4).
    pub mutable: bool,
    /// The argument's split type.
    pub ty: SplitTypeExpr,
}

/// Arguments handed to the black-box function for one batch.
///
/// Pieces appear in the same order as the annotation's arguments;
/// `_`-typed arguments receive the original unsplit value.
pub struct Invocation<'a> {
    /// The annotated function's name (for diagnostics).
    pub function: &'static str,
    /// Argument pieces for this batch.
    pub args: &'a [DataValue],
}

impl<'a> Invocation<'a> {
    /// Downcast argument `i` to a concrete library type.
    pub fn arg<T: DataObject>(&self, i: usize) -> Result<&T> {
        let v = self.args.get(i).ok_or(Error::ArgCount {
            function: self.function,
            expected: i + 1,
            actual: self.args.len(),
        })?;
        v.downcast_ref::<T>().ok_or(Error::ArgType {
            function: self.function,
            arg: i,
            expected: std::any::type_name::<T>(),
            actual: v.type_name(),
        })
    }

    /// Extract an `i64` scalar argument.
    pub fn int(&self, i: usize) -> Result<i64> {
        Ok(self.arg::<crate::value::IntValue>(i)?.0)
    }

    /// Extract an `f64` scalar argument.
    pub fn float(&self, i: usize) -> Result<f64> {
        Ok(self.arg::<crate::value::FloatValue>(i)?.0)
    }
}

/// The black-box callable: receives one batch of argument pieces and
/// optionally returns a result piece.
pub type LibFn = Arc<dyn Fn(&Invocation<'_>) -> Result<Option<DataValue>> + Send + Sync>;

/// A split annotation over one library function.
pub struct Annotation {
    /// Function name (diagnostics, logging, pedantic mode).
    pub name: &'static str,
    /// Argument specifications, in call order.
    pub args: Vec<ArgSpec>,
    /// Split type of the return value, if the function returns one.
    pub ret: Option<SplitTypeExpr>,
    /// The function itself.
    pub func: LibFn,
}

impl Annotation {
    /// Start building an annotation for `name` wrapping `func`.
    /// Returns the builder, not `Self`; finish with
    /// [`AnnotationBuilder::build`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new(
        name: &'static str,
        func: impl Fn(&Invocation<'_>) -> Result<Option<DataValue>> + Send + Sync + 'static,
    ) -> AnnotationBuilder {
        AnnotationBuilder {
            name,
            args: Vec::new(),
            ret: None,
            func: Arc::new(func),
        }
    }

    /// Index of the argument named `name`, if any.
    pub fn arg_index(&self, name: &str) -> Option<usize> {
        self.args.iter().position(|a| a.name == name)
    }
}

impl std::fmt::Debug for Annotation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@splittable(")?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if a.mutable {
                write!(f, "mut ")?;
            }
            write!(f, "{}: {:?}", a.name, a.ty)?;
        }
        write!(f, ")")?;
        if let Some(r) = &self.ret {
            write!(f, " -> {r:?}")?;
        }
        write!(f, " {}", self.name)
    }
}

/// Builder for [`Annotation`].
pub struct AnnotationBuilder {
    name: &'static str,
    args: Vec<ArgSpec>,
    ret: Option<SplitTypeExpr>,
    func: LibFn,
}

impl AnnotationBuilder {
    /// Add an immutable argument.
    pub fn arg(mut self, name: &'static str, ty: SplitTypeExpr) -> Self {
        self.args.push(ArgSpec {
            name,
            mutable: false,
            ty,
        });
        self
    }

    /// Add a mutable (`mut`) argument.
    pub fn mut_arg(mut self, name: &'static str, ty: SplitTypeExpr) -> Self {
        self.args.push(ArgSpec {
            name,
            mutable: true,
            ty,
        });
        self
    }

    /// Set the return value's split type.
    pub fn ret(mut self, ty: SplitTypeExpr) -> Self {
        self.ret = Some(ty);
        self
    }

    /// Finish, producing a shareable annotation.
    pub fn build(self) -> Arc<Annotation> {
        Arc::new(Annotation {
            name: self.name,
            args: self.args,
            ret: self.ret,
            func: self.func,
        })
    }
}

/// Shorthand for a concrete split type expression.
///
/// `ctor_args` are argument *names*, resolved against the argument list
/// at build time by the annotation tool, or indices via
/// [`SplitTypeExpr::Concrete`] directly.
pub fn concrete(splitter: Arc<dyn Splitter>, ctor_args: Vec<usize>) -> SplitTypeExpr {
    SplitTypeExpr::Concrete {
        splitter,
        ctor_args,
    }
}

/// Shorthand for a generic split type variable.
pub fn generic(id: GenericId) -> SplitTypeExpr {
    SplitTypeExpr::Generic(id)
}

/// Shorthand for the missing split type `_`.
pub fn missing() -> SplitTypeExpr {
    SplitTypeExpr::Missing
}

/// Shorthand for the `unknown` split type with the given merger.
pub fn unknown(merger: Arc<dyn Splitter>) -> SplitTypeExpr {
    SplitTypeExpr::Unknown { merger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SizeSplit;
    use crate::value::IntValue;

    #[test]
    fn builder_roundtrip() {
        let a = Annotation::new("f", |_inv| Ok(None))
            .arg("size", concrete(Arc::new(SizeSplit), vec![0]))
            .mut_arg("out", generic(0))
            .build();
        assert_eq!(a.name, "f");
        assert_eq!(a.args.len(), 2);
        assert!(!a.args[0].mutable);
        assert!(a.args[1].mutable);
        assert_eq!(a.arg_index("out"), Some(1));
        assert_eq!(a.arg_index("nope"), None);
        let dbg = format!("{a:?}");
        assert!(dbg.contains("mut out"));
        assert!(dbg.contains("SizeSplit"));
    }

    #[test]
    fn invocation_downcasts_and_reports_errors() {
        let args = vec![DataValue::new(IntValue(5))];
        let inv = Invocation {
            function: "f",
            args: &args,
        };
        assert_eq!(inv.int(0).unwrap(), 5);
        match inv.float(0) {
            Err(Error::ArgType { function, arg, .. }) => {
                assert_eq!(function, "f");
                assert_eq!(arg, 0);
            }
            other => panic!("expected ArgType error, got {other:?}"),
        }
        match inv.int(3) {
            Err(Error::ArgCount { .. }) => {}
            other => panic!("expected ArgCount error, got {other:?}"),
        }
    }
}
