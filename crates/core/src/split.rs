//! Split types and the splitting API (§3 of the paper).
//!
//! A *split type* is a parameterized (dependent) type `N<V0..Vn>`: two
//! split types are equal iff their names and parameter values are equal.
//! Annotators implement the splitting API — constructor, `split`, `merge`
//! and `info` (Table 1) — once per split type, and the runtime uses split
//! type equality to decide which functions may be pipelined.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{DataValue, IntValue};

/// Parameter values of a split type instance.
///
/// The paper models parameters as integers (array lengths, matrix
/// dimensions, axes); we do the same.
pub type Params = Vec<i64>;

/// Information a split type relays to the runtime so it can choose batch
/// sizes (§5.2 step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeInfo {
    /// Total number of splittable elements the argument will produce
    /// (array elements, matrix rows, DataFrame rows, ...).
    pub total_elements: u64,
    /// Size of one element in bytes; used in the batch-size heuristic
    /// `batch = C * L2 / Σ sizeof(element)`. Zero for arguments that do
    /// not contribute to cache pressure (e.g. a split size scalar).
    pub elem_size_bytes: u64,
}

/// The splitting API an annotator implements per split type (Table 1).
///
/// All methods receive the instance's `params` (produced by
/// [`Splitter::construct`]) so one implementation can serve every
/// instance of the type.
pub trait Splitter: Send + Sync + 'static {
    /// The split type's name `N`. Equality of split types compares names
    /// and parameters.
    fn name(&self) -> &'static str;

    /// The constructor `A0..An => V0..Vn`: map the designated function
    /// arguments to this type's parameter values. Must not modify its
    /// arguments.
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params>;

    /// Derive default parameters directly from a value, used when type
    /// inference cannot resolve a generic and the runtime falls back to
    /// the data type's default split (§5.1).
    fn default_params(&self, arg: &DataValue) -> Result<Params> {
        self.construct(&[arg])
    }

    /// Runtime info for batch sizing. `arg` is the full (unsplit) value.
    fn info(&self, arg: &DataValue, params: &Params) -> Result<RuntimeInfo>;

    /// Produce the piece covering elements `[range.start, range.end)` of
    /// `arg`. Returning `Ok(None)` terminates the driver loop for this
    /// worker (the paper's `NULL` return).
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>>;

    /// Associatively merge pieces back into a full value. Pieces arrive
    /// in element order: the executor tags every piece with the batch
    /// range that produced it and sorts before merging, so dynamic
    /// (out-of-order) batch scheduling is invisible to split types.
    fn merge(&self, pieces: Vec<DataValue>, params: &Params) -> Result<DataValue>;

    /// [`Splitter::merge`] with a merge-size hint: `total_elements` is
    /// the number of splittable elements (in [`RuntimeInfo`] units —
    /// array elements, matrix/DataFrame/image rows) the merged result
    /// will cover. Concat-style merges should override this to
    /// preallocate the result once instead of growing piece by piece;
    /// the default ignores the hint and delegates to `merge`. The
    /// executor calls this for every merge: worker-local runs pass the
    /// run's element count, the final merge passes the stage total.
    fn merge_hinted(
        &self,
        pieces: Vec<DataValue>,
        params: &Params,
        total_elements: u64,
    ) -> Result<DataValue> {
        let _ = total_elements;
        self.merge(pieces, params)
    }

    /// Allocate a *placement merge* output covering `total_elements`
    /// elements (in [`RuntimeInfo`] units), or `Ok(None)` if this split
    /// type cannot merge by placement (the default).
    ///
    /// Placement merging is the zero-copy fast path for concat-shaped
    /// outputs: instead of collecting pieces and re-copying them in a
    /// final `merge`, the executor preallocates the merged value once
    /// and has every worker [`write_piece`](Splitter::write_piece) its
    /// results directly at their element offsets — the returned-value
    /// analogue of the mut-argument `SliceView` path, where writes
    /// already land in the final buffer.
    ///
    /// The executor calls this twice per output at most. Once at
    /// *stage start* with `exemplar: None`, on the calling thread while
    /// the pool is still parked: split types whose parameters fully
    /// determine the output layout should allocate here, where the
    /// allocation's first-touch page faults run uncontended instead of
    /// spinning against the parallel phase's own faults inside worker
    /// merge windows. If that returns `None`, once more on the first
    /// result piece any worker produces, with `exemplar: Some(piece)`:
    /// split types whose output layout is data-dependent — a
    /// DataFrame's schema, a column's dtype — size the allocation from
    /// the piece. Returning `None` for both declines placement, and
    /// the output merges through [`merge_hinted`](Splitter::merge_hinted);
    /// an implementation can use the exemplar to decline dynamically,
    /// e.g. when the pieces already alias a final buffer and a copy
    /// would be a regression.
    ///
    /// Requirements on an implementation that returns `Some(out)`:
    /// `out` must support concurrent `write_piece` calls at disjoint
    /// element offsets from multiple threads, and `merge` semantics
    /// must be pure concatenation in element order (never declare
    /// placement together with [`commutative_merge`](Splitter::commutative_merge)).
    /// Allocations should touch their pages before returning (see
    /// [`crate::buffer::SharedVec::zeros_prefaulted`]) so the parallel
    /// writes are pure memory copies.
    fn alloc_merged(
        &self,
        total_elements: u64,
        params: &Params,
        exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>> {
        let _ = (total_elements, params, exemplar);
        Ok(None)
    }

    /// Write `piece` into the placement output `out` (allocated by
    /// [`alloc_merged`](Splitter::alloc_merged)) starting at element
    /// `offset`, returning the number of elements written — the
    /// piece's actual element count, which may be *less* than the
    /// batch range that produced it when a source dried up mid-batch
    /// (the executor's coverage check relies on the true count to
    /// detect under-filled outputs).
    ///
    /// The executor guarantees that concurrent calls cover disjoint
    /// element ranges (each batch range is claimed exactly once), so
    /// implementations may write through interior-mutable storage
    /// without locking. Implementations must bounds-check `offset`
    /// plus the piece's element count against `out` and error rather
    /// than write out of range.
    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64> {
        let _ = (out, offset);
        Err(Error::Merge {
            split_type: self.name(),
            message: format!(
                "write_piece called on a split type without placement support \
                 (piece {})",
                piece.type_name()
            ),
        })
    }

    /// Shrink a placement output that under-filled to its written
    /// prefix of `elements` elements (the paper's `NULL` split return:
    /// a source dried up before the declared total).
    ///
    /// Only called when every written piece formed one contiguous
    /// prefix `[0, elements)`; the default errors, which fails the
    /// stage rather than returning a partially-initialized value.
    fn truncate_merged(&self, out: DataValue, elements: u64, params: &Params) -> Result<DataValue> {
        let _ = (out, params);
        Err(Error::Merge {
            split_type: self.name(),
            message: format!(
                "placement output under-filled ({elements} elements written) and \
                 this split type cannot truncate"
            ),
        })
    }

    /// Whether `merge` is commutative as well as associative (scalar
    /// sums, elementwise partial reductions). Commutative merges let a
    /// worker fold *all* of its claimed batches into one partial even
    /// when the shared-cursor scheduler handed it non-contiguous
    /// ranges; order-sensitive merges (concatenation) instead merge
    /// per contiguous run and are ordered globally at the final merge.
    ///
    /// Trade-off: because which worker claims which batch varies run to
    /// run, a commutative floating-point fold (e.g. a sum) may group
    /// differently across runs and return results that differ in the
    /// last ulps. Declare a split type commutative only if consumers
    /// tolerate that (as FP reductions under any parallel schedule
    /// must); leave it order-sensitive to keep batch-order-deterministic
    /// merging at some pre-merge cost.
    fn commutative_merge(&self) -> bool {
        false
    }

    /// Whether function results carrying this split type must be merged.
    /// `false` for in-place views whose writes land directly in the
    /// parent buffer (the MKL convention).
    fn needs_merge(&self) -> bool {
        true
    }

    /// Whether pieces of this split type are *partial results* rather
    /// than a partition of the final value (reductions, grouped
    /// aggregations). Terminal values must be merged before any other
    /// function consumes them, so they always end their stage.
    fn terminal(&self) -> bool {
        false
    }
}

/// A fully-applied split type: implementation + concrete parameters.
///
/// `unique` is `Some` for the `unknown` split type, which the paper
/// defines as "a unique split type" — every occurrence is distinct, so
/// two unknown values never type-check as pipelinable with each other,
/// while a single unknown value can still flow into generic arguments.
#[derive(Clone)]
pub struct SplitInstance {
    /// The splitting API implementation.
    pub splitter: Arc<dyn Splitter>,
    /// Concrete parameter values (empty for `unknown`).
    pub params: Params,
    /// Uniqueness token for `unknown` instances.
    pub unique: Option<u64>,
}

static UNKNOWN_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SplitInstance {
    /// A concrete instance of `splitter` with `params`.
    pub fn new(splitter: Arc<dyn Splitter>, params: Params) -> Self {
        SplitInstance {
            splitter,
            params,
            unique: None,
        }
    }

    /// A fresh `unknown` instance whose merges are delegated to `merger`.
    pub fn fresh_unknown(merger: Arc<dyn Splitter>) -> Self {
        SplitInstance {
            splitter: merger,
            params: Params::new(),
            unique: Some(UNKNOWN_COUNTER.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Whether this is an `unknown` instance.
    pub fn is_unknown(&self) -> bool {
        self.unique.is_some()
    }

    /// Whether this instance's pieces are partial results that must be
    /// merged before further consumption (see [`Splitter::terminal`]).
    pub fn terminal(&self) -> bool {
        self.splitter.terminal()
    }

    /// Whether this instance's merge is commutative (see
    /// [`Splitter::commutative_merge`]).
    pub fn commutative_merge(&self) -> bool {
        self.splitter.commutative_merge()
    }

    /// Split type equality: same name, same parameters, same uniqueness
    /// token (§3.2).
    pub fn same_type(&self, other: &SplitInstance) -> bool {
        self.unique == other.unique
            && self.splitter.name() == other.splitter.name()
            && self.params == other.params
    }
}

impl std::fmt::Debug for SplitInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.unique {
            Some(u) => write!(f, "unknown#{u}"),
            None => write!(f, "{}{:?}", self.splitter.name(), self.params),
        }
    }
}

/// The paper's `SizeSplit` (§2.1, Listing 2): splits an integer length
/// argument so that each piece carries the length of the corresponding
/// array piece. Parameter: the total size.
pub struct SizeSplit;

impl Splitter for SizeSplit {
    fn name(&self) -> &'static str {
        "SizeSplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let v = ctor_args
            .first()
            .and_then(|v| crate::value::as_i64(v))
            .ok_or_else(|| Error::Constructor {
                split_type: "SizeSplit",
                message: "expected one integer argument".into(),
            })?;
        Ok(vec![v])
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params.first().copied().unwrap_or(0).max(0) as u64,
            elem_size_bytes: 0,
        })
    }

    fn split(
        &self,
        _arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let total = params.first().copied().unwrap_or(0).max(0) as u64;
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total);
        Ok(Some(DataValue::new(IntValue((end - range.start) as i64))))
    }

    fn merge(&self, _pieces: Vec<DataValue>, params: &Params) -> Result<DataValue> {
        // The merged size is just the original total.
        Ok(DataValue::new(IntValue(
            params.first().copied().unwrap_or(0),
        )))
    }

    fn needs_merge(&self) -> bool {
        false
    }

    fn commutative_merge(&self) -> bool {
        true // the merge result does not depend on the pieces at all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size_instance(n: i64) -> SplitInstance {
        SplitInstance::new(Arc::new(SizeSplit), vec![n])
    }

    #[test]
    fn size_split_pieces_carry_chunk_lengths() {
        let s = SizeSplit;
        let arg = DataValue::new(IntValue(10));
        let params = s.construct(&[&arg]).unwrap();
        assert_eq!(params, vec![10]);
        let info = s.info(&arg, &params).unwrap();
        assert_eq!(info.total_elements, 10);
        assert_eq!(info.elem_size_bytes, 0);

        let p = s.split(&arg, 0..4, &params).unwrap().unwrap();
        assert_eq!(p.downcast_ref::<IntValue>().unwrap().0, 4);
        // Clamped final chunk.
        let p = s.split(&arg, 8..12, &params).unwrap().unwrap();
        assert_eq!(p.downcast_ref::<IntValue>().unwrap().0, 2);
        // Past the end terminates the driver loop.
        assert!(s.split(&arg, 10..14, &params).unwrap().is_none());
    }

    #[test]
    fn instance_equality_is_name_and_params() {
        let a = size_instance(10);
        let b = size_instance(10);
        let c = size_instance(20);
        assert!(a.same_type(&b));
        assert!(!a.same_type(&c));
    }

    #[test]
    fn unknown_instances_are_unique() {
        let m: Arc<dyn Splitter> = Arc::new(SizeSplit);
        let a = SplitInstance::fresh_unknown(m.clone());
        let b = SplitInstance::fresh_unknown(m.clone());
        assert!(a.is_unknown());
        assert!(a.same_type(&a.clone()));
        assert!(!a.same_type(&b));
        // An unknown never equals a concrete instance of the same splitter.
        let c = SplitInstance::new(m, vec![]);
        assert!(!a.same_type(&c));
    }

    #[test]
    fn merge_hinted_defaults_to_merge() {
        // Splitters that don't override the hinted variant behave
        // exactly like `merge`, whatever the hint says.
        let s = SizeSplit;
        let arg = DataValue::new(IntValue(10));
        let params = s.construct(&[&arg]).unwrap();
        let a = s.split(&arg, 0..4, &params).unwrap().unwrap();
        let b = s.split(&arg, 4..10, &params).unwrap().unwrap();
        let merged = s.merge_hinted(vec![a, b], &params, 10).unwrap();
        assert_eq!(merged.downcast_ref::<IntValue>().unwrap().0, 10);
    }

    #[test]
    fn constructor_rejects_wrong_argument() {
        let s = SizeSplit;
        let arg = DataValue::new(crate::value::FloatValue(1.0));
        assert!(s.construct(&[&arg]).is_err());
        assert!(s.construct(&[]).is_err());
    }
}
