//! Split types and the splitting API v2 (§3 of the paper).
//!
//! A *split type* is a parameterized (dependent) type `N<V0..Vn>`: two
//! split types are equal iff their names and parameter values are equal.
//! Annotators implement the splitting API — constructor, `split`, `merge`
//! and `info` (Table 1) — once per split type, and the runtime uses split
//! type equality to decide which functions may be pipelined.
//!
//! # The v2 capability surface
//!
//! The core [`Splitter`] trait is deliberately small: `name`,
//! `construct`, `default_params`, `info`, `split`, and a single `merge`
//! entry point that always receives the merged element total as a size
//! hint. Everything else the runtime used to learn through boolean
//! probes and optional method overrides is now expressed through **one
//! capability probe**, [`Splitter::merge_strategy`], which returns a
//! [`MergeStrategy`] descriptor:
//!
//! * [`MergeStrategy::None`] — pieces are in-place views of storage
//!   that is already whole (the MKL mut-argument convention); `merge`
//!   recovers the parent without touching elements.
//! * [`MergeStrategy::Commutative`] — partial results fold in any
//!   order (reductions). `terminal: true` marks partials that must
//!   merge before any other function consumes them.
//! * [`MergeStrategy::Concat`] — `merge` is pure concatenation in
//!   element order. The optional [`Placement`] capability object
//!   enables the zero-copy fast path where workers write result pieces
//!   directly into a preallocated output.
//! * [`MergeStrategy::Custom`] — an order-sensitive associative merge
//!   that is not a concatenation (e.g. re-aggregating grouped
//!   partials).
//!
//! Concatenation-shaped split types can additionally expose a
//! [`Concat`] capability via [`Splitter::concat`]: the *inverse* of
//! `split`, concatenating whole values end to end and slicing element
//! ranges back out. The serving layer uses it to coalesce
//! fingerprint-identical requests into one evaluation over concatenated
//! inputs — the split/merge duality run in reverse, with zero
//! per-pipeline concatenation code.
//!
//! The same capability powers **split-form intermediates**
//! ([`SplitForm`], `Config::split_form`): when a stage's merged output
//! would only be re-split by the next stage under the same split type,
//! the executor keeps the piece set produced by the upstream workers
//! and serves the downstream split phase straight from it, re-slicing
//! through [`Concat::slice_back`]/[`Concat::concat`] only where batch
//! boundaries differ — eliding the merge→re-split round-trip of pure
//! memory traffic. A split type opts in simply by having
//! [`MergeStrategy::Concat`] semantics and a [`Splitter::concat`]
//! capability (probed by [`SplitInstance::split_form_concat`]).
//!
//! ## Migrating from the v1 trait
//!
//! | v1 | v2 |
//! |---|---|
//! | `merge(pieces, params)` | `merge(pieces, params, total_elements)` |
//! | `merge_hinted(pieces, params, total)` | `merge(pieces, params, total_elements)` |
//! | `commutative_merge() -> bool` | `merge_strategy() -> MergeStrategy::Commutative { .. }` |
//! | `terminal() -> bool` | `terminal: true` on `Commutative` / `Custom` |
//! | `needs_merge() -> bool` | gone — the planner decides in-place-ness from the annotation's mut-arguments. Pick the strategy that describes what `merge` *does*: [`MergeStrategy::None`] when it only recovers an in-place parent (`MatrixSplit`), `Concat` when view recovery is one case of a concatenation (`ArraySplit`), `Commutative` when the result ignores piece order (`SizeSplit`) |
//! | `alloc_merged` / `write_piece` / `truncate_merged` | [`Placement`] object inside `MergeStrategy::Concat` |
//! | — | [`Concat`] capability (`concat` / `slice_back`), new in v2 |

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{DataValue, IntValue};

/// Parameter values of a split type instance.
///
/// The paper models parameters as integers (array lengths, matrix
/// dimensions, axes); we do the same.
pub type Params = Vec<i64>;

/// Information a split type relays to the runtime so it can choose batch
/// sizes (§5.2 step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeInfo {
    /// Total number of splittable elements the argument will produce
    /// (array elements, matrix rows, DataFrame rows, ...).
    pub total_elements: u64,
    /// Size of one element in bytes; used in the batch-size heuristic
    /// `batch = C * L2 / Σ sizeof(element)`. Zero for arguments that do
    /// not contribute to cache pressure (e.g. a split size scalar).
    pub elem_size_bytes: u64,
}

/// How result pieces of a split type become a whole value — the v2
/// capability descriptor returned by [`Splitter::merge_strategy`].
///
/// The descriptor replaces the v1 boolean probes (`needs_merge`,
/// `commutative_merge`, `terminal`) and the free-standing placement
/// method trio: the runtime asks one question per split type and
/// receives every merge-related capability at once.
#[derive(Clone)]
pub enum MergeStrategy {
    /// Pieces are views of storage that is already whole (in-place
    /// mut-argument splits, the MKL convention): [`Splitter::merge`]
    /// recovers the parent buffer without touching elements.
    None,
    /// [`Splitter::merge`] is a commutative as well as associative fold
    /// of partial results (scalar sums, elementwise partial
    /// reductions). Commutative merges let a worker fold *all* of its
    /// claimed batches into one partial even when the shared-cursor
    /// scheduler handed it non-contiguous ranges.
    ///
    /// Trade-off: because which worker claims which batch varies run to
    /// run, a commutative floating-point fold (e.g. a sum) may group
    /// differently across runs and return results that differ in the
    /// last ulps. Declare a merge commutative only if consumers
    /// tolerate that (as FP reductions under any parallel schedule
    /// must).
    Commutative {
        /// Whether pieces are *partial results* rather than a partition
        /// of the final value (reductions, grouped aggregations).
        /// Terminal values must be merged before any other function
        /// consumes them, so they always end their stage.
        terminal: bool,
    },
    /// [`Splitter::merge`] is pure concatenation in element order. The
    /// optional [`Placement`] capability enables the zero-copy merge
    /// fast path (`Config::placement_merge`): the runtime preallocates
    /// the output once and workers write pieces at their element
    /// offsets. Never combine placement with a commutative merge —
    /// partial results have no meaningful element offsets.
    Concat {
        /// Zero-copy placement-merge capability, or `None` to always
        /// collect-and-concatenate.
        placement: Option<Arc<dyn Placement>>,
    },
    /// An order-sensitive associative merge that is not a concatenation
    /// (e.g. re-grouping partial aggregations). This is the default,
    /// and the weakest assumption the runtime can make.
    Custom {
        /// See [`MergeStrategy::Commutative`]'s `terminal`.
        terminal: bool,
    },
}

impl Default for MergeStrategy {
    fn default() -> Self {
        MergeStrategy::Custom { terminal: false }
    }
}

impl MergeStrategy {
    /// Whether pieces are partial results that must merge before any
    /// other function consumes them (ends the stage in the planner).
    pub fn terminal(&self) -> bool {
        matches!(
            self,
            MergeStrategy::Commutative { terminal: true }
                | MergeStrategy::Custom { terminal: true }
        )
    }

    /// Whether the merge is commutative (worker-local folds may combine
    /// non-contiguous batch ranges).
    pub fn commutative(&self) -> bool {
        matches!(self, MergeStrategy::Commutative { .. })
    }

    /// The placement capability, if the strategy is a placement-capable
    /// concatenation.
    pub fn placement(&self) -> Option<&Arc<dyn Placement>> {
        match self {
            MergeStrategy::Concat {
                placement: Some(p), ..
            } => Some(p),
            _ => None,
        }
    }
}

impl std::fmt::Debug for MergeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeStrategy::None => write!(f, "None"),
            MergeStrategy::Commutative { terminal } => {
                write!(f, "Commutative {{ terminal: {terminal} }}")
            }
            MergeStrategy::Concat { placement } => {
                write!(f, "Concat {{ placement: {} }}", placement.is_some())
            }
            MergeStrategy::Custom { terminal } => write!(f, "Custom {{ terminal: {terminal} }}"),
        }
    }
}

/// Zero-copy *placement merge* capability for concat-shaped outputs,
/// carried by [`MergeStrategy::Concat`].
///
/// Placement merging is the fast path for concatenation: instead of
/// collecting pieces and re-copying them in a final merge, the executor
/// preallocates the merged value once and has every worker
/// [`write_piece`](Placement::write_piece) its results directly at
/// their element offsets — the returned-value analogue of the
/// mut-argument `SliceView` path, where writes already land in the
/// final buffer.
pub trait Placement: Send + Sync {
    /// Allocate a placement output covering `total_elements` elements
    /// (in [`RuntimeInfo`] units), or `Ok(None)` to decline.
    ///
    /// The executor calls this at most twice per output. Once at *stage
    /// start* with `exemplar: None`, on the calling thread while the
    /// pool is still parked: split types whose parameters fully
    /// determine the output layout should allocate here, where the
    /// allocation's first-touch page faults run uncontended instead of
    /// spinning against the parallel phase's own faults inside worker
    /// merge windows. If that returns `None`, once more on the first
    /// result piece any worker produces, with `exemplar: Some(piece)`:
    /// split types whose output layout is data-dependent — a
    /// DataFrame's schema, a column's dtype — size the allocation from
    /// the piece. Returning `None` both times declines placement for
    /// the stage, and the output merges through [`Splitter::merge`];
    /// an implementation can use the exemplar to decline dynamically,
    /// e.g. when the pieces already alias a final buffer and a copy
    /// would be a regression.
    ///
    /// Implementations that return `Some(out)` must support concurrent
    /// `write_piece` calls at disjoint element offsets from multiple
    /// threads, and the split type's `merge` semantics must be pure
    /// concatenation in element order. Allocations should touch their
    /// pages before returning (see
    /// [`crate::buffer::SharedVec::zeros_prefaulted`]) so the parallel
    /// writes are pure memory copies.
    fn alloc_merged(
        &self,
        total_elements: u64,
        params: &Params,
        exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>>;

    /// Write `piece` into the placement output `out` (allocated by
    /// [`alloc_merged`](Placement::alloc_merged)) starting at element
    /// `offset`, returning the number of elements written — the
    /// piece's actual element count, which may be *less* than the
    /// batch range that produced it when a source dried up mid-batch
    /// (the executor's coverage check relies on the true count to
    /// detect under-filled outputs).
    ///
    /// The executor guarantees that concurrent calls cover disjoint
    /// element ranges (each batch range is claimed exactly once), so
    /// implementations may write through interior-mutable storage
    /// without locking. Implementations must bounds-check `offset`
    /// plus the piece's element count against `out` and error rather
    /// than write out of range.
    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64>;

    /// Shrink a placement output that under-filled to its written
    /// prefix of `elements` elements (the paper's `NULL` split return:
    /// a source dried up before the declared total).
    ///
    /// Only called when every written piece formed one contiguous
    /// prefix `[0, elements)`.
    fn truncate_merged(&self, out: DataValue, elements: u64, params: &Params) -> Result<DataValue>;
}

/// Whole-value concatenation — the inverse of [`Splitter::split`],
/// exposed through [`Splitter::concat`] (v2).
///
/// Where `split` carves one value into element ranges, `concat` glues
/// several whole values into one and remembers where each began, and
/// [`slice_back`](Concat::slice_back) extracts an element range as a
/// standalone value. Together they let a layer *above* the runtime run
/// the split/merge duality in reverse: the serving layer concatenates
/// fingerprint-identical requests' inputs, evaluates one pipeline over
/// the combined value, and slices each request's elements back out of
/// the combined outputs — bit-identically to separate evaluation for
/// element-preserving pipelines, with no per-pipeline concat code.
pub trait Concat: Send + Sync {
    /// Concatenate whole values end to end.
    ///
    /// Returns the combined value and each input's starting element
    /// offset (`offsets.len() == values.len()`, `offsets[0] == 0`,
    /// offsets nondecreasing). Errors if `values` is empty or the
    /// values cannot be concatenated (mixed concrete types, mismatched
    /// cross sections such as image widths or DataFrame schemas).
    fn concat(&self, values: &[DataValue]) -> Result<(DataValue, Vec<u64>)>;

    /// Extract elements `[offset, offset + len)` of a concatenated
    /// value as a standalone value (a zero-copy view where the data
    /// type supports one).
    ///
    /// For any `v` among concatenated `values`, `slice_back(out,
    /// offsets[i], elements_of(v))` must reproduce `v`'s elements
    /// exactly.
    fn slice_back(&self, out: &DataValue, offset: u64, len: u64) -> Result<DataValue>;
}

/// The splitting API an annotator implements per split type (Table 1,
/// v2 surface — see the module docs for the v1 migration map).
///
/// All methods receive the instance's `params` (produced by
/// [`Splitter::construct`]) so one implementation can serve every
/// instance of the type.
pub trait Splitter: Send + Sync + 'static {
    /// The split type's name `N`. Equality of split types compares names
    /// and parameters.
    fn name(&self) -> &'static str;

    /// The constructor `A0..An => V0..Vn`: map the designated function
    /// arguments to this type's parameter values. Must not modify its
    /// arguments.
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params>;

    /// Derive default parameters directly from a value, used when type
    /// inference cannot resolve a generic and the runtime falls back to
    /// the data type's default split (§5.1).
    fn default_params(&self, arg: &DataValue) -> Result<Params> {
        self.construct(&[arg])
    }

    /// Runtime info for batch sizing. `arg` is the full (unsplit) value.
    fn info(&self, arg: &DataValue, params: &Params) -> Result<RuntimeInfo>;

    /// Produce the piece covering elements `[range.start, range.end)` of
    /// `arg`. Returning `Ok(None)` terminates the driver loop for this
    /// worker (the paper's `NULL` return).
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>>;

    /// Associatively merge pieces back into a full value.
    ///
    /// Pieces arrive in element order unless
    /// [`merge_strategy`](Splitter::merge_strategy) declares the merge
    /// commutative: the executor tags every piece with the batch range
    /// that produced it and sorts before merging, so dynamic
    /// (out-of-order) batch scheduling is invisible to split types.
    ///
    /// `total_elements` is the merge-size hint: the number of
    /// splittable elements (in [`RuntimeInfo`] units — array elements,
    /// matrix/DataFrame/image rows) the merged result will cover.
    /// Concat-style merges should preallocate the result once from the
    /// hint instead of growing piece by piece; merges that do not care
    /// simply ignore it. The executor passes the run's element count at
    /// worker-local merges and the stage total at the final merge.
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        params: &Params,
        total_elements: u64,
    ) -> Result<DataValue>;

    /// The single v2 capability probe: how this split type's pieces
    /// become a whole value. See [`MergeStrategy`]. The default is the
    /// weakest assumption — an order-sensitive, non-terminal custom
    /// merge with no placement.
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::default()
    }

    /// Whole-value concatenation capability — the inverse of `split` —
    /// or `None` (the default) when values of this split type cannot be
    /// concatenated outside the runtime. See [`Concat`].
    fn concat(&self) -> Option<Arc<dyn Concat>> {
        None
    }
}

/// A fully-applied split type: implementation + concrete parameters.
///
/// `unique` is `Some` for the `unknown` split type, which the paper
/// defines as "a unique split type" — every occurrence is distinct, so
/// two unknown values never type-check as pipelinable with each other,
/// while a single unknown value can still flow into generic arguments.
#[derive(Clone)]
pub struct SplitInstance {
    /// The splitting API implementation.
    pub splitter: Arc<dyn Splitter>,
    /// Concrete parameter values (empty for `unknown`).
    pub params: Params,
    /// Uniqueness token for `unknown` instances.
    pub unique: Option<u64>,
}

static UNKNOWN_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SplitInstance {
    /// A concrete instance of `splitter` with `params`.
    pub fn new(splitter: Arc<dyn Splitter>, params: Params) -> Self {
        SplitInstance {
            splitter,
            params,
            unique: None,
        }
    }

    /// A fresh `unknown` instance whose merges are delegated to `merger`.
    pub fn fresh_unknown(merger: Arc<dyn Splitter>) -> Self {
        SplitInstance {
            splitter: merger,
            params: Params::new(),
            unique: Some(UNKNOWN_COUNTER.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Whether this is an `unknown` instance.
    pub fn is_unknown(&self) -> bool {
        self.unique.is_some()
    }

    /// The splitter's merge capability descriptor (see
    /// [`Splitter::merge_strategy`]). For `unknown` instances this is
    /// the delegated merger's strategy; note the executor never uses
    /// placement for unknown outputs (their pieces may compact, so
    /// batch offsets are meaningless).
    pub fn merge_strategy(&self) -> MergeStrategy {
        self.splitter.merge_strategy()
    }

    /// Whether this instance's pieces are partial results that must be
    /// merged before further consumption (derived from
    /// [`Splitter::merge_strategy`]).
    pub fn terminal(&self) -> bool {
        self.splitter.merge_strategy().terminal()
    }

    /// Whether this instance's merge is commutative (derived from
    /// [`Splitter::merge_strategy`]).
    pub fn commutative_merge(&self) -> bool {
        self.splitter.merge_strategy().commutative()
    }

    /// Split type equality: same name, same parameters, same uniqueness
    /// token (§3.2).
    pub fn same_type(&self, other: &SplitInstance) -> bool {
        self.unique == other.unique
            && self.splitter.name() == other.splitter.name()
            && self.params == other.params
    }

    /// The concatenation capability this instance can use for
    /// split-form hand-offs ([`SplitForm`]), or `None` when the value
    /// must be merged classically.
    ///
    /// `Some` iff the instance is concrete (not `unknown` — unknown
    /// pieces may compact, so their offsets are meaningless), its merge
    /// is a pure concatenation in element order
    /// ([`MergeStrategy::Concat`]), and the splitter exposes a
    /// [`Concat`] capability to re-slice misaligned batch ranges with.
    pub fn split_form_concat(&self) -> Option<Arc<dyn Concat>> {
        if self.is_unknown() {
            return None;
        }
        if !matches!(self.merge_strategy(), MergeStrategy::Concat { .. }) {
            return None;
        }
        self.splitter.concat()
    }
}

impl std::fmt::Debug for SplitInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.unique {
            Some(u) => write!(f, "unknown#{u}"),
            None => write!(f, "{}{:?}", self.splitter.name(), self.params),
        }
    }
}

/// A value held across a stage boundary *in split form*: the ordered
/// piece set the producing stage's workers left behind, with the
/// element range each piece covers, instead of the merged whole.
///
/// When the planner proves a stage's merge output is consumed only by
/// later nodes that re-split it under the same split type (see
/// `OutputKind::SplitForm` in the planner), the executor skips the
/// final merge and stores one of these on the value entry. The
/// consuming stage's split phase then serves batch ranges straight from
/// the pieces: a range that lines up with one piece's boundaries is a
/// clone of that piece — the dominant case, because batch sizing is a
/// pure function of the element total and per-element size, both of
/// which the hand-off preserves — and a misaligned range is re-sliced
/// out of the overlapping pieces through the split type's [`Concat`]
/// capability.
///
/// Invariants, validated by [`SplitForm::new`]: at least one piece,
/// pieces sorted by start and contiguous from element 0, and the
/// covered range ends at or before `total` (a shorter covered range is
/// the paper's `NULL` under-fill, preserved faithfully across the
/// boundary).
pub struct SplitForm {
    /// `(start, end, piece)` in element order, contiguous from 0.
    pieces: Vec<(u64, u64, DataValue)>,
    /// Declared element total of the value (`>= covered()`).
    total: u64,
    /// The split type the pieces were produced under — and the type
    /// any consuming stage must bind the value at.
    instance: SplitInstance,
    /// Concatenation capability used for misaligned re-slices.
    concat: Arc<dyn Concat>,
    /// Per-element size in bytes, for downstream batch sizing.
    elem_size_bytes: u64,
}

impl SplitForm {
    /// Build a split-form value from an ordered piece set, validating
    /// the contiguity invariants. `instance` must be split-form capable
    /// ([`SplitInstance::split_form_concat`]).
    pub fn new(
        pieces: Vec<(u64, u64, DataValue)>,
        total: u64,
        instance: SplitInstance,
        elem_size_bytes: u64,
    ) -> Result<SplitForm> {
        let split_type = instance.splitter.name();
        let concat = instance.split_form_concat().ok_or_else(|| Error::Merge {
            split_type,
            message: "split type has no concat capability for split-form hand-off".into(),
        })?;
        if pieces.is_empty() {
            return Err(Error::Merge {
                split_type,
                message: "split-form value has no pieces".into(),
            });
        }
        let mut cursor = 0u64;
        for (start, end, _) in &pieces {
            if *start != cursor || *end < *start {
                return Err(Error::Merge {
                    split_type,
                    message: format!(
                        "split-form pieces have an interior gap or overlap at element {cursor} \
                         (piece covers {start}..{end})"
                    ),
                });
            }
            cursor = *end;
        }
        if cursor > total {
            return Err(Error::Merge {
                split_type,
                message: format!(
                    "split-form pieces cover {cursor} elements, more than total {total}"
                ),
            });
        }
        Ok(SplitForm {
            pieces,
            total,
            instance,
            concat,
            elem_size_bytes,
        })
    }

    /// Declared element total of the whole value.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Elements actually covered by pieces (`<= total`; less only when
    /// the producing split under-filled with a `NULL` return).
    pub fn covered(&self) -> u64 {
        self.pieces.last().map(|&(_, end, _)| end).unwrap_or(0)
    }

    /// Per-element size in bytes (0 when unknown; batch sizing then
    /// falls back to one batch).
    pub fn elem_size_bytes(&self) -> u64 {
        self.elem_size_bytes
    }

    /// The split type the pieces are held under.
    pub fn instance(&self) -> &SplitInstance {
        &self.instance
    }

    /// Number of pieces.
    pub fn piece_count(&self) -> usize {
        self.pieces.len()
    }

    /// The element range each piece covers, in piece order — the view
    /// the [plan verifier](crate::verify) re-checks contiguity over.
    pub fn ranges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pieces.iter().map(|&(start, end, _)| (start, end))
    }

    /// Build a split-form value **without** validating the contiguity
    /// invariants. Exists so verifier tests can construct malformed
    /// piece sets that [`SplitForm::new`] would reject; never call this
    /// from runtime code.
    #[doc(hidden)]
    pub fn new_unchecked(
        pieces: Vec<(u64, u64, DataValue)>,
        total: u64,
        instance: SplitInstance,
        elem_size_bytes: u64,
    ) -> Result<SplitForm> {
        let concat = instance.split_form_concat().ok_or_else(|| Error::Merge {
            split_type: instance.splitter.name(),
            message: "split type has no concat capability for split-form hand-off".into(),
        })?;
        Ok(SplitForm {
            pieces,
            total,
            instance,
            concat,
            elem_size_bytes,
        })
    }

    /// Serve the element range `[range.start, range.end)` from the
    /// piece set — the split-form analogue of [`Splitter::split`].
    ///
    /// Returns `Ok(None)` past the covered range (the `NULL` driver
    /// stop), and otherwise the piece plus a flag that is `true` when
    /// the range was *re-sliced* through the [`Concat`] capability
    /// rather than served as a whole piece clone (observable as
    /// `split_form_reslices` in the stats).
    pub fn slice(&self, range: Range<u64>) -> Result<Option<(DataValue, bool)>> {
        let covered = self.covered();
        if range.start >= covered || range.end <= range.start {
            return Ok(None);
        }
        let end = range.end.min(covered);
        // Fast path: the range is exactly one piece.
        if let Ok(i) = self
            .pieces
            .binary_search_by(|probe| probe.0.cmp(&range.start))
        {
            let (_, piece_end, piece) = &self.pieces[i];
            if *piece_end == end {
                return Ok(Some((piece.clone(), false)));
            }
        }
        // Re-slice: take the overlap of every covering piece and
        // concatenate when the range spans more than one.
        let first = self.pieces.partition_point(|&(_, e, _)| e <= range.start);
        let mut parts = Vec::new();
        for (start, piece_end, piece) in &self.pieces[first..] {
            if *start >= end {
                break;
            }
            let lo = range.start.max(*start);
            let hi = end.min(*piece_end);
            if hi > lo {
                parts.push(self.concat.slice_back(piece, lo - start, hi - lo)?);
            }
        }
        let piece = match parts.len() {
            0 => return Ok(None),
            1 => parts.pop().expect("len checked"),
            _ => self.concat.concat(&parts)?.0,
        };
        Ok(Some((piece, true)))
    }

    /// Merge the pieces into the whole value through the split type's
    /// classic [`Splitter::merge`] — the fallback when a consumer turns
    /// out to need the materialized value after all (observable as
    /// `split_form_fallbacks` in the stats).
    pub fn materialize(&self) -> Result<DataValue> {
        let pieces: Vec<DataValue> = self.pieces.iter().map(|(_, _, v)| v.clone()).collect();
        self.instance
            .splitter
            .merge(pieces, &self.instance.params, self.covered())
    }
}

impl std::fmt::Debug for SplitForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SplitForm {{ {:?}, pieces: {}, covered: {}/{} }}",
            self.instance,
            self.pieces.len(),
            self.covered(),
            self.total
        )
    }
}

/// The paper's `SizeSplit` (§2.1, Listing 2): splits an integer length
/// argument so that each piece carries the length of the corresponding
/// array piece. Parameter: the total size.
pub struct SizeSplit;

impl Splitter for SizeSplit {
    fn name(&self) -> &'static str {
        "SizeSplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let v = ctor_args
            .first()
            .and_then(|v| crate::value::as_i64(v))
            .ok_or_else(|| Error::Constructor {
                split_type: "SizeSplit",
                message: "expected one integer argument".into(),
            })?;
        Ok(vec![v])
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params.first().copied().unwrap_or(0).max(0) as u64,
            elem_size_bytes: 0,
        })
    }

    fn split(
        &self,
        _arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let total = params.first().copied().unwrap_or(0).max(0) as u64;
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total);
        Ok(Some(DataValue::new(IntValue((end - range.start) as i64))))
    }

    fn merge(
        &self,
        _pieces: Vec<DataValue>,
        params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        // The merged size is just the original total.
        Ok(DataValue::new(IntValue(
            params.first().copied().unwrap_or(0),
        )))
    }

    fn merge_strategy(&self) -> MergeStrategy {
        // The merge result does not depend on the pieces at all, so it
        // is trivially commutative; the sizes are a partition, not
        // partial results, so it is not terminal.
        MergeStrategy::Commutative { terminal: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size_instance(n: i64) -> SplitInstance {
        SplitInstance::new(Arc::new(SizeSplit), vec![n])
    }

    #[test]
    fn size_split_pieces_carry_chunk_lengths() {
        let s = SizeSplit;
        let arg = DataValue::new(IntValue(10));
        let params = s.construct(&[&arg]).unwrap();
        assert_eq!(params, vec![10]);
        let info = s.info(&arg, &params).unwrap();
        assert_eq!(info.total_elements, 10);
        assert_eq!(info.elem_size_bytes, 0);

        let p = s.split(&arg, 0..4, &params).unwrap().unwrap();
        assert_eq!(p.downcast_ref::<IntValue>().unwrap().0, 4);
        // Clamped final chunk.
        let p = s.split(&arg, 8..12, &params).unwrap().unwrap();
        assert_eq!(p.downcast_ref::<IntValue>().unwrap().0, 2);
        // Past the end terminates the driver loop.
        assert!(s.split(&arg, 10..14, &params).unwrap().is_none());
    }

    #[test]
    fn instance_equality_is_name_and_params() {
        let a = size_instance(10);
        let b = size_instance(10);
        let c = size_instance(20);
        assert!(a.same_type(&b));
        assert!(!a.same_type(&c));
    }

    #[test]
    fn unknown_instances_are_unique() {
        let m: Arc<dyn Splitter> = Arc::new(SizeSplit);
        let a = SplitInstance::fresh_unknown(m.clone());
        let b = SplitInstance::fresh_unknown(m.clone());
        assert!(a.is_unknown());
        assert!(a.same_type(&a.clone()));
        assert!(!a.same_type(&b));
        // An unknown never equals a concrete instance of the same splitter.
        let c = SplitInstance::new(m, vec![]);
        assert!(!a.same_type(&c));
    }

    #[test]
    fn merge_ignores_hint_when_strategy_does_not_need_it() {
        // The size hint is advisory: splitters that don't preallocate
        // behave identically whatever the hint says.
        let s = SizeSplit;
        let arg = DataValue::new(IntValue(10));
        let params = s.construct(&[&arg]).unwrap();
        let a = s.split(&arg, 0..4, &params).unwrap().unwrap();
        let b = s.split(&arg, 4..10, &params).unwrap().unwrap();
        let merged = s.merge(vec![a, b], &params, 10).unwrap();
        assert_eq!(merged.downcast_ref::<IntValue>().unwrap().0, 10);
    }

    #[test]
    fn strategy_probe_derives_instance_capabilities() {
        let inst = size_instance(4);
        assert!(inst.commutative_merge());
        assert!(!inst.terminal());
        assert!(inst.merge_strategy().placement().is_none());
        assert!(inst.splitter.concat().is_none());
        // Default strategy is the weakest assumption.
        let d = MergeStrategy::default();
        assert!(!d.terminal() && !d.commutative() && d.placement().is_none());
        // Terminal customs and commutatives both report terminal.
        assert!(MergeStrategy::Custom { terminal: true }.terminal());
        assert!(MergeStrategy::Commutative { terminal: true }.terminal());
        assert!(MergeStrategy::Commutative { terminal: true }.commutative());
    }

    #[test]
    fn constructor_rejects_wrong_argument() {
        let s = SizeSplit;
        let arg = DataValue::new(crate::value::FloatValue(1.0));
        assert!(s.construct(&[&arg]).is_err());
        assert!(s.construct(&[]).is_err());
    }
}
