//! The Mozart client library (`libmozart`, §4): lazy capture of a
//! dataflow graph from an unmodified application, and the evaluation
//! entry points.
//!
//! Annotated wrapper functions call [`MozartContext::call`] (the paper's
//! `register(function, args)`), which records the call and returns a
//! lazy [`FutureHandle`]. Evaluation is forced when (1) a `Future` is
//! accessed, or (2) a buffer mutated by a pending call is read through
//! its safe API — the Rust analogue of the paper's memory-protection
//! trick (see [`crate::buffer`]).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::annotation::Annotation;
use crate::buffer::EvalTrigger;
use crate::config::Config;
use crate::error::{Error, Result};
use crate::executor::{execute_stage, DeferredMerge};
use crate::graph::{DataflowGraph, FutureToken, Node, ValueEntry, ValueId, ValueOrigin};
use crate::planner::{plan_next_stage, PlanCache, PlanCacheStats, PlanRecorder};
use crate::pool::{PoolHandle, WorkerPool};
use crate::stats::{PhaseStats, PoolStats};
use crate::trace::{SpanKind, TraceCtx, TraceId, SERVICE_WORKER};
use crate::value::{DataObject, DataValue};

static CTX_COUNTER: AtomicU64 = AtomicU64::new(1);

struct State {
    graph: DataflowGraph,
    config: Config,
    stats: PhaseStats,
    /// The context's own worker pool, created lazily on first evaluation
    /// and kept across stages (and evaluations) so stage execution never
    /// spawns threads. Rebuilt only if `config.workers` changes. Unused
    /// (and never created) while a shared pool is attached.
    pool: Option<PoolHandle>,
    /// A shared pool attached with [`MozartContext::attach_pool`]; takes
    /// precedence over the context-owned pool.
    attached_pool: Option<PoolHandle>,
    /// A shared plan cache attached with
    /// [`MozartContext::attach_plan_cache`].
    plan_cache: Option<Arc<PlanCache>>,
    /// Session tag for shared-pool fairness accounting; defaults to the
    /// context id.
    session_tag: u64,
    /// Cooperative cancellation token
    /// ([`MozartContext::set_cancel_token`]): workers poll it at batch
    /// boundaries and abandon the evaluation with [`Error::Cancelled`].
    cancel: Option<Arc<crate::faultinject::CancelToken>>,
    /// Active trace id when `config.tracing` is set: installed by a
    /// serving layer ([`MozartContext::set_trace_id`]) or minted on the
    /// first evaluation; 0 = untraced.
    trace_id: TraceId,
    /// Values whose storage is protected pending evaluation.
    protected: Vec<DataValue>,
    /// First evaluation error, if any, reported to later accessors.
    poisoned: Option<Error>,
}

/// Shared interior of a context.
pub struct ContextInner {
    id: u64,
    state: Mutex<State>,
}

impl EvalTrigger for ContextInner {
    fn force(&self) {
        // Errors surface on explicit `Future::get` / `evaluate` calls;
        // a protected read cannot return them, so they poison the state.
        let mut st = self.state.lock();
        let _ = evaluate_locked(self, &mut st);
    }
}

/// A handle to the Mozart runtime: captures calls, owns the dataflow
/// graph, and evaluates it on demand.
///
/// Cloning is cheap and clones share all state.
#[derive(Clone)]
pub struct MozartContext {
    inner: Arc<ContextInner>,
}

impl Default for MozartContext {
    fn default() -> Self {
        Self::new(Config::default())
    }
}

impl MozartContext {
    /// Create a context with the given configuration. An invalid config
    /// (see [`Config::validate`]) poisons the context: every `call` and
    /// `evaluate` reports [`Error::InvalidConfig`] instead of silently
    /// mis-scheduling.
    pub fn new(config: Config) -> Self {
        let id = CTX_COUNTER.fetch_add(1, Ordering::Relaxed);
        let poisoned = config.validate().err();
        MozartContext {
            inner: Arc::new(ContextInner {
                id,
                state: Mutex::new(State {
                    graph: DataflowGraph::default(),
                    config,
                    stats: PhaseStats::default(),
                    pool: None,
                    attached_pool: None,
                    plan_cache: None,
                    session_tag: id,
                    cancel: None,
                    trace_id: 0,
                    protected: Vec::new(),
                    poisoned,
                }),
            }),
        }
    }

    /// Create a context with `workers` threads and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(Config::with_workers(workers))
    }

    /// Attach a shared worker pool. Stages of this context then run on
    /// the shared threads (the evaluating thread still participates as
    /// worker 0) instead of a context-owned pool — the serving setup,
    /// where many sessions share one machine-sized pool rather than
    /// oversubscribing the host with a pool per context. The number of
    /// participants per stage is still capped by `config.workers`.
    pub fn attach_pool(&self, pool: PoolHandle) -> &Self {
        let mut st = self.inner.state.lock();
        st.attached_pool = Some(pool);
        st.pool = None;
        self
    }

    /// Attach a shared plan cache (see [`PlanCache`]): evaluations whose
    /// pending call graph fingerprints to a cached plan skip planning
    /// and replay the memoized stage skeletons.
    pub fn attach_plan_cache(&self, cache: Arc<PlanCache>) -> &Self {
        self.inner.state.lock().plan_cache = Some(cache);
        self
    }

    /// Set the session tag used for shared-pool fairness accounting
    /// (defaults to the context id). Serving layers tag every request
    /// context with its session so [`PoolStats::sessions`] aggregates
    /// per client, not per short-lived context.
    pub fn set_session_tag(&self, session: u64) -> &Self {
        self.inner.state.lock().session_tag = session;
        self
    }

    /// Attach a cooperative cancellation token (see
    /// [`CancelToken`](crate::faultinject::CancelToken)). Every stage
    /// executed after this call polls the token at its batch-claim
    /// boundaries: once the token is cancelled — explicitly or because
    /// its deadline passed — the evaluation stops claiming batches and
    /// fails with [`Error::Cancelled`] (poisoning this context like any
    /// other execution failure). Serving layers attach a
    /// deadline-carrying token per request so shed requests stop
    /// burning pool time mid-evaluation.
    pub fn set_cancel_token(&self, token: Arc<crate::faultinject::CancelToken>) -> &Self {
        self.inner.state.lock().cancel = Some(token);
        self
    }

    /// Install the trace id evaluations of this context record spans
    /// under (see [`Config::tracing`](crate::Config) and
    /// [`crate::trace`]). Serving layers mint one id per request and
    /// install it on the request's context so executor spans join the
    /// request's serve-side spans in one tree. Without an explicit id,
    /// a traced context mints its own on first evaluation.
    pub fn set_trace_id(&self, id: TraceId) -> &Self {
        self.inner.state.lock().trace_id = id;
        self
    }

    /// The trace id this context records under, if tracing is active
    /// (an id was installed or minted).
    pub fn trace_id(&self) -> Option<TraceId> {
        let id = self.inner.state.lock().trace_id;
        (id != 0).then_some(id)
    }

    /// Counters of the attached plan cache, if any.
    pub fn plan_cache_stats(&self) -> Option<PlanCacheStats> {
        let st = self.inner.state.lock();
        st.plan_cache.as_ref().map(|c| c.stats())
    }

    /// Unique id of this context (used to tag lazy values).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Replace the configuration. Affects stages planned after the call.
    /// An invalid config (see [`Config::validate`]) poisons the context;
    /// attaching a valid config afterwards clears that poison (nothing
    /// was scheduled under the rejected config, so unlike an execution
    /// failure there is no corrupted state to protect).
    pub fn set_config(&self, config: Config) {
        let mut st = self.inner.state.lock();
        match config.validate() {
            Err(e) => {
                if st.poisoned.is_none() {
                    st.poisoned = Some(e);
                }
            }
            Ok(()) => {
                if matches!(st.poisoned, Some(Error::InvalidConfig(_))) {
                    st.poisoned = None;
                }
            }
        }
        st.config = config;
    }

    /// Read a copy of the current configuration.
    pub fn config(&self) -> Config {
        self.inner.state.lock().config.clone()
    }

    /// Register a call to an annotated function (the paper's
    /// `register`). Returns a lazy handle to the return value if the
    /// annotation declares one.
    pub fn call(
        &self,
        annot: &Arc<Annotation>,
        args: Vec<DataValue>,
    ) -> Result<Option<FutureHandle>> {
        let t0 = Instant::now();
        let mut st = self.inner.state.lock();
        if let Some(e) = &st.poisoned {
            return Err(e.clone());
        }
        if args.len() != annot.args.len() {
            return Err(Error::ArgCount {
                function: annot.name,
                expected: annot.args.len(),
                actual: args.len(),
            });
        }
        // Layer-1 static check (§3 typing rules): reject unsound
        // annotations at registration instead of failing deep in the
        // executor. The call is refused but the context stays usable —
        // nothing has been scheduled yet.
        if st.config.verify_plans {
            if let Some(err) = crate::verify::check_annotation(annot).into_iter().next() {
                return Err(Error::Verify(err));
            }
        }

        // Resolve reads first so an in-place call (out == a) reads the
        // pre-mutation version.
        let mut arg_ids: Vec<ValueId> = Vec::with_capacity(args.len());
        for dv in &args {
            let vid = match dv {
                DataValue::Lazy { ctx_id, value } => {
                    if *ctx_id != self.inner.id {
                        return Err(Error::ForeignValue);
                    }
                    *value
                }
                _ => st.graph.resolve_arg(dv),
            };
            arg_ids.push(vid);
        }

        // Create mut-versions and protect the mutated storage.
        let node_id = crate::graph::NodeId(st.graph.nodes.len() as u32);
        let mut mut_out: Vec<Option<ValueId>> = vec![None; args.len()];
        for (i, spec) in annot.args.iter().enumerate() {
            if !spec.mutable {
                continue;
            }
            let dv = &args[i];
            let prev = arg_ids[i];
            let mv = st.graph.push_value(ValueEntry {
                origin: ValueOrigin::MutVersion {
                    node: node_id,
                    arg: i,
                    prev,
                },
                data: Some(dv.clone()),
                ready: false,
                split_form: None,
                consumers: Vec::new(),
                user_token: None,
            });
            if let Some(ident) = dv.identity() {
                st.graph.identity_map.insert(ident, mv);
            }
            if dv.protect_flag().is_some() {
                let trigger: Arc<dyn EvalTrigger> = self.inner.clone();
                dv.protect_flag()
                    .expect("checked above")
                    .protect(Arc::downgrade(&trigger));
                st.protected.push(dv.clone());
            }
            mut_out[i] = Some(mv);
        }

        // Create the return value and its liveness token.
        let mut future = None;
        let mut ret = None;
        if annot.ret.is_some() {
            let token = Arc::new(FutureToken);
            let rv = st.graph.push_value(ValueEntry {
                origin: ValueOrigin::Ret(node_id),
                data: None,
                ready: false,
                split_form: None,
                consumers: Vec::new(),
                user_token: Some(Arc::downgrade(&token)),
            });
            ret = Some(rv);
            future = Some(FutureHandle {
                ctx: self.clone(),
                value: rv,
                _token: token,
            });
        }

        st.graph.push_node(Node {
            annot: annot.clone(),
            args: arg_ids,
            mut_out,
            ret,
            executed: false,
        });
        st.stats.client += t0.elapsed();
        Ok(future)
    }

    /// Evaluate all pending calls (the paper's `evaluate()`).
    pub fn evaluate(&self) -> Result<()> {
        let mut st = self.inner.state.lock();
        evaluate_locked(&self.inner, &mut st)
    }

    /// Data of a graph value, if it has been produced.
    pub fn value_data(&self, id: ValueId) -> Option<DataValue> {
        self.inner.state.lock().graph.value_data(id).cloned()
    }

    /// Force evaluation and fetch the data of a value.
    pub fn force_value(&self, id: ValueId) -> Result<DataValue> {
        if let Some(d) = self.value_data(id) {
            return Ok(d);
        }
        self.evaluate()?;
        {
            // Defensive: values observed through live Futures are never
            // handed off in split form (the planner checks liveness),
            // but a raw `ValueId` fetch bypasses that — materialize on
            // demand rather than report the value unavailable.
            let mut st = self.inner.state.lock();
            if st.graph.materialize_split_form(id)? {
                st.stats.split_form_fallbacks += 1;
            }
        }
        self.value_data(id).ok_or(Error::ValueUnavailable)
    }

    /// Cumulative phase statistics.
    pub fn stats(&self) -> PhaseStats {
        self.inner.state.lock().stats
    }

    /// Counters of the worker pool this context evaluates on — the
    /// attached shared pool if one is set (counters then aggregate over
    /// every context sharing it), otherwise the context-owned pool
    /// (empty until the first multi-worker stage runs; counters reset if
    /// the pool is rebuilt after a `set_config` call that changes the
    /// worker count).
    pub fn pool_stats(&self) -> PoolStats {
        let st = self.inner.state.lock();
        st.attached_pool
            .as_ref()
            .or(st.pool.as_ref())
            .map(|p| WorkerPool::stats(p))
            .unwrap_or_default()
    }

    /// Take and reset the phase statistics.
    pub fn take_stats(&self) -> PhaseStats {
        std::mem::take(&mut self.inner.state.lock().stats)
    }

    /// Number of pending (captured but unexecuted) calls.
    pub fn pending_calls(&self) -> usize {
        self.inner.state.lock().graph.pending_nodes()
    }
}

fn evaluate_locked(inner: &ContextInner, st: &mut State) -> Result<()> {
    if let Some(e) = &st.poisoned {
        return Err(e.clone());
    }
    if st.graph.fully_executed() {
        return Ok(());
    }
    // Overlapped final merges dispatched to the pool by stages of this
    // evaluation. Joined unconditionally before returning — success or
    // failure — so no side job outlives the evaluation that spawned it
    // and every user-visible value is materialized when control returns.
    let mut deferred: Vec<DeferredMerge> = Vec::new();
    let result = evaluate_pending(inner, st, &mut deferred);
    let joined = join_deferred(st, deferred);
    result.and(joined)
}

/// Join every overlapped final merge, materializing its value into the
/// graph. The first join error poisons the context (like any stage
/// failure), but all merges are still joined.
fn join_deferred(st: &mut State, deferred: Vec<DeferredMerge>) -> Result<()> {
    let mut result = Ok(());
    for d in deferred {
        let State { graph, stats, .. } = st;
        if let Err(e) = d.join(graph, stats) {
            if result.is_ok() {
                st.poisoned = Some(e.clone());
                result = Err(e);
            }
        }
    }
    result
}

fn evaluate_pending(
    inner: &ContextInner,
    st: &mut State,
    deferred: &mut Vec<DeferredMerge>,
) -> Result<()> {
    // Tracing: mint a trace id on first use (serving layers install
    // theirs up front via `set_trace_id`) and carry the recorder + id
    // into every stage. `None` when tracing is off — the only cost then
    // is this branch and an `Option` check per span site.
    let trace = st.config.tracing.clone().map(|recorder| {
        if st.trace_id == 0 {
            st.trace_id = recorder.mint();
        }
        TraceCtx {
            recorder,
            trace: st.trace_id,
        }
    });
    let planner_before = st.stats.planner;
    let mut planner_cpu = std::time::Duration::ZERO;
    let eval_start_ns = trace.as_ref().map(|t| t.recorder.now_ns());

    // Unprotect everything first: during execution the runtime itself
    // reads and writes these buffers through the unchecked APIs, and the
    // data will be up to date when evaluation returns.
    let t0 = Instant::now();
    let c0 = trace.as_ref().map(|_| crate::cputime::thread_cpu_now());
    for dv in st.protected.drain(..) {
        if let Some(flag) = dv.protect_flag() {
            flag.unprotect();
        }
    }
    st.stats.unprotect += t0.elapsed();
    if let (Some(t), Some(start), Some(c0)) = (&trace, eval_start_ns, c0) {
        t.emit(
            SpanKind::Unprotect,
            SERVICE_WORKER,
            0,
            0,
            start,
            duration_ns(t0.elapsed()),
            duration_ns(crate::cputime::cpu_elapsed(
                c0,
                crate::cputime::thread_cpu_now(),
            )),
        );
    }

    let _ = inner; // reserved for future per-context callbacks

    // Make sure the persistent pool matches the configured parallelism:
    // the calling thread participates in every stage, so the pool holds
    // `workers - 1` threads. An attached shared pool always wins — the
    // whole point of sharing is that this context spawns nothing. The
    // spawn-per-stage ablation (`reuse_pool = false`) must not own idle
    // pool threads, or it would misrepresent the no-pool baseline.
    if st.attached_pool.is_some() {
        st.pool = None;
    } else if st.config.reuse_pool {
        let want_pool_workers = st.config.workers.max(1) - 1;
        let pool_matches = st
            .pool
            .as_ref()
            .is_some_and(|p| p.pool_workers() == want_pool_workers);
        if !pool_matches {
            st.pool = Some(PoolHandle::new(want_pool_workers));
        }
    } else {
        st.pool = None;
    }

    // Plan-cache lookup: fingerprint the pending segment once per
    // evaluation. A hit replays the memoized stage skeletons (re-binding
    // materialized values, re-validating element totals before anything
    // runs); a miss plans from scratch while recording, and inserts the
    // segment's plan when every stage executed cleanly.
    let cache = st.plan_cache.clone();
    let mut recorder: Option<PlanRecorder> = None;
    if let Some(cache) = &cache {
        let t1 = Instant::now();
        let c1 = trace.as_ref().map(|_| crate::cputime::thread_cpu_now());
        let shape = st.graph.pending_shape();
        st.stats.planner += t1.elapsed();
        if let Some(c1) = c1 {
            planner_cpu += crate::cputime::cpu_elapsed(c1, crate::cputime::thread_cpu_now());
        }
        if let Some(mut shape) = shape {
            // Mix planning-relevant configuration into the key: the
            // `pipeline` ablation changes stage grouping and the
            // `split_form` ablation changes output rewrites, so a plan
            // recorded under one setting must never replay under the
            // other (one shared cache can serve contexts with both).
            if !st.config.pipeline {
                shape.fingerprint ^= 0x9e37_79b9_7f4a_7c15;
            }
            if !st.config.split_form {
                shape.fingerprint ^= 0x85eb_ca6b_27d4_eb4f;
            }
            match cache.lookup(shape.fingerprint) {
                Some(plan) if plan.nodes_total == st.graph.pending_nodes() => {
                    let mut replayed = true;
                    for idx in 0..plan.stage_count() {
                        let t1 = Instant::now();
                        let c1 = trace.as_ref().map(|_| crate::cputime::thread_cpu_now());
                        let bound = plan.bind_stage(idx, &st.graph, &shape.values, &st.config);
                        st.stats.planner += t1.elapsed();
                        if let Some(c1) = c1 {
                            planner_cpu +=
                                crate::cputime::cpu_elapsed(c1, crate::cputime::thread_cpu_now());
                        }
                        match bound {
                            Ok(stage) => {
                                if let Err(e) = execute_locked(st, &stage, trace.as_ref(), deferred)
                                {
                                    // Execution failures poison the
                                    // context either way; drop the entry
                                    // so the next identical request
                                    // replans instead of replaying.
                                    cache.invalidate(shape.fingerprint);
                                    cache.note_miss();
                                    return Err(e);
                                }
                            }
                            Err(_) => {
                                // Bind-time validation failed (shape
                                // drifted under an identical
                                // fingerprint): invalidate and fall back
                                // to fresh planning — always sound,
                                // since planning depends only on
                                // `graph.next_unplanned`.
                                cache.invalidate(shape.fingerprint);
                                replayed = false;
                                break;
                            }
                        }
                    }
                    if replayed {
                        cache.note_hit();
                    } else {
                        cache.note_miss();
                    }
                    if let Some(t) = &trace {
                        let kind = if replayed {
                            SpanKind::PlanCacheHit
                        } else {
                            SpanKind::PlanCacheMiss
                        };
                        t.emit(kind, SERVICE_WORKER, 0, 0, t.recorder.now_ns(), 0, 0);
                    }
                }
                _ => {
                    cache.note_miss();
                    if let Some(t) = &trace {
                        t.emit(
                            SpanKind::PlanCacheMiss,
                            SERVICE_WORKER,
                            0,
                            0,
                            t.recorder.now_ns(),
                            0,
                            0,
                        );
                    }
                    recorder = Some(PlanRecorder::new(&shape));
                }
            }
        }
    }

    while !st.graph.fully_executed() {
        let t1 = Instant::now();
        let c1 = trace.as_ref().map(|_| crate::cputime::thread_cpu_now());
        // The planner takes the graph mutably (for the split-form
        // materialization fallback) next to the config and the
        // fallback counter — disjoint fields of `st`.
        let plan = plan_next_stage(
            &mut st.graph,
            &st.config,
            &mut st.stats.split_form_fallbacks,
        );
        st.stats.planner += t1.elapsed();
        if let Some(c1) = c1 {
            planner_cpu += crate::cputime::cpu_elapsed(c1, crate::cputime::thread_cpu_now());
        }
        let stage = match plan {
            Ok(Some(stage)) => stage,
            Ok(None) => break,
            Err(e) => {
                st.poisoned = Some(e.clone());
                return Err(e);
            }
        };
        if let Some(r) = &mut recorder {
            r.record(&stage, &st.graph);
        }
        execute_locked(st, &stage, trace.as_ref(), deferred)?;
    }
    if let (Some(cache), Some(recorder)) = (cache, recorder) {
        let fingerprint = recorder.fingerprint();
        if let Some(plan) = recorder.finish() {
            cache.insert(fingerprint, plan);
        }
    }
    // One accumulated planner span per evaluation (fingerprinting, stage
    // planning, plan binding), anchored at evaluation start.
    if let (Some(t), Some(start)) = (&trace, eval_start_ns) {
        t.emit(
            SpanKind::Planner,
            SERVICE_WORKER,
            0,
            0,
            start,
            duration_ns(st.stats.planner.saturating_sub(planner_before)),
            duration_ns(planner_cpu),
        );
    }
    Ok(())
}

/// Saturating `Duration -> u64` nanoseconds for span fields.
fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Execute one planned stage against the locked state, poisoning the
/// context on failure.
fn execute_locked(
    st: &mut State,
    stage: &crate::planner::StagePlan,
    trace: Option<&TraceCtx>,
    deferred: &mut Vec<DeferredMerge>,
) -> Result<()> {
    // Borrow split: executor needs &mut graph + &config + &mut stats.
    let State {
        graph,
        config,
        stats,
        pool,
        attached_pool,
        session_tag,
        cancel,
        ..
    } = st;
    // Layer-2 static check: prove the plan sound before anything
    // executes. This single site covers both fresh plans and
    // plan-cache replay binds — both funnel through here.
    if config.verify_plans {
        if let Err(v) = crate::verify::verify_stage(graph, stage, config) {
            let e = Error::Verify(v);
            st.poisoned = Some(e.clone());
            return Err(e);
        }
        stats.plans_verified += 1;
    }
    let pool = attached_pool.as_ref().or(pool.as_ref()).map(|h| &**h);
    if let Err(e) = execute_stage(
        graph,
        stage,
        config,
        stats,
        pool,
        *session_tag,
        cancel.as_ref(),
        trace,
        deferred,
    ) {
        st.poisoned = Some(e.clone());
        return Err(e);
    }
    Ok(())
}

/// An untyped lazy result handle (the paper's `Future<T>` before
/// typing). Holding it keeps the result observable; dropping every
/// handle lets the runtime discard the value if no later call reads it.
pub struct FutureHandle {
    ctx: MozartContext,
    value: ValueId,
    _token: Arc<FutureToken>,
}

impl std::fmt::Debug for FutureHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FutureHandle(ctx={}, v={})", self.ctx.id(), self.value.0)
    }
}

impl FutureHandle {
    /// The lazy value, usable as an argument to further annotated calls
    /// (pipelineable). Keep the handle alive until evaluation if you also
    /// want to read the result yourself.
    pub fn as_value(&self) -> DataValue {
        DataValue::Lazy {
            ctx_id: self.ctx.id(),
            value: self.value,
        }
    }

    /// Force evaluation and return the materialized value.
    pub fn get(&self) -> Result<DataValue> {
        self.ctx.force_value(self.value)
    }

    /// The graph value this future refers to.
    pub fn value_id(&self) -> ValueId {
        self.value
    }

    /// Add a concrete result type.
    pub fn typed<T: DataObject + Clone>(self) -> Future<T> {
        Future {
            raw: self,
            _pd: PhantomData,
        }
    }
}

/// A typed lazy result handle.
pub struct Future<T: DataObject + Clone> {
    raw: FutureHandle,
    _pd: PhantomData<fn() -> T>,
}

impl<T: DataObject + Clone> Future<T> {
    /// Force evaluation and return a clone of the result (clones of
    /// library values are cheap `Arc`-backed handles).
    pub fn get(&self) -> Result<T> {
        let dv = self.raw.get()?;
        dv.downcast_ref::<T>().cloned().ok_or(Error::ArgType {
            function: "Future::get",
            arg: 0,
            expected: std::any::type_name::<T>(),
            actual: dv.type_name(),
        })
    }

    /// The lazy value, usable as an argument to further annotated calls.
    pub fn as_value(&self) -> DataValue {
        self.raw.as_value()
    }

    /// The untyped handle.
    pub fn raw(&self) -> &FutureHandle {
        &self.raw
    }
}
