//! Process-wide memory governance for Mozart buffers.
//!
//! The paper's thesis is that memory traffic — not compute — is the
//! bottleneck, and the serving layer's failure mode under production
//! load is memory exhaustion, not CPU saturation. This module meters
//! every [`SharedVec`](crate::SharedVec) allocation against one
//! process-global byte ceiling so the service front-end can *shed*
//! requests before they allocate instead of letting the allocator (or
//! the OOM killer) decide for it.
//!
//! The accounting is intentionally simple and exact:
//!
//! * every `SharedVec` allocation adds `len * size_of::<T>()` to a
//!   global live-byte counter at construction and subtracts it when the
//!   last reference drops (split pieces are views and allocate
//!   nothing; placement-merge targets and coalesce concatenations are
//!   ordinary `SharedVec` allocations and are therefore metered too);
//! * a ceiling of `0` (the default) disables enforcement but keeps the
//!   live counter running, so observability is free even when
//!   governance is off;
//! * *pressure* is a softer signal than the ceiling: once live bytes
//!   cross [`PRESSURE_NUM`]/[`PRESSURE_DEN`] of the ceiling, callers
//!   that can degrade gracefully (the request coalescer, batch sizing)
//!   should decline optional growth while required allocations still
//!   proceed until the hard ceiling.
//!
//! The counters are relaxed atomics: admission decisions tolerate a
//! stale-by-one-allocation view, and the executor never blocks on them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live metered bytes across the whole process.
static LIVE: AtomicU64 = AtomicU64::new(0);

/// Hard ceiling in bytes; `0` disables enforcement.
static CEILING: AtomicU64 = AtomicU64::new(0);

/// Total bytes ever metered (monotone; for rate observability).
static TOTAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Numerator of the pressure threshold fraction.
pub const PRESSURE_NUM: u64 = 7;
/// Denominator of the pressure threshold fraction.
pub const PRESSURE_DEN: u64 = 8;

/// Record `bytes` of freshly allocated buffer memory.
///
/// Called by the [`SharedVec`](crate::SharedVec) constructors; not
/// intended for user code.
#[inline]
pub fn note_alloc(bytes: usize) {
    if bytes == 0 {
        return;
    }
    LIVE.fetch_add(bytes as u64, Ordering::Relaxed);
    TOTAL_ALLOCATED.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Record `bytes` of buffer memory released.
#[inline]
pub fn note_free(bytes: usize) {
    if bytes == 0 {
        return;
    }
    LIVE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// Currently live metered bytes.
#[inline]
pub fn live_bytes() -> u64 {
    LIVE.load(Ordering::Relaxed)
}

/// Total bytes ever metered (monotone counter).
#[inline]
pub fn total_allocated_bytes() -> u64 {
    TOTAL_ALLOCATED.load(Ordering::Relaxed)
}

/// Current hard ceiling in bytes (`0` = unlimited).
#[inline]
pub fn ceiling_bytes() -> u64 {
    CEILING.load(Ordering::Relaxed)
}

/// Install a process-wide hard ceiling (`0` disables enforcement).
///
/// The ceiling is advisory *placement*: it does not fail allocations
/// (a mid-pipeline allocation failure would strand partial state);
/// instead admission layers consult [`would_exceed`] before accepting
/// work whose estimated footprint does not fit.
pub fn set_ceiling(bytes: u64) {
    CEILING.store(bytes, Ordering::Relaxed);
}

/// Whether admitting an additional `estimate` bytes would exceed the
/// ceiling. Always `false` when no ceiling is set.
#[inline]
pub fn would_exceed(estimate: u64) -> bool {
    let ceiling = ceiling_bytes();
    ceiling != 0 && live_bytes().saturating_add(estimate) > ceiling
}

/// Whether the process is under memory *pressure*: live bytes at or
/// above [`PRESSURE_NUM`]/[`PRESSURE_DEN`] of the ceiling. Always
/// `false` when no ceiling is set.
///
/// Pressure is the degrade-gracefully signal: the request coalescer
/// declines batch growth (serving members individually instead), and
/// optional prefetch/batching layers should shrink, while already
/// admitted work runs to completion.
#[inline]
pub fn pressured() -> bool {
    let ceiling = ceiling_bytes();
    ceiling != 0
        && live_bytes().saturating_mul(PRESSURE_DEN) >= ceiling.saturating_mul(PRESSURE_NUM)
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these tests share process-global state with every other
    // test in the binary; they only assert *relative* movement and
    // restore the ceiling to 0, so concurrent SharedVec traffic from
    // other tests cannot fail them.

    #[test]
    fn alloc_free_roundtrip() {
        let before = live_bytes();
        note_alloc(4096);
        assert!(live_bytes() >= before + 4096);
        note_free(4096);
    }

    #[test]
    fn ceiling_disabled_by_zero() {
        assert!(!would_exceed(u64::MAX / 2) || ceiling_bytes() != 0);
    }

    #[test]
    fn total_is_monotone() {
        let a = total_allocated_bytes();
        note_alloc(128);
        let b = total_allocated_bytes();
        assert!(b >= a + 128);
        note_free(128);
        assert!(total_allocated_bytes() >= b);
    }
}
