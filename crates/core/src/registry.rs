//! Default split type registry (§5.1).
//!
//! When type inference cannot resolve a generic split type (e.g. every
//! function in a pipeline is generic), Mozart "falls back to a default
//! for the data type: annotators provide a default split type constructor
//! per data type". Integration crates register their defaults here.

use std::any::TypeId;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::annotation::Annotation;
use crate::error::{Error, Result};
use crate::split::{SplitInstance, Splitter};
use crate::value::{DataObject, DataValue};

static REGISTRY: RwLock<Option<HashMap<TypeId, Arc<dyn Splitter>>>> = RwLock::new(None);

static ANNOTATIONS: RwLock<Vec<Arc<Annotation>>> = RwLock::new(Vec::new());

/// Register `splitter` as the default split type for data type `T`.
///
/// Later registrations for the same type replace earlier ones (so tests
/// can override defaults).
pub fn register_default_splitter<T: DataObject>(splitter: Arc<dyn Splitter>) {
    let mut guard = REGISTRY.write();
    guard
        .get_or_insert_with(HashMap::new)
        .insert(TypeId::of::<T>(), splitter);
}

/// Look up the default splitter for a value's concrete type.
pub fn default_splitter_for(value: &DataValue) -> Option<Arc<dyn Splitter>> {
    let type_id = match value {
        DataValue::Data(d) => d.as_any().type_id(),
        DataValue::Lazy { .. } => return None,
    };
    REGISTRY.read().as_ref()?.get(&type_id).cloned()
}

/// Register an annotation with the global annotation registry so
/// static tooling (the `mozart-check` binary, the annotation layer of
/// [`crate::verify`]) can walk every builtin annotation without
/// executing a workload. Integration crates call this from their
/// `register_defaults()` alongside their default-splitter
/// registrations. Registering the same annotation (by `Arc` identity)
/// twice is a no-op.
pub fn register_annotation(annot: Arc<Annotation>) {
    let mut guard = ANNOTATIONS.write();
    if !guard.iter().any(|a| Arc::ptr_eq(a, &annot)) {
        guard.push(annot);
    }
}

/// Every annotation registered via [`register_annotation`], in
/// registration order.
pub fn registered_annotations() -> Vec<Arc<Annotation>> {
    ANNOTATIONS.read().clone()
}

/// Build the default split instance for a value, constructing the
/// splitter's parameters directly from the value.
pub fn default_instance_for(value: &DataValue) -> Result<SplitInstance> {
    let splitter = default_splitter_for(value).ok_or(Error::NoDefaultSplit {
        type_name: value.type_name(),
    })?;
    let params = splitter.default_params(value)?;
    Ok(SplitInstance::new(splitter, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SizeSplit;
    use crate::value::IntValue;

    #[test]
    fn register_and_lookup_default() {
        register_default_splitter::<IntValue>(Arc::new(SizeSplit));
        let v = DataValue::new(IntValue(12));
        let inst = default_instance_for(&v).unwrap();
        assert_eq!(inst.splitter.name(), "SizeSplit");
        assert_eq!(inst.params, vec![12]);
    }

    #[test]
    fn missing_default_is_an_error() {
        let v = DataValue::new(crate::value::BoolValue(true));
        match default_instance_for(&v) {
            Err(Error::NoDefaultSplit { type_name }) => {
                assert_eq!(type_name, "BoolValue")
            }
            other => panic!("expected NoDefaultSplit, got {other:?}"),
        }
    }
}
