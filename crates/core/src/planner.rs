//! The planner: converting a dataflow graph into stages (§5.1).
//!
//! Two consecutive functions belong to the same stage iff every value
//! passed between them has the same split type. Generic split types are
//! resolved by pushing known types along the graph's edges (local type
//! inference); generics that remain unbound fall back to the data type's
//! registered default split type. `unknown` return types produce fresh
//! unique instances, so they never pipeline into other split values but
//! still flow into generic arguments.
//!
//! Planning is interleaved with execution: the planner plans one stage,
//! the executor runs it, then the planner continues. This is how split
//! type constructors can depend on values produced by earlier stages
//! (e.g. the length of a filtered table): by the time the consuming
//! stage is planned, the value is materialized.
//!
//! # The split-form rewrite
//!
//! When a stage's return output would be merged only for later stages
//! to immediately re-split it under the same split type, the merge and
//! the re-split are pure memory traffic — exactly the movement the
//! paper targets. `finish_stage` (and `CachedPlan::bind_stage` on
//! replays) rewrites such `Merge` outputs to [`OutputKind::SplitForm`]:
//! the executor keeps the worker-produced piece set
//! ([`crate::split::SplitForm`]) on the value, and when a later stage
//! binds the value as a split input, `try_add` accepts the split form
//! directly (`check_use` matches the held type; unbound generics bind
//! to it; stage totals come from the form). The rewrite **declines** —
//! the output merges classically — when any of these holds:
//! `Config::split_form` is off; the value is user-visible (a live
//! `Future` could observe it) or not consumed later at all; the split
//! type is `unknown`, terminal, not concatenation-shaped, or lacks a
//! [`Concat`](crate::split::Concat) capability; or some consumer needs
//! the value whole (a broadcast/`_` position, a mut argument, a
//! split-type constructor argument) or under a different split type.
//! Mispredictions are safe, not just rare: a node that cannot be
//! scheduled over a split-form value falls back to materializing it
//! through the classic merge ([`DataflowGraph::materialize_split_form`],
//! counted as `split_form_fallbacks`) and is retried.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::annotation::{GenericId, SplitTypeExpr};
use crate::config::Config;
use crate::error::{Error, Result};
use crate::graph::{DataflowGraph, NodeId, SegmentShape, ValueId};
use crate::registry::default_instance_for;
use crate::split::SplitInstance;
use crate::value::DataValue;

/// How a merged stage output is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// Collect the pieces each batch produced and merge them.
    Merge,
    /// The output aliases storage mutated in place; nothing to merge.
    InPlace,
    /// The output is not observable (dead intermediate); drop the pieces.
    Discard,
    /// The output is consumed only by later stages that re-split it
    /// under the same split type: keep the worker-produced pieces as a
    /// [`crate::split::SplitForm`] on the value and elide the merge
    /// (and the consumer's re-split). See the module docs for the
    /// rewrite rule and `Config::split_form` for the gate.
    SplitForm,
}

/// One value a stage produces.
#[derive(Clone)]
pub struct StageOutput {
    /// The produced value.
    pub value: ValueId,
    /// Its split type (used to merge).
    pub instance: SplitInstance,
    /// How to materialize it.
    pub kind: OutputKind,
    /// `true` when no unexecuted node outside this stage consumes the
    /// value — it is only observable through a user-held `Future`. The
    /// executor may then defer the final merge (dispatch it to the pool
    /// and overlap it with planning/executing subsequent stages): no
    /// later stage can need the merged value before evaluation returns.
    pub last_use: bool,
}

/// An executable stage: an ordered run of pipelinable calls.
pub struct StagePlan {
    /// Nodes in pipeline order.
    pub nodes: Vec<NodeId>,
    /// Stage inputs: materialized values split per batch.
    pub inputs: Vec<(ValueId, SplitInstance)>,
    /// Materialized values passed whole to every batch (`_` split type).
    pub broadcast: Vec<ValueId>,
    /// Values the stage produces.
    pub outputs: Vec<StageOutput>,
    /// Dense slot index per stage-local value, assigned at plan time so
    /// the executor's driver loop addresses values by array offset
    /// instead of hashing `ValueId`s per batch (§5.2 overhead work).
    pub slots: HashMap<ValueId, u32>,
    /// Number of slots (`slots` maps into `0..num_slots`).
    pub num_slots: u32,
}

impl StagePlan {
    /// Slot of a stage-local value. Panics on values the planner never
    /// assigned, which would be a planning bug.
    pub fn slot_of(&self, value: ValueId) -> u32 {
        *self
            .slots
            .get(&value)
            .unwrap_or_else(|| panic!("value v{} has no stage slot", value.0))
    }
}

/// Incremental state while growing a stage.
struct StageBuilder {
    nodes: Vec<NodeId>,
    node_set: HashSet<NodeId>,
    /// Required split type per stage input value.
    input_types: HashMap<ValueId, SplitInstance>,
    input_order: Vec<ValueId>,
    broadcast: HashSet<ValueId>,
    broadcast_order: Vec<ValueId>,
    /// Split types of values produced within the stage (rets and
    /// in-place mut versions).
    produced: HashMap<ValueId, SplitInstance>,
    /// Total element count the stage's split inputs agreed on, once any
    /// split input exists. All split functions of a stage must produce
    /// the same number of splits (§3.4), so a call whose inputs have a
    /// different total cannot join the stage.
    total_elements: Option<u64>,
}

impl StageBuilder {
    fn new() -> Self {
        StageBuilder {
            nodes: Vec::new(),
            node_set: HashSet::new(),
            input_types: HashMap::new(),
            input_order: Vec::new(),
            broadcast: HashSet::new(),
            broadcast_order: Vec::new(),
            produced: HashMap::new(),
            total_elements: None,
        }
    }

    fn known_type(&self, v: ValueId) -> Option<&SplitInstance> {
        self.produced.get(&v).or_else(|| self.input_types.get(&v))
    }
}

/// Result of attempting to add one node to the stage being built.
enum AddOutcome {
    /// The node joined the stage.
    Added,
    /// The node's split types are incompatible with the current stage;
    /// it must start the next stage.
    Incompatible,
}

/// Plan the next stage starting at `graph.next_unplanned`.
///
/// Returns `None` when there are no pending nodes. Takes the graph
/// mutably for one reason only: a node that cannot be scheduled even in
/// a fresh stage over split-form values falls back to materializing
/// them (the classic merge, counted into `fallbacks`) and is retried —
/// the split-form rewrite is an optimization, never a scheduling
/// constraint.
pub fn plan_next_stage(
    graph: &mut DataflowGraph,
    config: &Config,
    fallbacks: &mut u64,
) -> Result<Option<StagePlan>> {
    if graph.fully_executed() {
        return Ok(None);
    }
    let mut b = StageBuilder::new();
    let mut cursor = graph.next_unplanned;
    while cursor < graph.nodes.len() {
        let node_id = NodeId(cursor as u32);
        let mut outcome = try_add(graph, &mut b, node_id)?;
        if matches!(outcome, AddOutcome::Incompatible)
            && b.nodes.is_empty()
            && materialize_node_split_forms(graph, node_id, fallbacks)?
        {
            // The node may have been unschedulable only because an
            // input was held in split form (e.g. needed whole, or
            // under an incompatible type); with the inputs
            // materialized, try once more.
            outcome = try_add(graph, &mut b, node_id)?;
        }
        match outcome {
            AddOutcome::Added => {
                cursor += 1;
                if !config.pipeline {
                    break; // "-pipe" ablation: one function per stage.
                }
            }
            AddOutcome::Incompatible => {
                if b.nodes.is_empty() {
                    // A single node must always be schedulable by itself;
                    // reaching this indicates a broken annotation.
                    return Err(Error::Pedantic(format!(
                        "node {} cannot be scheduled even in a fresh stage",
                        graph.nodes[cursor].annot.name
                    )));
                }
                break;
            }
        }
    }
    Ok(Some(finish_stage(graph, b, config)))
}

/// Materialize every split-form value `node_id` references, returning
/// whether any merge actually ran (and counting each into `fallbacks`).
fn materialize_node_split_forms(
    graph: &mut DataflowGraph,
    node_id: NodeId,
    fallbacks: &mut u64,
) -> Result<bool> {
    let args = graph.nodes[node_id.0 as usize].args.clone();
    let mut any = false;
    for vid in args {
        if graph.materialize_split_form(vid)? {
            *fallbacks += 1;
            any = true;
        }
    }
    Ok(any)
}

/// Attempt to add `node_id` to the stage; on success, commits the node's
/// argument and output types to the builder.
fn try_add(graph: &DataflowGraph, b: &mut StageBuilder, node_id: NodeId) -> Result<AddOutcome> {
    let node = &graph.nodes[node_id.0 as usize];
    let annot = &node.annot;

    let mut bindings: HashMap<GenericId, SplitInstance> = HashMap::new();

    // Pass 1: bind generics from types already flowing into this node —
    // types produced or bound within the stage, and the held types of
    // split-form values arriving from earlier stages.
    for (i, spec) in annot.args.iter().enumerate() {
        if let SplitTypeExpr::Generic(g) = &spec.ty {
            let vid = node.args[i];
            let known = b
                .known_type(vid)
                .or_else(|| graph.split_form(vid).map(|sf| sf.instance()));
            if let Some(t) = known {
                if t.terminal() {
                    // Partial results (reductions) must merge first.
                    return Ok(AddOutcome::Incompatible);
                }
                match bindings.get(g) {
                    None => {
                        let t = t.clone();
                        bindings.insert(*g, t);
                    }
                    Some(existing) if existing.same_type(t) => {}
                    Some(_) => return Ok(AddOutcome::Incompatible),
                }
            }
        }
    }

    // Pass 2: resolve every argument, staging changes so an incompatible
    // node leaves the builder untouched.
    let mut new_inputs: Vec<(ValueId, SplitInstance)> = Vec::new();
    let mut new_broadcast: Vec<ValueId> = Vec::new();
    let mut arg_instances: Vec<Option<SplitInstance>> = Vec::with_capacity(annot.args.len());

    // Classify a value use against the current stage + staged changes.
    let check_use = |b: &StageBuilder,
                     new_inputs: &mut Vec<(ValueId, SplitInstance)>,
                     vid: ValueId,
                     required: &SplitInstance|
     -> Result<bool> {
        if let Some(t) = b.known_type(vid) {
            // Partial results (reductions) must merge before use.
            return Ok(!t.terminal() && t.same_type(required));
        }
        if let Some((_, t)) = new_inputs.iter().find(|(v, _)| *v == vid) {
            return Ok(t.same_type(required));
        }
        if b.broadcast.contains(&vid) {
            // Used both whole and split within one stage: not pipelinable.
            return Ok(false);
        }
        // A split-form value is a valid fresh input when the required
        // type matches the form it is held in: the executor serves the
        // split phase straight from the pieces (no merge, no re-split).
        if let Some(sf) = graph.split_form(vid) {
            if sf.instance().same_type(required) {
                new_inputs.push((vid, required.clone()));
                return Ok(true);
            }
            return Ok(false);
        }
        // A fresh stage input must be materialized.
        if graph.value_data(vid).is_none() {
            return Ok(false);
        }
        new_inputs.push((vid, required.clone()));
        Ok(true)
    };

    for (i, spec) in annot.args.iter().enumerate() {
        let vid = node.args[i];
        match &spec.ty {
            SplitTypeExpr::Missing => {
                if b.produced.contains_key(&vid) {
                    // Produced inside the stage but needed whole: the
                    // producer must merge first.
                    return Ok(AddOutcome::Incompatible);
                }
                if b.input_types.contains_key(&vid) || new_inputs.iter().any(|(v, _)| *v == vid) {
                    // Split for another function but needed whole here.
                    return Ok(AddOutcome::Incompatible);
                }
                if graph.value_data(vid).is_none() {
                    return Ok(AddOutcome::Incompatible);
                }
                if !b.broadcast.contains(&vid) && !new_broadcast.contains(&vid) {
                    new_broadcast.push(vid);
                }
                arg_instances.push(None);
            }
            SplitTypeExpr::Concrete {
                splitter,
                ctor_args,
            } => {
                let inst =
                    match construct_instance(graph, node.args.as_slice(), splitter, ctor_args)? {
                        Some(i) => i,
                        None => return Ok(AddOutcome::Incompatible),
                    };
                if !check_use(b, &mut new_inputs, vid, &inst)? {
                    return Ok(AddOutcome::Incompatible);
                }
                arg_instances.push(Some(inst));
            }
            SplitTypeExpr::Generic(g) => {
                let inst = match bindings.get(g) {
                    Some(t) => t.clone(),
                    None => {
                        // Unbound generic: default split for the data type
                        // (§5.1). The value must be materialized.
                        let data = match graph.value_data(vid) {
                            Some(d) => d.clone(),
                            None => return Ok(AddOutcome::Incompatible),
                        };
                        let t = default_instance_for(&data)?;
                        bindings.insert(*g, t.clone());
                        t
                    }
                };
                if !check_use(b, &mut new_inputs, vid, &inst)? {
                    return Ok(AddOutcome::Incompatible);
                }
                arg_instances.push(Some(inst));
            }
            SplitTypeExpr::Unknown { .. } => {
                return Err(Error::Pedantic(format!(
                    "{}: `unknown` is only valid in return position",
                    annot.name
                )));
            }
        }
    }

    // Resolve the return type.
    let ret_instance = match (&annot.ret, node.ret) {
        (Some(expr), Some(_)) => Some(match expr {
            SplitTypeExpr::Concrete {
                splitter,
                ctor_args,
            } => match construct_instance(graph, node.args.as_slice(), splitter, ctor_args)? {
                Some(i) => i,
                None => return Ok(AddOutcome::Incompatible),
            },
            SplitTypeExpr::Generic(g) => match bindings.get(g) {
                Some(t) => t.clone(),
                None => {
                    return Err(Error::Pedantic(format!(
                        "{}: return generic S{g} is not bound by any argument",
                        annot.name
                    )))
                }
            },
            SplitTypeExpr::Unknown { merger } => SplitInstance::fresh_unknown(merger.clone()),
            SplitTypeExpr::Missing => {
                return Err(Error::Pedantic(format!(
                    "{}: return value cannot have the missing split type",
                    annot.name
                )))
            }
        }),
        (None, None) => None,
        _ => {
            return Err(Error::Pedantic(format!(
                "{}: annotation and node disagree on return value",
                annot.name
            )))
        }
    };

    // All split inputs of a stage must agree on the number of elements;
    // otherwise their split functions would produce different numbers of
    // splits (§3.4) and the pipeline would be ill-formed.
    let mut total = b.total_elements;
    for (vid, inst) in &new_inputs {
        // Split-form inputs carry their element total on the hand-off;
        // materialized inputs report it through the split info API.
        let input_total = if let Some(sf) = graph.split_form(*vid) {
            sf.total()
        } else {
            let data = match graph.captured_data(*vid) {
                Some(d) => d,
                None => return Ok(AddOutcome::Incompatible),
            };
            inst.splitter.info(data, &inst.params)?.total_elements
        };
        match total {
            None => total = Some(input_total),
            Some(t) if t == input_total => {}
            Some(_) => return Ok(AddOutcome::Incompatible),
        }
    }

    // Commit.
    b.total_elements = total;
    for (vid, inst) in new_inputs {
        b.input_types.insert(vid, inst);
        b.input_order.push(vid);
    }
    for vid in new_broadcast {
        b.broadcast.insert(vid);
        b.broadcast_order.push(vid);
    }
    for (i, inst) in arg_instances.iter().enumerate() {
        if let (Some(mv), Some(inst)) = (node.mut_out[i], inst) {
            b.produced.insert(mv, inst.clone());
        }
    }
    if let (Some(rv), Some(inst)) = (node.ret, ret_instance) {
        b.produced.insert(rv, inst);
    }
    b.nodes.push(node_id);
    b.node_set.insert(node_id);
    Ok(AddOutcome::Added)
}

/// Evaluate a split type constructor against materialized argument data.
///
/// Returns `Ok(None)` when a constructor argument is not yet materialized
/// (the node must wait for the next stage).
fn construct_instance(
    graph: &DataflowGraph,
    node_args: &[ValueId],
    splitter: &std::sync::Arc<dyn crate::split::Splitter>,
    ctor_args: &[usize],
) -> Result<Option<SplitInstance>> {
    let mut datas: Vec<DataValue> = Vec::with_capacity(ctor_args.len());
    for &idx in ctor_args {
        let vid = node_args
            .get(idx)
            .copied()
            .ok_or_else(|| Error::Constructor {
                split_type: splitter.name(),
                message: format!("constructor references argument {idx} beyond arity"),
            })?;
        match graph.captured_data(vid) {
            Some(d) => datas.push(d.clone()),
            None => return Ok(None),
        }
    }
    let refs: Vec<&DataValue> = datas.iter().collect();
    let params = splitter.construct(&refs)?;
    Ok(Some(SplitInstance::new(splitter.clone(), params)))
}

/// Decide whether a would-be `Merge` output may instead be handed to
/// its consumers in split form (see the module docs for the full rule).
///
/// The caller has already established the value is consumed by a later
/// node and not user-visible. This check is a *prediction* about how
/// those consumers will bind the value — a wrong prediction is safe
/// (the consumer falls back to materializing through the classic
/// merge), so it only needs to be right in the common case, but every
/// condition that makes the hand-off *impossible* (no concat
/// capability, terminal/unknown pieces) must be checked here.
fn split_form_eligible(
    graph: &DataflowGraph,
    node_set: &HashSet<NodeId>,
    value: ValueId,
    inst: &SplitInstance,
    config: &Config,
) -> bool {
    if !config.split_form || inst.is_unknown() || inst.terminal() {
        return false;
    }
    if inst.split_form_concat().is_none() {
        return false;
    }
    let entry = &graph.values[value.0 as usize];
    for &c in &entry.consumers {
        let node = &graph.nodes[c.0 as usize];
        if node.executed || node_set.contains(&c) {
            continue;
        }
        // Every outside use must be a non-mutable split argument whose
        // declared type can line up with the held form: a generic (it
        // will bind to the held type) or a concrete expression of the
        // same split type.
        for (i, spec) in node.annot.args.iter().enumerate() {
            if node.args[i] != value {
                continue;
            }
            if spec.mutable {
                return false;
            }
            match &spec.ty {
                SplitTypeExpr::Generic(_) => {}
                SplitTypeExpr::Concrete { splitter, .. }
                    if splitter.name() == inst.splitter.name() => {}
                _ => return false,
            }
        }
        // Split type constructors inspect whole values (§3.2), so the
        // value must not feed any constructor argument of the consumer.
        let feeds_ctor = |expr: &SplitTypeExpr| match expr {
            SplitTypeExpr::Concrete { ctor_args, .. } => ctor_args
                .iter()
                .any(|&idx| node.args.get(idx) == Some(&value)),
            _ => false,
        };
        if node.annot.args.iter().any(|s| feeds_ctor(&s.ty))
            || node.annot.ret.as_ref().is_some_and(feeds_ctor)
        {
            return false;
        }
    }
    true
}

/// Close the stage: compute its outputs and their merge plans.
fn finish_stage(graph: &DataflowGraph, b: StageBuilder, config: &Config) -> StagePlan {
    let mut outputs = Vec::new();
    for &node_id in &b.nodes {
        let node = &graph.nodes[node_id.0 as usize];
        for mv in node.mut_out.iter().flatten() {
            if let Some(inst) = b.produced.get(mv) {
                outputs.push(StageOutput {
                    value: *mv,
                    instance: inst.clone(),
                    kind: OutputKind::InPlace,
                    last_use: false,
                });
            }
        }
        if let Some(rv) = node.ret {
            let inst = b.produced.get(&rv).expect("ret type was committed").clone();
            let entry = &graph.values[rv.0 as usize];
            let consumed_later = entry
                .consumers
                .iter()
                .any(|c| !b.node_set.contains(c) && !graph.nodes[c.0 as usize].executed);
            let user_visible = entry
                .user_token
                .as_ref()
                .map(|w| w.strong_count() > 0)
                .unwrap_or(false);
            let kind = if consumed_later
                && !user_visible
                && split_form_eligible(graph, &b.node_set, rv, &inst, config)
            {
                OutputKind::SplitForm
            } else if consumed_later || user_visible {
                OutputKind::Merge
            } else {
                OutputKind::Discard
            };
            outputs.push(StageOutput {
                value: rv,
                instance: inst,
                kind,
                last_use: !consumed_later,
            });
        }
    }
    // Assign every stage-local value a dense slot: inputs and broadcast
    // values first (written per worker), then everything the nodes read
    // or produce. The executor indexes a flat `Vec` with these, keeping
    // hash lookups out of the per-batch driver loop.
    let mut slots: HashMap<ValueId, u32> = HashMap::new();
    let assign = |slots: &mut HashMap<ValueId, u32>, v: ValueId| {
        let next = slots.len() as u32;
        slots.entry(v).or_insert(next);
    };
    for v in &b.input_order {
        assign(&mut slots, *v);
    }
    for v in &b.broadcast_order {
        assign(&mut slots, *v);
    }
    for &node_id in &b.nodes {
        let node = &graph.nodes[node_id.0 as usize];
        for &a in &node.args {
            assign(&mut slots, a);
        }
        for mv in node.mut_out.iter().flatten() {
            assign(&mut slots, *mv);
        }
        if let Some(rv) = node.ret {
            assign(&mut slots, rv);
        }
    }
    let num_slots = slots.len() as u32;

    StagePlan {
        nodes: b.nodes,
        inputs: b
            .input_order
            .iter()
            .map(|v| (*v, b.input_types[v].clone()))
            .collect(),
        broadcast: b.broadcast_order,
        outputs,
        slots,
        num_slots,
    }
}

// ---------------------------------------------------------------------
// Plan cache: memoized stage skeletons keyed by graph fingerprint.
// ---------------------------------------------------------------------

/// One stage input as recorded in a cached plan.
struct CachedInput {
    /// Canonical value number (see [`DataflowGraph::pending_shape`]).
    value: u32,
    /// The split instance as planned in the recording run.
    instance: SplitInstance,
    /// Whether the instance's parameters can be re-derived from the
    /// bound value via [`crate::split::Splitter::default_params`]. Set
    /// at record time iff re-derivation reproduced the planned
    /// parameters, so replays rebind against *current* data where the
    /// splitter supports it and fall back to recorded parameters where
    /// it does not (e.g. `MatrixSplit`, whose dimensions come from
    /// scalar arguments that the fingerprint already pins).
    rederive: bool,
    /// Whether the input was bound *in split form* at record time. On
    /// replay the value must again be held in split form (the previous
    /// stage's bind re-applies the same rewrite, so this holds unless
    /// liveness changed) and the instance and element total are taken
    /// from the current [`crate::split::SplitForm`] — the split-form
    /// analogue of re-derivation. A mismatch in either direction fails
    /// the bind, invalidating the entry.
    split_form: bool,
}

/// One stage output as recorded in a cached plan. The Merge-vs-Discard
/// decision is *not* recorded: it depends on whether the application
/// still holds a `Future` for the value, which is re-evaluated at bind
/// time exactly like [`finish_stage`] does.
struct CachedOutput {
    value: u32,
    instance: SplitInstance,
    in_place: bool,
}

/// The memoized skeleton of one planned stage, with every value
/// reference rewritten to canonical numbers.
struct CachedStage {
    node_count: usize,
    inputs: Vec<CachedInput>,
    broadcast: Vec<u32>,
    outputs: Vec<CachedOutput>,
    slots: Vec<(u32, u32)>,
    num_slots: u32,
}

/// A fully recorded segment plan.
pub(crate) struct CachedPlan {
    stages: Vec<CachedStage>,
    /// Total nodes the stages consume; must equal the pending-node
    /// count of the graph being replayed (guards fingerprint
    /// collisions).
    pub(crate) nodes_total: usize,
}

/// Counters and size of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Evaluations fully replayed from a cached plan.
    pub hits: u64,
    /// Evaluations that planned from scratch (no entry, shape changed,
    /// or a replay failed validation mid-way).
    pub misses: u64,
    /// Entries dropped because replay validation rejected them.
    pub invalidations: u64,
    /// Plans currently cached.
    pub entries: usize,
}

impl PlanCacheStats {
    /// Fraction of evaluations served from cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shareable cache of planned stage skeletons, keyed by the
/// [fingerprint](DataflowGraph::pending_shape) of a graph's pending
/// segment.
///
/// Attach one cache to many contexts (`MozartContext::attach_plan_cache`)
/// — typically one per serving process — and repeated, structurally
/// identical pipelines skip split-type inference and stage grouping
/// entirely: the planner returns the memoized skeletons, re-binding only
/// the materialized values (and re-validating element counts before
/// anything executes). A shape change — different array lengths, a
/// different split type, a different call sequence — changes the
/// fingerprint, so stale plans are not replayed; entries that fail
/// bind-time validation are additionally invalidated eagerly.
///
/// Caching is refused (the segment simply plans fresh every time) when
/// a value's shape cannot be characterized (no default splitter, not a
/// known scalar) or when a planned split instance derives parameters
/// from values computed *inside* the evaluation that cannot be
/// re-derived from the bound data at replay time. Residual assumption:
/// a splitter whose `default_params` fails (e.g. matrix splits) must
/// take its constructor arguments from evaluation inputs — which the
/// fingerprint pins by value — not from computed intermediates attached
/// to a different input value.
pub struct PlanCache {
    entries: Mutex<HashMap<u64, std::sync::Arc<CachedPlan>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(256)
    }
}

impl PlanCache {
    /// Create a cache bounded to `capacity` plans. At capacity, an
    /// arbitrary entry is evicted per insertion.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: lock(&self.entries).len(),
        }
    }

    pub(crate) fn lookup(&self, fingerprint: u64) -> Option<std::sync::Arc<CachedPlan>> {
        lock(&self.entries).get(&fingerprint).cloned()
    }

    pub(crate) fn insert(&self, fingerprint: u64, plan: CachedPlan) {
        let mut entries = lock(&self.entries);
        if entries.len() >= self.capacity && !entries.contains_key(&fingerprint) {
            if let Some(&evict) = entries.keys().next() {
                entries.remove(&evict);
            }
        }
        entries.insert(fingerprint, std::sync::Arc::new(plan));
    }

    pub(crate) fn invalidate(&self, fingerprint: u64) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        lock(&self.entries).remove(&fingerprint);
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Records the stages of one freshly planned segment for insertion into
/// a [`PlanCache`].
pub(crate) struct PlanRecorder {
    fingerprint: u64,
    /// ValueId → canonical number, from the segment shape.
    numbering: HashMap<ValueId, u32>,
    /// ValueIds produced outside the segment (fingerprint-pinned).
    external: std::collections::HashSet<ValueId>,
    stages: Vec<CachedStage>,
    nodes_total: usize,
    /// Set if a stage referenced a value outside the canonical
    /// numbering, or planned a split instance whose parameters can
    /// neither be re-derived from data nor trusted across replays; the
    /// segment is then not recorded.
    poisoned: bool,
}

impl PlanRecorder {
    pub(crate) fn new(shape: &SegmentShape) -> PlanRecorder {
        PlanRecorder {
            fingerprint: shape.fingerprint,
            numbering: shape
                .values
                .iter()
                .enumerate()
                .map(|(c, v)| (*v, c as u32))
                .collect(),
            external: shape
                .values
                .iter()
                .zip(&shape.externals)
                .filter(|(_, &ext)| ext)
                .map(|(v, _)| *v)
                .collect(),
            stages: Vec::new(),
            nodes_total: 0,
            poisoned: false,
        }
    }

    pub(crate) fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Record one planned stage. `graph` supplies the data the planner
    /// bound, used to decide per input whether parameters are
    /// re-derivable at replay time.
    pub(crate) fn record(&mut self, plan: &StagePlan, graph: &DataflowGraph) {
        if self.poisoned {
            return;
        }
        let canon = |v: ValueId, poisoned: &mut bool| -> u32 {
            match self.numbering.get(&v) {
                Some(&c) => c,
                None => {
                    *poisoned = true;
                    0
                }
            }
        };
        let mut poisoned = false;
        let stage = CachedStage {
            node_count: plan.nodes.len(),
            inputs: plan
                .inputs
                .iter()
                .map(|(v, inst)| {
                    // Split-form inputs have no materialized data to
                    // re-derive from; their instance comes from the
                    // upstream hand-off at bind time, which replays
                    // re-create — they are cache-safe by construction.
                    let split_form = graph.split_form(*v).is_some();
                    let rederive = !split_form
                        && !inst.is_unknown()
                        && graph
                            .value_data(*v)
                            .and_then(|d| inst.splitter.default_params(d).ok())
                            .is_some_and(|p| p == inst.params);
                    // A non-re-derivable instance over a value computed
                    // *inside* the segment (the interleaved-planning
                    // case: constructor args depending on earlier
                    // stages' results) carries parameters the
                    // fingerprint does not pin — refuse to cache the
                    // segment rather than risk replaying stale params.
                    if !split_form && !rederive && !self.external.contains(v) {
                        poisoned = true;
                    }
                    CachedInput {
                        value: canon(*v, &mut poisoned),
                        instance: inst.clone(),
                        rederive,
                        split_form,
                    }
                })
                .collect(),
            broadcast: plan
                .broadcast
                .iter()
                .map(|v| canon(*v, &mut poisoned))
                .collect(),
            outputs: plan
                .outputs
                .iter()
                .map(|o| CachedOutput {
                    value: canon(o.value, &mut poisoned),
                    instance: o.instance.clone(),
                    in_place: o.kind == OutputKind::InPlace,
                })
                .collect(),
            slots: plan
                .slots
                .iter()
                .map(|(v, s)| (canon(*v, &mut poisoned), *s))
                .collect(),
            num_slots: plan.num_slots,
        };
        self.poisoned = poisoned;
        self.nodes_total += plan.nodes.len();
        self.stages.push(stage);
    }

    /// Finish recording; `None` if the segment turned out unrecordable.
    pub(crate) fn finish(self) -> Option<CachedPlan> {
        if self.poisoned {
            return None;
        }
        Some(CachedPlan {
            stages: self.stages,
            nodes_total: self.nodes_total,
        })
    }
}

impl CachedPlan {
    /// Number of cached stages.
    pub(crate) fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Bind cached stage `idx` against the current graph state,
    /// producing an executable [`StagePlan`].
    ///
    /// Validates before anything runs: every input and broadcast value
    /// must be materialized, re-derived split parameters must agree on
    /// one element total across the stage's inputs. Any failure returns
    /// an error — the caller invalidates the entry and falls back to
    /// fresh planning, which is always correct because planning only
    /// depends on the graph's `next_unplanned` state.
    pub(crate) fn bind_stage(
        &self,
        idx: usize,
        graph: &DataflowGraph,
        canon: &[ValueId],
        config: &Config,
    ) -> Result<StagePlan> {
        let cs = self.stages.get(idx).ok_or(Error::ValueUnavailable)?;
        let base = graph.next_unplanned;
        if base + cs.node_count > graph.nodes.len() {
            return Err(Error::ValueUnavailable);
        }
        let get = |c: u32| -> Result<ValueId> {
            canon
                .get(c as usize)
                .copied()
                .ok_or(Error::ValueUnavailable)
        };
        let nodes: Vec<NodeId> = (base..base + cs.node_count)
            .map(|i| NodeId(i as u32))
            .collect();
        let node_set: HashSet<NodeId> = nodes.iter().copied().collect();

        let mut total: Option<u64> = None;
        let mut inputs = Vec::with_capacity(cs.inputs.len());
        for ci in &cs.inputs {
            let vid = get(ci.value)?;
            if ci.split_form {
                // The value must again be held in split form under the
                // same split type; instance and total come from the
                // current hand-off. (If the previous stage's bind chose
                // to merge this time — e.g. liveness changed — the form
                // is absent and the replay is rejected.)
                let sf = graph.split_form(vid).ok_or(Error::ValueUnavailable)?;
                if sf.instance().splitter.name() != ci.instance.splitter.name() {
                    return Err(Error::ValueUnavailable);
                }
                match total {
                    None => total = Some(sf.total()),
                    Some(t) if t == sf.total() => {}
                    Some(t) => {
                        return Err(Error::ElementMismatch {
                            expected: t,
                            actual: sf.total(),
                        })
                    }
                }
                inputs.push((vid, sf.instance().clone()));
                continue;
            }
            let data = graph.value_data(vid).ok_or(Error::ValueUnavailable)?;
            let inst = if ci.rederive {
                match ci.instance.splitter.default_params(data) {
                    Ok(params) => SplitInstance::new(ci.instance.splitter.clone(), params),
                    Err(_) => ci.instance.clone(),
                }
            } else {
                ci.instance.clone()
            };
            let info = inst.splitter.info(data, &inst.params)?;
            match total {
                None => total = Some(info.total_elements),
                Some(t) if t == info.total_elements => {}
                Some(t) => {
                    return Err(Error::ElementMismatch {
                        expected: t,
                        actual: info.total_elements,
                    })
                }
            }
            inputs.push((vid, inst));
        }

        let mut broadcast = Vec::with_capacity(cs.broadcast.len());
        for c in &cs.broadcast {
            let vid = get(*c)?;
            graph.value_data(vid).ok_or(Error::ValueUnavailable)?;
            broadcast.push(vid);
        }

        let mut outputs = Vec::with_capacity(cs.outputs.len());
        for co in &cs.outputs {
            let vid = get(co.value)?;
            let (kind, last_use) = if co.in_place {
                (OutputKind::InPlace, false)
            } else {
                // Same liveness rule as `finish_stage`, re-evaluated so
                // dropped Futures still demote merges to discards.
                let entry = &graph.values[vid.0 as usize];
                let consumed_later = entry
                    .consumers
                    .iter()
                    .any(|c| !node_set.contains(c) && !graph.nodes[c.0 as usize].executed);
                let user_visible = entry
                    .user_token
                    .as_ref()
                    .map(|w| w.strong_count() > 0)
                    .unwrap_or(false);
                // Same rewrite rule as `finish_stage`, re-evaluated so
                // replayed skeletons preserve the split-form hand-off
                // (and demote it when liveness or config changed).
                let kind = if consumed_later
                    && !user_visible
                    && split_form_eligible(graph, &node_set, vid, &co.instance, config)
                {
                    OutputKind::SplitForm
                } else if consumed_later || user_visible {
                    OutputKind::Merge
                } else {
                    OutputKind::Discard
                };
                (kind, !consumed_later)
            };
            outputs.push(StageOutput {
                value: vid,
                instance: co.instance.clone(),
                kind,
                last_use,
            });
        }

        let mut slots = HashMap::with_capacity(cs.slots.len());
        for (c, s) in &cs.slots {
            slots.insert(get(*c)?, *s);
        }

        Ok(StagePlan {
            nodes,
            inputs,
            broadcast,
            outputs,
            slots,
            num_slots: cs.num_slots,
        })
    }
}
