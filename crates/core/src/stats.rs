//! Per-phase timing statistics, used to regenerate Figure 5 (system
//! overhead breakdown) of the paper.

use std::time::Duration;

/// Cumulative wall-clock time spent in each runtime phase.
///
/// Matches the phases reported in the paper's Figure 5: client library
/// (task registration), unprotect (clearing lazy-evaluation protection),
/// planner, split, task execution, and merge. Worker-parallel phases
/// (split/task/merge) report the *maximum* across workers per stage,
/// summed over stages, so the total approximates elapsed time on
/// dedicated cores. Worker phase windows are measured on the
/// per-thread CPU clock, not the wall clock: on an oversubscribed or
/// virtualized host a wall window would be charged for every
/// preemption and every tick of hypervisor steal landing inside it,
/// which misattributes scheduler noise to whichever phase happens to
/// have the most windows (see `crate::cputime`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Registering calls with the dataflow graph.
    pub client: Duration,
    /// Clearing protection flags at evaluation start.
    pub unprotect: Duration,
    /// Converting the dataflow graph into stages.
    pub planner: Duration,
    /// Running split functions.
    pub split: Duration,
    /// Running the library functions themselves.
    pub task: Duration,
    /// Running merge functions (worker-local and final).
    pub merge: Duration,
    /// Number of stages executed.
    pub stages: u64,
    /// Number of batches processed (summed over workers).
    pub batches: u64,
    /// Number of library function invocations (per piece).
    pub calls: u64,
    /// Result pieces written directly into a preallocated merge output
    /// by the placement fast path (see
    /// [`Placement::write_piece`](crate::split::Placement::write_piece)),
    /// instead of being collected and re-copied by a final merge.
    pub placement_writes: u64,
    /// Final merges dispatched to the worker pool and overlapped with
    /// planning/executing subsequent stages instead of running serially
    /// on the caller.
    pub overlapped_merges: u64,
    /// Nominal bytes split across all stages: per stage,
    /// `total_elements · Σ elem_size_bytes` over the split inputs as
    /// reported by the split info API. The cost signal serving layers
    /// meter per-session byte budgets against.
    pub bytes_split: u64,
    /// Nominal bytes materialized by merge outputs (placement,
    /// collected, and overlapped final merges), via the split info API
    /// on the merged value.
    pub bytes_merged: u64,
    /// Merge outputs handed to the next stage *in split form* — the
    /// merge (and the consuming stage's re-split) elided entirely (see
    /// [`SplitForm`](crate::split::SplitForm) and `Config::split_form`).
    pub split_form_handoffs: u64,
    /// Downstream batch ranges that did not line up with a hand-off
    /// piece boundary and were re-sliced through the
    /// [`Concat`](crate::split::Concat) capability. Zero when the
    /// consuming stage's batch size matches the producer's (the common
    /// case).
    pub split_form_reslices: u64,
    /// Split-form values that a consumer turned out to need whole after
    /// all and were materialized through the classic merge (the
    /// conservative fallback; correctness-neutral, performance-visible).
    pub split_form_fallbacks: u64,
    /// Stage plans statically verified before execution (see
    /// [`verify_stage`](crate::verify::verify_stage) and
    /// `Config::verify_plans`). Zero when verification is off.
    pub plans_verified: u64,
}

impl PhaseStats {
    /// Total accounted time.
    pub fn total(&self) -> Duration {
        self.client + self.unprotect + self.planner + self.split + self.task + self.merge
    }

    /// Merge another stats block into this one.
    pub fn accumulate(&mut self, other: &PhaseStats) {
        self.client += other.client;
        self.unprotect += other.unprotect;
        self.planner += other.planner;
        self.split += other.split;
        self.task += other.task;
        self.merge += other.merge;
        self.stages += other.stages;
        self.batches += other.batches;
        self.calls += other.calls;
        self.placement_writes += other.placement_writes;
        self.overlapped_merges += other.overlapped_merges;
        self.bytes_split += other.bytes_split;
        self.bytes_merged += other.bytes_merged;
        self.split_form_handoffs += other.split_form_handoffs;
        self.split_form_reslices += other.split_form_reslices;
        self.split_form_fallbacks += other.split_form_fallbacks;
        self.plans_verified += other.plans_verified;
    }

    /// Fraction of the accounted total spent in the merge phase
    /// (0 when nothing was measured) — the headline number of the
    /// `phase_breakdown` benchmark.
    pub fn merge_fraction(&self) -> f64 {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.merge.as_secs_f64() / t
        }
    }

    /// Percentage breakdown `(client, unprotect, planner, split, task,
    /// merge)` of the accounted total, for Figure 5-style reporting.
    pub fn percentages(&self) -> [f64; 6] {
        let t = self.total().as_secs_f64();
        if t == 0.0 {
            return [0.0; 6];
        }
        [
            self.client.as_secs_f64() / t * 100.0,
            self.unprotect.as_secs_f64() / t * 100.0,
            self.planner.as_secs_f64() / t * 100.0,
            self.split.as_secs_f64() / t * 100.0,
            self.task.as_secs_f64() / t * 100.0,
            self.merge.as_secs_f64() / t * 100.0,
        ]
    }
}

/// Per-session usage of a shared worker pool (see
/// [`crate::pool::PoolHandle`]).
///
/// Sessions are identified by the submitting context's session tag
/// (`MozartContext::set_session_tag`; defaults to the context id).
/// Comparing `batches` across sessions shows how pool capacity was
/// divided between concurrent clients — the fairness signal the serving
/// layer watches. The pool tracks a bounded number of tags; evicted
/// sessions' totals aggregate under
/// [`crate::pool::OVERFLOW_SESSION`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionPoolStats {
    /// The submitting context's session tag.
    pub session: u64,
    /// Pool jobs (multi-worker stages) this session submitted.
    pub jobs: u64,
    /// Batches processed on behalf of this session, summed over all
    /// participants of its jobs.
    pub batches: u64,
    /// Of [`SessionPoolStats::batches`], the batches served by *pool
    /// workers* — the submitting caller's own driver-loop share is
    /// excluded. This shows how the contended worker capacity was
    /// divided. (The scheduler's virtual clock charges *total* service,
    /// including self-served batches, so sessions that drain their own
    /// jobs yield pool assist to sessions that cannot; under sustained
    /// contention the worker-served split still tracks weights.)
    pub worker_batches: u64,
    /// Nominal bytes split by this session's pool jobs
    /// (`total_elements · Σ elem_size_bytes` per stage, from the split
    /// info API) — the cost signal behind per-session byte budgets.
    pub bytes: u64,
    /// Fair-share weight under deficit-weighted round-robin (see
    /// [`crate::pool::WorkerPool::set_session_weight`]); defaults to 1.
    pub weight: u32,
}

/// Counters of the persistent worker pool (see [`crate::pool`]),
/// observable through `MozartContext::pool_stats` and
/// [`crate::pool::PoolHandle::stats`].
///
/// These expose the scheduler behavior the Figure 5 overhead analysis
/// cares about: how often workers park/unpark between stages, how many
/// batches each worker claimed from the shared cursor, and how many of
/// those claims were *steals* — batches that static partitioning would
/// have assigned to a different worker. A healthy dynamic schedule on a
/// skewed workload shows nonzero steals and per-worker batch counts
/// that are all positive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of pool threads (the calling thread participates in
    /// stages as one extra worker and is not counted here).
    pub workers: usize,
    /// Stages dispatched to the pool (single-worker stages run inline
    /// on the calling thread and are not counted).
    pub jobs: u64,
    /// Times a worker went to sleep waiting for stage work.
    pub parks: u64,
    /// Times a worker woke up with stage work to do.
    pub unparks: u64,
    /// Batches claimed by a worker that static partitioning would have
    /// assigned to a different worker.
    pub batches_stolen: u64,
    /// One-shot side jobs (overlapped final merges) executed by pool
    /// workers. Side jobs a caller reclaimed and ran inline — because
    /// every pool worker was busy when the caller needed the result —
    /// are not counted.
    pub side_jobs: u64,
    /// Batches processed per participant slot (index 0 is the calling
    /// thread; 1.. are pool workers in job-join order).
    pub per_worker_batches: Vec<u64>,
    /// Cursor claims per participant slot. One claim covers a *guided
    /// span* of `max(1, remaining / (2 · participants))` batches, so on
    /// large stages this stays far below `per_worker_batches` — the
    /// cursor-contention reduction the ROADMAP's "guided claim spans"
    /// item asks for.
    pub per_worker_claims: Vec<u64>,
    /// Per-session usage, sorted by session tag. Only stages dispatched
    /// to the pool are accounted; inline single-worker stages cost the
    /// pool nothing.
    pub sessions: Vec<SessionPoolStats>,
    /// Batch-driver runs that ended in a caught panic
    /// ([`Error::TaskPanicked`](crate::Error)): the panic failed its
    /// job, the worker survived.
    pub panicked_batches: u64,
    /// Worker threads the respawn supervisor replaced after they died
    /// to an unwinding panic that escaped the phase wrappers. The pool
    /// always ends with its full complement:
    /// `respawned_workers + surviving == initial`.
    pub respawned_workers: u64,
}

impl PoolStats {
    /// Total batches processed across participants.
    pub fn total_batches(&self) -> u64 {
        self.per_worker_batches.iter().sum()
    }

    /// Total cursor claims across participants. With guided claim spans
    /// this is at most [`PoolStats::total_batches`], and much smaller on
    /// large stages.
    pub fn total_claims(&self) -> u64 {
        self.per_worker_claims.iter().sum()
    }

    /// Whether every participant that joined a stage processed at least
    /// one batch (the load-balance property dynamic scheduling buys).
    pub fn all_workers_productive(&self) -> bool {
        let active: Vec<&u64> = self
            .per_worker_batches
            .iter()
            .take(self.workers + 1)
            .collect();
        !active.is_empty() && active.into_iter().all(|&b| b > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_stats_productivity_check() {
        let mut p = PoolStats {
            workers: 2,
            ..Default::default()
        };
        assert!(!p.all_workers_productive(), "no observations yet");
        p.per_worker_batches = vec![4, 3, 2];
        assert!(p.all_workers_productive());
        p.per_worker_batches[2] = 0;
        assert!(!p.all_workers_productive());
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = PhaseStats {
            client: Duration::from_millis(1),
            stages: 1,
            ..Default::default()
        };
        let b = PhaseStats {
            client: Duration::from_millis(2),
            task: Duration::from_millis(10),
            stages: 2,
            calls: 5,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.client, Duration::from_millis(3));
        assert_eq!(a.task, Duration::from_millis(10));
        assert_eq!(a.stages, 3);
        assert_eq!(a.calls, 5);
        assert_eq!(a.total(), Duration::from_millis(13));
    }

    #[test]
    fn percentages_sum_to_100() {
        let s = PhaseStats {
            client: Duration::from_millis(10),
            unprotect: Duration::from_millis(10),
            planner: Duration::from_millis(20),
            split: Duration::from_millis(20),
            task: Duration::from_millis(30),
            merge: Duration::from_millis(10),
            ..Default::default()
        };
        let p = s.percentages();
        let sum: f64 = p.iter().sum();
        assert!((sum - 100.0).abs() < 1e-9, "sum was {sum}");
        assert!((p[4] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_percentages() {
        assert_eq!(PhaseStats::default().percentages(), [0.0; 6]);
    }
}
