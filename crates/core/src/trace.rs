//! Per-request tracing: process-unique trace ids, lock-free per-worker
//! span ring buffers, span-tree assembly, and a Chrome trace-event
//! exporter.
//!
//! The executor already times every phase it runs (split/task/merge per
//! batch on the worker thread, placement writes, the final merge on the
//! caller); this module gives those timings an identity. A
//! [`TraceRecorder`] hands out process-unique trace ids
//! ([`TraceRecorder::mint`]) and collects fixed-size [`SpanRecord`]s
//! into per-worker ring buffers:
//!
//! * **Lock-free, zero-allocation recording.** A writer claims a slot
//!   with one `fetch_add`, publishes the payload field-by-field through
//!   plain atomics, and stamps the slot with the span's global sequence
//!   number last (release ordering). Readers run the inverse seqlock
//!   protocol — stamp, payload, stamp again — and discard slots a
//!   concurrent writer touched. No mutex, no heap traffic, no waiting
//!   on the hot path.
//! * **Overwrite-oldest.** Rings are fixed-size; once full, each new
//!   span overwrites the oldest slot in its shard. A long evaluation
//!   keeps its most recent detail; [`TraceRecorder::dropped`] counts
//!   what aged out.
//! * **Sharding.** Pool participants record into the shard of their
//!   worker index, so concurrently executing workers do not contend on
//!   one ring head; service threads (recording queue waits and request
//!   envelopes under [`SERVICE_WORKER`]) are spread round-robin by
//!   thread.
//!
//! Spans are assembled on demand ([`assemble`]) into a [`SpanTree`]:
//! the request envelope at the root, serve-side waits and evaluation
//! attempts one level down, and executor phase spans nested under the
//! attempt whose time window contains them. [`chrome_trace_json`]
//! renders any span set as Chrome trace-event JSON (`chrome://tracing`
//! / Perfetto).
//!
//! Every span carries **both** a wall-clock and a CPU-clock duration
//! (`crate::cputime`): on an oversubscribed host the difference is
//! preemption, which aggregate wall numbers silently misattribute to
//! whichever phase has the most windows.
//!
//! Tracing is off unless a recorder is installed in
//! [`Config::tracing`](crate::Config::tracing); when off, the executor
//! and context pay one predictable `Option` branch per would-be span
//! and record nothing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A process-unique trace identifier (nonzero; 0 means "untraced").
pub type TraceId = u64;

/// Worker-slot value for spans recorded by service threads rather than
/// pool participants (rendered as `svc`).
pub const SERVICE_WORKER: u32 = u32::MAX;

/// What one span measured. The `arg`/`link` fields of a
/// [`SpanRecord`] are interpreted per kind; see each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// The whole request, admission to response (`arg`/`link` unused).
    /// Serve-side root span.
    Request = 0,
    /// Wait for an admission permit (`link` = deadline ms, 0 = none).
    QueueWait = 1,
    /// A coalesced follower parked on its leader's evaluation
    /// (`link` = the **leader's** trace id).
    CoalesceWait = 2,
    /// Jittered backoff sleep before a retry (`arg` = upcoming attempt
    /// number).
    Backoff = 3,
    /// One evaluation attempt (`arg` = attempt index from 0; `link` =
    /// cause of the *previous* attempt's failure, see [`RetryCause`]).
    Attempt = 4,
    /// The request was shed on its deadline (`link` = deadline ms).
    /// Zero-duration marker.
    DeadlineShed = 5,
    /// Clearing lazy-evaluation protection at evaluation start.
    Unprotect = 6,
    /// Planning (fingerprinting, stage planning, plan binding),
    /// accumulated over the evaluation.
    Planner = 7,
    /// The evaluation replayed a cached plan (zero-duration marker).
    PlanCacheHit = 8,
    /// The evaluation planned from scratch (zero-duration marker).
    PlanCacheMiss = 9,
    /// Split phase of one batch (`arg` = stage index, `link` = batch
    /// index).
    Split = 10,
    /// Task (library-call) phase of one batch (`arg` = stage, `link` =
    /// batch).
    Task = 11,
    /// Worker-local merge window (`arg` = stage index).
    Merge = 12,
    /// Placement write of one batch's result pieces (`arg` = stage,
    /// `link` = batch).
    PlacementWrite = 13,
    /// Final merge of a stage on the calling thread (`arg` = stage).
    FinalMerge = 14,
    /// A merge output handed to the next stage in split form instead of
    /// being merged (`arg` = stage index, `link` = piece count). Near
    /// zero-duration marker: the elided-merge analogue of
    /// [`SpanKind::FinalMerge`].
    SplitFormHandoff = 15,
}

/// Number of distinct [`SpanKind`]s (for per-kind aggregation arrays).
pub const SPAN_KINDS: usize = 16;

/// Failure cause codes carried in an [`SpanKind::Attempt`] span's
/// `link` field (the cause of the *previous* attempt's failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RetryCause {
    /// First attempt: nothing failed before it.
    None = 0,
    /// A caught panic in foreign split/task/merge code.
    Panic = 1,
    /// A deterministic fault-injection error.
    Injected = 2,
    /// Any other (transient) runtime error.
    Other = 3,
}

impl SpanKind {
    /// Stable lowercase name used in wire formats and exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::CoalesceWait => "coalesce_wait",
            SpanKind::Backoff => "backoff",
            SpanKind::Attempt => "attempt",
            SpanKind::DeadlineShed => "deadline_shed",
            SpanKind::Unprotect => "unprotect",
            SpanKind::Planner => "planner",
            SpanKind::PlanCacheHit => "plan_cache_hit",
            SpanKind::PlanCacheMiss => "plan_cache_miss",
            SpanKind::Split => "split",
            SpanKind::Task => "task",
            SpanKind::Merge => "merge",
            SpanKind::PlacementWrite => "placement_write",
            SpanKind::FinalMerge => "final_merge",
            SpanKind::SplitFormHandoff => "split_form_handoff",
        }
    }

    fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Request,
            1 => SpanKind::QueueWait,
            2 => SpanKind::CoalesceWait,
            3 => SpanKind::Backoff,
            4 => SpanKind::Attempt,
            5 => SpanKind::DeadlineShed,
            6 => SpanKind::Unprotect,
            7 => SpanKind::Planner,
            8 => SpanKind::PlanCacheHit,
            9 => SpanKind::PlanCacheMiss,
            10 => SpanKind::Split,
            11 => SpanKind::Task,
            12 => SpanKind::Merge,
            13 => SpanKind::PlacementWrite,
            14 => SpanKind::FinalMerge,
            15 => SpanKind::SplitFormHandoff,
            _ => return None,
        })
    }

    /// Serve-level kinds sit directly under the request root in an
    /// assembled tree; executor kinds nest under the covering attempt.
    fn is_serve_level(self) -> bool {
        matches!(
            self,
            SpanKind::QueueWait
                | SpanKind::CoalesceWait
                | SpanKind::Backoff
                | SpanKind::Attempt
                | SpanKind::DeadlineShed
        )
    }
}

/// One recorded span: a fixed-size value, copied whole in and out of
/// the ring buffers (no allocation on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global sequence number, assigned by the recorder (1-based;
    /// monotone across all threads, so "older" is well-defined).
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// What was measured.
    pub kind: SpanKind,
    /// Recording participant: the pool worker index, or
    /// [`SERVICE_WORKER`] for service threads.
    pub worker: u32,
    /// Kind-specific argument (stage index, attempt number, ...); see
    /// [`SpanKind`].
    pub arg: u64,
    /// Kind-specific link (batch index, leader trace id, retry cause,
    /// deadline ms, ...); see [`SpanKind`].
    pub link: u64,
    /// Start, in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// CPU-clock duration in nanoseconds (see `crate::cputime`); equals
    /// wall minus preemption for single-threaded windows.
    pub cpu_ns: u64,
}

impl SpanRecord {
    /// End of the span's wall window, saturating.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.wall_ns)
    }
}

/// One seqlock-protected ring slot. `stamp` is 0 while empty or mid-
/// write and the span's sequence number once published.
struct Slot {
    stamp: AtomicU64,
    trace: AtomicU64,
    /// `kind | worker << 8` packed.
    meta: AtomicU64,
    arg: AtomicU64,
    link: AtomicU64,
    start_ns: AtomicU64,
    wall_ns: AtomicU64,
    cpu_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            link: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            cpu_ns: AtomicU64::new(0),
        }
    }

    /// Seqlock read: `None` if the slot is empty or a writer raced us.
    fn read(&self) -> Option<SpanRecord> {
        let s1 = self.stamp.load(Ordering::Acquire);
        if s1 == 0 {
            return None;
        }
        let rec = SpanRecord {
            seq: s1,
            trace: self.trace.load(Ordering::Relaxed),
            kind: SpanKind::from_u8((self.meta.load(Ordering::Relaxed) & 0xff) as u8)?,
            worker: (self.meta.load(Ordering::Relaxed) >> 8) as u32,
            arg: self.arg.load(Ordering::Relaxed),
            link: self.link.load(Ordering::Relaxed),
            start_ns: self.start_ns.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            cpu_ns: self.cpu_ns.load(Ordering::Relaxed),
        };
        // A concurrent writer zeroes the stamp before touching the
        // payload, so an unchanged stamp proves the copy is whole.
        if self.stamp.load(Ordering::Acquire) == s1 {
            Some(rec)
        } else {
            None
        }
    }
}

/// One ring: a head cursor claimed with `fetch_add` plus its slots.
struct Shard {
    head: AtomicUsize,
    slots: Vec<Slot>,
}

/// Per-kind wall/CPU totals, aggregated at record time so exposition
/// layers can report phase time without scanning rings.
struct KindTotal {
    count: AtomicU64,
    wall_ns: AtomicU64,
    cpu_ns: AtomicU64,
}

/// Aggregate per-kind phase totals (see
/// [`TraceRecorder::phase_totals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotal {
    /// The span kind these totals aggregate.
    pub kind: SpanKind,
    /// Spans recorded with this kind (overwritten spans included — the
    /// totals are accumulated at record time).
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Total CPU-clock nanoseconds.
    pub cpu_ns: u64,
}

/// The span sink: mints trace ids, stamps a global sequence, and stores
/// spans in per-worker overwrite-oldest rings. Cheap to share
/// (`Arc<TraceRecorder>`); see the module docs for the concurrency
/// protocol.
pub struct TraceRecorder {
    epoch: Instant,
    seq: AtomicU64,
    next_trace: AtomicU64,
    shards: Vec<Shard>,
    totals: Vec<KindTotal>,
    next_thread_shard: AtomicUsize,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TraceRecorder({} shards x {} slots)",
            self.shards.len(),
            self.shards.first().map_or(0, |s| s.slots.len())
        )
    }
}

/// Default shard count (worker indices fold onto these).
const DEFAULT_SHARDS: usize = 8;
/// Default slots per shard.
const DEFAULT_SLOTS: usize = 2048;

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SHARDS, DEFAULT_SLOTS)
    }
}

impl TraceRecorder {
    /// A recorder with the default capacity (8 rings of 2048 spans).
    pub fn new() -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder::default())
    }

    /// A recorder with `shards` rings of `slots` spans each (both
    /// clamped to at least 1).
    pub fn with_capacity(shards: usize, slots: usize) -> TraceRecorder {
        let shards = shards.max(1);
        let slots = slots.max(1);
        TraceRecorder {
            epoch: Instant::now(),
            seq: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
            shards: (0..shards)
                .map(|_| Shard {
                    head: AtomicUsize::new(0),
                    slots: (0..slots).map(|_| Slot::empty()).collect(),
                })
                .collect(),
            totals: (0..SPAN_KINDS)
                .map(|_| KindTotal {
                    count: AtomicU64::new(0),
                    wall_ns: AtomicU64::new(0),
                    cpu_ns: AtomicU64::new(0),
                })
                .collect(),
            next_thread_shard: AtomicUsize::new(0),
        }
    }

    /// Mint a process-unique nonzero trace id.
    pub fn mint(&self) -> TraceId {
        self.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since this recorder's epoch (the `start_ns` clock).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Shard for a recording thread: pool workers map by index, service
    /// threads round-robin by thread identity.
    fn shard_for(&self, worker: u32) -> &Shard {
        let idx = if worker == SERVICE_WORKER {
            thread_local! {
                static SHARD: std::cell::OnceCell<usize> =
                    const { std::cell::OnceCell::new() };
            }
            SHARD
                .with(|c| *c.get_or_init(|| self.next_thread_shard.fetch_add(1, Ordering::Relaxed)))
        } else {
            worker as usize
        };
        &self.shards[idx % self.shards.len()]
    }

    /// Record one span (the `seq` field is assigned here; pass 0).
    /// Lock-free and allocation-free; overwrites the oldest span in the
    /// recording thread's shard when the ring is full.
    pub fn record(&self, rec: SpanRecord) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let total = &self.totals[rec.kind as usize];
        total.count.fetch_add(1, Ordering::Relaxed);
        total.wall_ns.fetch_add(rec.wall_ns, Ordering::Relaxed);
        total.cpu_ns.fetch_add(rec.cpu_ns, Ordering::Relaxed);
        let shard = self.shard_for(rec.worker);
        let idx = shard.head.fetch_add(1, Ordering::Relaxed) % shard.slots.len();
        let slot = &shard.slots[idx];
        // Seqlock write: invalidate, publish payload, stamp last.
        slot.stamp.store(0, Ordering::Release);
        slot.trace.store(rec.trace, Ordering::Relaxed);
        slot.meta.store(
            (rec.kind as u64) | (u64::from(rec.worker) << 8),
            Ordering::Relaxed,
        );
        slot.arg.store(rec.arg, Ordering::Relaxed);
        slot.link.store(rec.link, Ordering::Relaxed);
        slot.start_ns.store(rec.start_ns, Ordering::Relaxed);
        slot.wall_ns.store(rec.wall_ns, Ordering::Relaxed);
        slot.cpu_ns.store(rec.cpu_ns, Ordering::Relaxed);
        slot.stamp.store(seq, Ordering::Release);
    }

    /// Spans recorded so far that have been overwritten by newer ones.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let head = s.head.load(Ordering::Relaxed);
                head.saturating_sub(s.slots.len()) as u64
            })
            .sum()
    }

    /// All retained spans of one trace, sorted by start time (sequence
    /// breaking ties).
    pub fn spans(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.collect(|r| r.trace == trace)
    }

    /// Every retained span, across all traces, sorted by start time —
    /// the input for whole-run exports ([`chrome_trace_json`]).
    pub fn all_spans(&self) -> Vec<SpanRecord> {
        self.collect(|_| true)
    }

    /// Per-kind aggregate wall/CPU totals, accumulated at record time
    /// (so ring overwrites never lose them).
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        self.totals
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let kind = SpanKind::from_u8(i as u8)?;
                Some(PhaseTotal {
                    kind,
                    count: t.count.load(Ordering::Relaxed),
                    wall_ns: t.wall_ns.load(Ordering::Relaxed),
                    cpu_ns: t.cpu_ns.load(Ordering::Relaxed),
                })
            })
            .collect()
    }

    fn collect(&self, keep: impl Fn(&SpanRecord) -> bool) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for slot in &shard.slots {
                if let Some(rec) = slot.read() {
                    if keep(&rec) {
                        out.push(rec);
                    }
                }
            }
        }
        out.sort_by_key(|r| (r.start_ns, r.seq));
        out
    }

    /// Assemble one trace's retained spans into a tree (see
    /// [`assemble`]); `None` if the trace has no retained spans.
    pub fn tree(&self, trace: TraceId) -> Option<SpanTree> {
        assemble(self.spans(trace))
    }
}

/// Execution-side trace context threaded from a
/// [`MozartContext`](crate::MozartContext) into stages: the recorder
/// plus the active trace id.
#[derive(Clone)]
pub struct TraceCtx {
    /// Where spans go.
    pub recorder: Arc<TraceRecorder>,
    /// The trace being recorded.
    pub trace: TraceId,
}

impl TraceCtx {
    /// Record one span of this trace (see [`TraceRecorder::record`]).
    /// The argument list mirrors the [`SpanRecord`] fields the caller
    /// doesn't own (`seq`, `trace`) — a struct here would just be the
    /// record again.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn emit(
        &self,
        kind: SpanKind,
        worker: u32,
        arg: u64,
        link: u64,
        start_ns: u64,
        wall_ns: u64,
        cpu_ns: u64,
    ) {
        self.recorder.record(SpanRecord {
            seq: 0,
            trace: self.trace,
            kind,
            worker,
            arg,
            link,
            start_ns,
            wall_ns,
            cpu_ns,
        });
    }
}

/// One node of an assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span at this node.
    pub span: SpanRecord,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

/// A request's spans assembled into a tree: the request envelope at the
/// root, serve-side waits and attempts below it, executor phases under
/// their covering attempt.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The root node ([`SpanKind::Request`], possibly synthesized for
    /// direct evaluations that never passed through a serving layer).
    pub root: SpanNode,
}

impl SpanTree {
    /// End-to-end wall nanoseconds (the root span's duration).
    pub fn e2e_ns(&self) -> u64 {
        self.root.span.wall_ns
    }

    /// Wall nanoseconds covered by the root's direct children — the
    /// request's phase attribution. For a served request the direct
    /// children (queue wait, coalesce wait, attempts, backoffs) are
    /// contiguous sections of its lifetime, so this sums to the
    /// end-to-end latency up to per-phase bookkeeping gaps.
    pub fn covered_ns(&self) -> u64 {
        self.root
            .children
            .iter()
            .map(|c| c.span.wall_ns)
            .fold(0u64, u64::saturating_add)
    }

    /// Total spans in the tree (root included).
    pub fn len(&self) -> usize {
        fn count(n: &SpanNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// Whether the tree holds only its root.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }

    /// Render the tree as a single line (the wire format of the
    /// `TRACE` protocol command; see `mozart-serve`'s protocol docs).
    /// Tokens are space-separated; each span renders as
    /// `<depth>:<kind>:worker=<w>:arg=<a>:link=<l>:start_us=<u>:wall_us=<u>:cpu_us=<u>`.
    pub fn render_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "trace={} e2e_us={} covered_us={} spans={}",
            self.root.span.trace,
            self.e2e_ns() / 1_000,
            self.covered_ns() / 1_000,
            self.len()
        );
        fn emit(out: &mut String, node: &SpanNode, depth: usize) {
            use std::fmt::Write as _;
            let s = &node.span;
            let worker = if s.worker == SERVICE_WORKER {
                "svc".to_string()
            } else {
                s.worker.to_string()
            };
            let _ = write!(
                out,
                " {depth}:{}:worker={worker}:arg={}:link={}:start_us={}:wall_us={}:cpu_us={}",
                s.kind.name(),
                s.arg,
                s.link,
                s.start_ns / 1_000,
                s.wall_ns / 1_000,
                s.cpu_ns / 1_000,
            );
            for c in &node.children {
                emit(out, c, depth + 1);
            }
        }
        emit(&mut out, &self.root, 0);
        out
    }
}

/// Assemble spans (sorted by start) into a [`SpanTree`].
///
/// Structure: the [`SpanKind::Request`] span is the root (for direct
/// `evaluate` calls that never passed a serving layer, a synthetic
/// request span covering the observed window is created). Serve-level
/// spans (waits, attempts, backoffs, shed markers) become direct
/// children; executor spans nest under the [`SpanKind::Attempt`] whose
/// wall window contains their start — which is what parents phase work
/// to the correct attempt across retries — and fall back to the root
/// when no attempt covers them.
pub fn assemble(spans: Vec<SpanRecord>) -> Option<SpanTree> {
    if spans.is_empty() {
        return None;
    }
    let root_span = spans
        .iter()
        .find(|s| s.kind == SpanKind::Request)
        .copied()
        .unwrap_or_else(|| {
            let start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
            let end = spans.iter().map(|s| s.end_ns()).max().unwrap_or(start);
            SpanRecord {
                seq: 0,
                trace: spans[0].trace,
                kind: SpanKind::Request,
                worker: SERVICE_WORKER,
                arg: 0,
                link: 0,
                start_ns: start,
                wall_ns: end - start,
                cpu_ns: 0,
            }
        });
    let mut root = SpanNode {
        span: root_span,
        children: Vec::new(),
    };
    // Serve-level children first, preserving start order.
    for s in &spans {
        if s.kind != SpanKind::Request && s.kind.is_serve_level() {
            root.children.push(SpanNode {
                span: *s,
                children: Vec::new(),
            });
        }
    }
    // Executor spans nest under the attempt whose window contains them.
    for s in &spans {
        if s.kind == SpanKind::Request || s.kind.is_serve_level() {
            continue;
        }
        let node = SpanNode {
            span: *s,
            children: Vec::new(),
        };
        let home = root.children.iter_mut().find(|c| {
            c.span.kind == SpanKind::Attempt
                && c.span.start_ns <= s.start_ns
                && s.start_ns < c.span.end_ns().max(c.span.start_ns + 1)
        });
        match home {
            Some(attempt) => attempt.children.push(node),
            None => root.children.push(node),
        }
    }
    Some(SpanTree { root })
}

/// Render spans as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto "JSON Array Format"): one complete (`"ph":"X"`) event per
/// span, grouped by trace id as the process and worker as the thread,
/// with CPU time and the kind-specific fields under `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(spans.len() * 96 + 2);
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = if s.worker == SERVICE_WORKER {
            999
        } else {
            s.worker as i64
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"mozart\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"arg\":{},\"link\":{},\"cpu_us\":{}}}}}",
            s.kind.name(),
            s.trace,
            tid,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.wall_ns / 1_000,
            s.wall_ns % 1_000,
            s.arg,
            s.link,
            s.cpu_ns / 1_000,
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, kind: SpanKind, start: u64, wall: u64) -> SpanRecord {
        SpanRecord {
            seq: 0,
            trace,
            kind,
            worker: 0,
            arg: 0,
            link: 0,
            start_ns: start,
            wall_ns: wall,
            cpu_ns: wall,
        }
    }

    #[test]
    fn mint_is_unique_and_nonzero() {
        let r = TraceRecorder::new();
        let a = r.mint();
        let b = r.mint();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn record_and_collect_roundtrip() {
        let r = TraceRecorder::new();
        r.record(span(7, SpanKind::Split, 100, 50));
        r.record(span(7, SpanKind::Task, 150, 30));
        r.record(span(8, SpanKind::Task, 10, 5));
        let spans = r.spans(7);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Split);
        assert_eq!(spans[1].kind, SpanKind::Task);
        assert!(spans[0].seq < spans[1].seq, "sequence is monotone");
        assert_eq!(r.all_spans().len(), 3);
    }

    #[test]
    fn wraparound_drops_oldest_not_newest() {
        // One shard of 4 slots; 10 spans recorded: the ring must retain
        // exactly the newest 4 and count 6 dropped.
        let r = TraceRecorder::with_capacity(1, 4);
        for i in 0..10u64 {
            r.record(span(1, SpanKind::Task, i * 100, 10));
        }
        let spans = r.spans(1);
        assert_eq!(spans.len(), 4);
        let starts: Vec<u64> = spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![600, 700, 800, 900], "newest survive");
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn phase_totals_survive_overwrites() {
        let r = TraceRecorder::with_capacity(1, 2);
        for _ in 0..8 {
            r.record(span(1, SpanKind::Split, 0, 100));
        }
        let totals = r.phase_totals();
        let split = totals
            .iter()
            .find(|t| t.kind == SpanKind::Split)
            .expect("split total");
        assert_eq!(split.count, 8);
        assert_eq!(split.wall_ns, 800);
    }

    #[test]
    fn assemble_parents_phases_to_their_attempt() {
        // Two attempts (a retry); each attempt has one task span inside
        // its window. Assembly must parent each task to its own attempt.
        let mut spans = vec![span(3, SpanKind::Request, 0, 1000)];
        spans.push({
            let mut s = span(3, SpanKind::Attempt, 10, 300);
            s.arg = 0;
            s
        });
        spans.push({
            let mut s = span(3, SpanKind::Attempt, 400, 500);
            s.arg = 1;
            s.link = RetryCause::Panic as u64;
            s
        });
        spans.push(span(3, SpanKind::Task, 50, 100));
        spans.push(span(3, SpanKind::Task, 450, 100));
        spans.sort_by_key(|s| s.start_ns);
        let tree = assemble(spans).expect("tree");
        assert_eq!(tree.root.span.kind, SpanKind::Request);
        let attempts: Vec<&SpanNode> = tree
            .root
            .children
            .iter()
            .filter(|c| c.span.kind == SpanKind::Attempt)
            .collect();
        assert_eq!(attempts.len(), 2);
        for a in &attempts {
            assert_eq!(a.children.len(), 1, "one task per attempt");
            assert_eq!(a.children[0].span.kind, SpanKind::Task);
        }
        assert_eq!(attempts[1].span.link, RetryCause::Panic as u64);
        // Covered time = the two attempts' walls.
        assert_eq!(tree.covered_ns(), 800);
        assert_eq!(tree.e2e_ns(), 1000);
    }

    #[test]
    fn assemble_synthesizes_root_for_direct_evaluations() {
        let spans = vec![
            span(9, SpanKind::Unprotect, 100, 10),
            span(9, SpanKind::Task, 200, 300),
        ];
        let tree = assemble(spans).expect("tree");
        assert_eq!(tree.root.span.kind, SpanKind::Request);
        assert_eq!(tree.root.span.start_ns, 100);
        assert_eq!(tree.root.span.wall_ns, 400);
        assert_eq!(tree.root.children.len(), 2);
    }

    #[test]
    fn render_line_is_single_line_and_stable() {
        let spans = vec![span(5, SpanKind::Request, 0, 2000), {
            let mut s = span(5, SpanKind::Attempt, 0, 2000);
            s.worker = SERVICE_WORKER;
            s
        }];
        let tree = assemble(spans).expect("tree");
        let line = tree.render_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("trace=5 e2e_us=2 covered_us=2 spans=2"));
        assert!(line.contains("0:request:"), "{line}");
        assert!(line.contains("1:attempt:worker=svc"), "{line}");
    }

    #[test]
    fn chrome_export_is_valid_json_shape() {
        let spans = vec![span(2, SpanKind::Split, 1500, 2500)];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"split\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.500"), "{json}");
    }

    #[test]
    fn concurrent_recording_is_lossless_within_capacity() {
        let r = Arc::new(TraceRecorder::with_capacity(8, 4096));
        let threads: Vec<_> = (0..4)
            .map(|w| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        let mut s = span(77, SpanKind::Task, i, 1);
                        s.worker = w;
                        r.record(s);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("join");
        }
        assert_eq!(r.spans(77).len(), 4000);
        assert_eq!(r.dropped(), 0);
    }
}
