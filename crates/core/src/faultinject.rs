//! Deterministic fault injection and cooperative cancellation.
//!
//! The paper's premise is that split annotations make *unmodified
//! library code* safe to parallelize — which means arbitrary foreign
//! code runs inside the executor's batch loop and must be assumed to
//! panic, stall, or fail allocation. This module provides the two
//! primitives the fault-tolerance layer is built on:
//!
//! * **[`FaultPlan`]** — a deterministic schedule of injected faults,
//!   attached via [`Config::fault_plan`](crate::Config). The executor
//!   consults the plan at every (stage, phase, batch) boundary of its
//!   driver loop; a matching [`FaultPoint`] fires a panic, a delay, a
//!   typed error ([`Error::Injected`](crate::Error)), or a worker-thread
//!   kill. Explicit points carry a *fire budget* (default: once), so a
//!   retried evaluation runs clean and can be compared bit-for-bit
//!   against a fault-free run. [`FaultPlan::seeded`] adds a pseudorandom
//!   background fault rate for chaos benchmarks, reproducible from its
//!   seed and check sequence.
//! * **[`CancelToken`]** — a cooperative cancel flag with an optional
//!   deadline, attached via
//!   [`MozartContext::set_cancel_token`](crate::MozartContext). Workers
//!   poll it at batch-claim boundaries and abandon the evaluation with
//!   [`Error::Cancelled`](crate::Error), so a request whose deadline
//!   passed stops burning pool time mid-stage instead of running to
//!   completion for a client that already gave up.
//!
//! Injected panics carry typed payloads ([`InjectedPanic`],
//! [`WorkerAbort`]) so the executor's `catch_unwind` wrappers can tell
//! them apart from organic panics, and so test suites can silence their
//! default-hook noise with [`silence_injected_panics`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// Where in a stage's batch pipeline a fault fires — and, symmetrically,
/// where a caught panic is attributed in
/// [`Error::TaskPanicked`](crate::Error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPhase {
    /// The split call that carves a batch out of a stage input.
    Split,
    /// The annotated library function invocation itself.
    Task,
    /// A merge: local per-worker accumulation or the final merge
    /// (including overlapped final merges running as pool side jobs).
    Merge,
    /// Outside any attributable phase: the worker driver loop itself
    /// (used when a panic escapes the per-phase wrappers and is caught
    /// by the pool's last-resort backstop).
    Worker,
}

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultPhase::Split => "split",
            FaultPhase::Task => "task",
            FaultPhase::Merge => "merge",
            FaultPhase::Worker => "worker",
        };
        f.write_str(s)
    }
}

/// What happens when a fault point fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with an [`InjectedPanic`] payload. The executor's phase
    /// wrappers catch it and surface
    /// [`Error::TaskPanicked`](crate::Error) — the worker survives.
    Panic,
    /// Sleep for the given duration before continuing (a slow batch —
    /// exercises deadline shedding without failing anything).
    Delay(Duration),
    /// Return [`Error::Injected`](crate::Error) from the faulted phase
    /// (models a transient allocation or I/O failure inside the
    /// library function).
    Error,
    /// Panic with a [`WorkerAbort`] payload, which the phase wrappers
    /// deliberately re-raise: the pool worker thread dies (its job
    /// still fails typed via the pool backstop) and the respawn
    /// supervisor replaces the thread. On the submitting caller's own
    /// driver loop (worker 0) this degrades to [`FaultKind::Panic`] —
    /// the runtime never kills application threads.
    KillWorker,
}

/// Panic payload of [`FaultKind::Panic`]: marks the panic as injected so
/// catch sites and panic hooks can distinguish it from organic panics.
#[derive(Debug, Clone)]
pub struct InjectedPanic(pub String);

/// Panic payload of [`FaultKind::KillWorker`]: the executor's phase
/// wrappers re-raise it instead of converting it to an error, so the
/// unwinding continues through the worker thread and exercises the
/// pool's respawn supervisor.
#[derive(Debug, Clone)]
pub struct WorkerAbort(pub String);

/// One scheduled fault: fires `budget` times at matching
/// (stage, phase, batch) points, then stays quiet.
#[derive(Debug)]
pub struct FaultPoint {
    stage: Option<u64>,
    phase: FaultPhase,
    batch: Option<u64>,
    kind: FaultKind,
    budget: AtomicU64,
}

impl FaultPoint {
    /// A point that fires **once** at the first matching check, in any
    /// stage and any batch of the given phase. Narrow it with
    /// [`at_stage`](Self::at_stage) / [`at_batch`](Self::at_batch),
    /// widen with [`times`](Self::times).
    pub fn once(phase: FaultPhase, kind: FaultKind) -> Self {
        FaultPoint {
            stage: None,
            phase,
            batch: None,
            kind,
            budget: AtomicU64::new(1),
        }
    }

    /// Restrict the point to one stage index (0-based, in evaluation
    /// order of the owning context's statistics).
    pub fn at_stage(mut self, stage: u64) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Restrict the point to one batch index within its stage.
    pub fn at_batch(mut self, batch: u64) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Let the point fire up to `n` times instead of once.
    pub fn times(self, n: u64) -> Self {
        self.budget.store(n, Ordering::Relaxed);
        self
    }

    fn matches(&self, stage: u64, phase: FaultPhase, batch: u64) -> bool {
        self.phase == phase
            && self.stage.map(|s| s == stage).unwrap_or(true)
            && self.batch.map(|b| b == batch).unwrap_or(true)
    }

    /// Consume one unit of fire budget; `true` if the point may fire.
    fn take_budget(&self) -> bool {
        self.budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
    }
}

impl Clone for FaultPoint {
    fn clone(&self) -> Self {
        FaultPoint {
            stage: self.stage,
            phase: self.phase,
            batch: self.batch,
            kind: self.kind.clone(),
            budget: AtomicU64::new(self.budget.load(Ordering::Relaxed)),
        }
    }
}

/// A pseudorandom background fault rate layered under the explicit
/// points: each check draws from a seeded splitmix64 stream.
#[derive(Debug)]
struct SeededFaults {
    seed: u64,
    rate_ppm: u64,
    phase: Option<FaultPhase>,
    kind: FaultKind,
    checks: AtomicU64,
}

/// A deterministic schedule of injected faults. Attach to
/// [`Config::fault_plan`](crate::Config) (via `Arc`) and every
/// evaluation under that config consults it at each
/// (stage, phase, batch) boundary.
#[derive(Debug, Default)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
    seeded: Option<SeededFaults>,
    fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (no faults). Add explicit points with
    /// [`point`](Self::point).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add one explicit fault point (builder style).
    pub fn point(mut self, p: FaultPoint) -> Self {
        self.points.push(p);
        self
    }

    /// A plan that fires `kind` pseudorandomly on `rate_ppm` out of
    /// every million checks (optionally restricted to one phase). The
    /// draw sequence is a splitmix64 stream over the seed and a global
    /// check counter: a single-threaded evaluation replays exactly;
    /// concurrent evaluations see a reproducible *rate* whose exact
    /// placement depends on worker interleaving. Chaos tests that need
    /// exact placement use explicit [`FaultPoint`]s instead.
    pub fn seeded(seed: u64, rate_ppm: u64, phase: Option<FaultPhase>, kind: FaultKind) -> Self {
        FaultPlan {
            points: Vec::new(),
            seeded: Some(SeededFaults {
                seed,
                rate_ppm,
                phase,
                kind,
                checks: AtomicU64::new(0),
            }),
            fired: AtomicU64::new(0),
        }
    }

    /// Faults fired so far (explicit points and seeded draws).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Consult the plan at one (stage, phase, batch) point. Returns the
    /// fault to trigger, consuming fire budget; `None` almost always.
    pub fn check(&self, stage: u64, phase: FaultPhase, batch: u64) -> Option<FaultKind> {
        for p in &self.points {
            if p.matches(stage, phase, batch) && p.take_budget() {
                self.fired.fetch_add(1, Ordering::Relaxed);
                return Some(p.kind.clone());
            }
        }
        if let Some(s) = &self.seeded {
            if s.phase.map(|p| p == phase).unwrap_or(true) && s.rate_ppm > 0 {
                let n = s.checks.fetch_add(1, Ordering::Relaxed);
                let draw = splitmix64(s.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                if draw % 1_000_000 < s.rate_ppm {
                    self.fired.fetch_add(1, Ordering::Relaxed);
                    return Some(s.kind.clone());
                }
            }
        }
        None
    }
}

impl FaultKind {
    /// Execute the fault at its injection site inside the worker driver
    /// loop. `Delay` returns `Ok` after sleeping; `Error` returns the
    /// typed transient error; `Panic`/`KillWorker` unwind with their
    /// marker payloads (`KillWorker` degrades to `Panic` on the
    /// caller's own driver loop, worker 0).
    pub fn trigger(
        self,
        phase: FaultPhase,
        stage: u64,
        batch: u64,
        worker_idx: usize,
    ) -> Result<()> {
        let at = format!("injected {phase} fault at stage {stage} batch {batch}");
        match self {
            FaultKind::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            FaultKind::Error => Err(Error::Injected(at)),
            FaultKind::KillWorker if worker_idx > 0 => std::panic::panic_any(WorkerAbort(at)),
            FaultKind::Panic | FaultKind::KillWorker => std::panic::panic_any(InjectedPanic(at)),
        }
    }
}

/// Render a caught panic payload as a message for
/// [`Error::TaskPanicked`](crate::Error).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(m) = payload.downcast_ref::<InjectedPanic>() {
        m.0.clone()
    } else if let Some(m) = payload.downcast_ref::<WorkerAbort>() {
        m.0.clone()
    } else if let Some(m) = payload.downcast_ref::<&str>() {
        (*m).to_string()
    } else if let Some(m) = payload.downcast_ref::<String>() {
        m.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Install a process-wide panic hook (once) that suppresses the default
/// "thread panicked" noise for *injected* panics while forwarding every
/// organic panic to the previous hook. Chaos suites call this so a run
/// injecting hundreds of panics has a readable test log.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_some()
                || info.payload().downcast_ref::<WorkerAbort>().is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// A cooperative cancel flag with an optional deadline.
///
/// Attached to a context via
/// [`MozartContext::set_cancel_token`](crate::MozartContext); the
/// executor's driver loop polls [`is_cancelled`](Self::is_cancelled) at
/// batch-claim boundaries and abandons the evaluation with
/// [`Error::Cancelled`](crate::Error). Polling is claim-granular: a
/// batch that already started runs to completion (library functions
/// are never interrupted mid-call).
#[derive(Debug)]
pub struct CancelToken {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is
    /// called.
    pub fn new() -> Arc<CancelToken> {
        Arc::new(CancelToken {
            flag: AtomicBool::new(false),
            deadline: None,
        })
    }

    /// A token that additionally reports cancelled once `deadline`
    /// passes.
    pub fn with_deadline(deadline: Instant) -> Arc<CancelToken> {
        Arc::new(CancelToken {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
        })
    }

    /// Request cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token was cancelled or its deadline passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
            || self.deadline.map(|d| Instant::now() >= d).unwrap_or(false)
    }
}

/// The splitmix64 mixer: the deterministic randomness source for the
/// seeded fault stream and for retry jitter in `mozart-serve` (the
/// workspace is std-only; no `rand`).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_points_fire_exactly_their_budget() {
        let plan = FaultPlan::new().point(
            FaultPoint::once(FaultPhase::Task, FaultKind::Error)
                .at_stage(2)
                .at_batch(1),
        );
        // Wrong stage, wrong batch, wrong phase: no fire.
        assert_eq!(plan.check(1, FaultPhase::Task, 1), None);
        assert_eq!(plan.check(2, FaultPhase::Task, 0), None);
        assert_eq!(plan.check(2, FaultPhase::Split, 1), None);
        // Exact match fires once, then the budget is spent.
        assert_eq!(plan.check(2, FaultPhase::Task, 1), Some(FaultKind::Error));
        assert_eq!(plan.check(2, FaultPhase::Task, 1), None);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn times_widens_the_budget() {
        let plan =
            FaultPlan::new().point(FaultPoint::once(FaultPhase::Merge, FaultKind::Panic).times(3));
        for _ in 0..3 {
            assert!(plan.check(0, FaultPhase::Merge, 0).is_some());
        }
        assert_eq!(plan.check(0, FaultPhase::Merge, 0), None);
        assert_eq!(plan.fired(), 3);
    }

    #[test]
    fn seeded_stream_is_reproducible_and_rate_bounded() {
        let draw = |seed| {
            let plan = FaultPlan::seeded(seed, 100_000, Some(FaultPhase::Task), FaultKind::Panic);
            let mut fires = Vec::new();
            for i in 0..1000u64 {
                if plan.check(0, FaultPhase::Task, i).is_some() {
                    fires.push(i);
                }
            }
            // Off-phase checks never fire (and do not advance the stream
            // ahead of matching checks' determinism guarantees).
            assert_eq!(plan.check(0, FaultPhase::Split, 0), None);
            fires
        };
        let a = draw(7);
        let b = draw(7);
        assert_eq!(a, b, "same seed, same fire sequence");
        // ~10% rate: extremely generous bounds, just not degenerate.
        assert!(a.len() > 20 && a.len() < 400, "{} fires", a.len());
        assert_ne!(draw(8), a, "different seed, different sequence");
    }

    #[test]
    fn trigger_produces_typed_error_and_delay_returns() {
        let err = FaultKind::Error
            .trigger(FaultPhase::Split, 3, 4, 1)
            .unwrap_err();
        match &err {
            Error::Injected(m) => {
                assert!(m.contains("split") && m.contains("stage 3") && m.contains("batch 4"))
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(FaultKind::Delay(Duration::from_millis(1))
            .trigger(FaultPhase::Task, 0, 0, 0)
            .is_ok());
    }

    #[test]
    fn panic_kinds_unwind_with_marker_payloads() {
        silence_injected_panics();
        let p = std::panic::catch_unwind(|| {
            let _ = FaultKind::Panic.trigger(FaultPhase::Task, 0, 0, 1);
        })
        .unwrap_err();
        assert!(p.downcast_ref::<InjectedPanic>().is_some());
        // KillWorker on worker 0 degrades to a catchable panic.
        let p = std::panic::catch_unwind(|| {
            let _ = FaultKind::KillWorker.trigger(FaultPhase::Task, 0, 0, 0);
        })
        .unwrap_err();
        assert!(p.downcast_ref::<InjectedPanic>().is_some());
        // On a real worker it unwinds as an abort marker.
        let p = std::panic::catch_unwind(|| {
            let _ = FaultKind::KillWorker.trigger(FaultPhase::Task, 0, 0, 2);
        })
        .unwrap_err();
        assert!(p.downcast_ref::<WorkerAbort>().is_some());
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        assert_eq!(panic_message(&"boom"), "boom");
        assert_eq!(panic_message(&String::from("sboom")), "sboom");
        assert_eq!(panic_message(&InjectedPanic("i".into())), "i");
        assert_eq!(panic_message(&WorkerAbort("w".into())), "w");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }

    #[test]
    fn cancel_token_flag_and_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled(), "past deadline is already cancelled");
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel beats a far deadline");
    }
}
