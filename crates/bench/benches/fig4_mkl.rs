//! Figures 4j–m: the MKL workloads — the already-parallel library vs
//! the fused-compiler stand-in vs Mozart. Speedups over MKL here come
//! from data-movement optimization, not parallelization.

use mozart_bench::{report_figure, time_min, with_mkl_threads, BenchOpts, Series};

fn main() {
    let opts = BenchOpts::from_env();

    // ---- 4j: Black Scholes ------------------------------------------------
    {
        use workloads::black_scholes as bs;
        let n = opts.size(1 << 21);
        let inp = bs::generate(n, 42);
        println!("fig4j: black scholes (MKL), n = {n}");
        let (mut mkl, mut fused, mut mozart) = three();
        for &t in &opts.threads {
            mkl.points.push((
                t,
                time_min(opts.reps, || {
                    with_mkl_threads(t, || {
                        std::hint::black_box(bs::mkl_base(&inp));
                    })
                })
                .as_secs_f64(),
            ));
            fused.points.push((
                t,
                time_min(opts.reps, || {
                    std::hint::black_box(bs::fused(&inp, t));
                })
                .as_secs_f64(),
            ));
            mozart.points.push((
                t,
                time_min(opts.reps, || {
                    let ctx = workloads::mozart_context(t);
                    std::hint::black_box(bs::mkl_mozart(&inp, &ctx).expect("run"));
                })
                .as_secs_f64(),
            ));
        }
        report_figure(
            "fig4j_blackscholes_mkl",
            "Black Scholes (MKL)",
            &[mkl, fused, mozart],
        );
    }

    // ---- 4k: Haversine ------------------------------------------------------
    {
        use workloads::haversine as hv;
        let n = opts.size(1 << 21);
        let inp = hv::generate(n, 7);
        println!("fig4k: haversine (MKL), n = {n}");
        let (mut mkl, mut fused, mut mozart) = three();
        for &t in &opts.threads {
            mkl.points.push((
                t,
                time_min(opts.reps, || {
                    with_mkl_threads(t, || {
                        std::hint::black_box(hv::mkl_base(&inp));
                    })
                })
                .as_secs_f64(),
            ));
            fused.points.push((
                t,
                time_min(opts.reps, || {
                    std::hint::black_box(hv::fused(&inp, t));
                })
                .as_secs_f64(),
            ));
            mozart.points.push((
                t,
                time_min(opts.reps, || {
                    let ctx = workloads::mozart_context(t);
                    std::hint::black_box(hv::mkl_mozart(&inp, &ctx).expect("run"));
                })
                .as_secs_f64(),
            ));
        }
        report_figure(
            "fig4k_haversine_mkl",
            "Haversine (MKL)",
            &[mkl, fused, mozart],
        );
    }

    // ---- 4l: nBody -------------------------------------------------------------
    {
        use workloads::nbody as nb;
        let n = opts.size(700);
        let steps = 2;
        let dt = 0.01;
        let b = nb::generate(n, 5);
        println!("fig4l: nbody (MKL), n = {n}, steps = {steps}");
        let (mut mkl, mut fused, mut mozart) = three();
        for &t in &opts.threads {
            mkl.points.push((
                t,
                time_min(opts.reps, || {
                    with_mkl_threads(t, || {
                        std::hint::black_box(nb::mkl_base(&b, steps, dt));
                    })
                })
                .as_secs_f64(),
            ));
            fused.points.push((
                t,
                time_min(opts.reps, || {
                    std::hint::black_box(nb::fused(&b, steps, dt, t));
                })
                .as_secs_f64(),
            ));
            mozart.points.push((
                t,
                time_min(opts.reps, || {
                    let ctx = workloads::mozart_context(t);
                    std::hint::black_box(nb::mkl_mozart(&b, steps, dt, &ctx).expect("run"));
                })
                .as_secs_f64(),
            ));
        }
        report_figure("fig4l_nbody_mkl", "nBody (MKL)", &[mkl, fused, mozart]);
    }

    // ---- 4m: Shallow Water ---------------------------------------------------------
    {
        use workloads::shallow_water as sw;
        let n = opts.size(384);
        let steps = 4;
        let dt = 0.005;
        let g = sw::generate(n);
        println!("fig4m: shallow water (MKL), grid = {n}x{n}, steps = {steps}");
        let (mut mkl, mut fused, mut mozart) = three();
        for &t in &opts.threads {
            mkl.points.push((
                t,
                time_min(opts.reps, || {
                    with_mkl_threads(t, || {
                        std::hint::black_box(sw::mkl_base(&g, steps, dt));
                    })
                })
                .as_secs_f64(),
            ));
            fused.points.push((
                t,
                time_min(opts.reps, || {
                    std::hint::black_box(sw::fused(&g, steps, dt, t));
                })
                .as_secs_f64(),
            ));
            mozart.points.push((
                t,
                time_min(opts.reps, || {
                    let ctx = workloads::mozart_context(t);
                    std::hint::black_box(sw::mkl_mozart(&g, steps, dt, &ctx).expect("run"));
                })
                .as_secs_f64(),
            ));
        }
        report_figure(
            "fig4m_shallowwater_mkl",
            "Shallow Water (MKL)",
            &[mkl, fused, mozart],
        );
    }
}

fn three() -> (Series, Series, Series) {
    (
        Series {
            name: "MKL".into(),
            points: vec![],
        },
        Series {
            name: "Weld(fused)".into(),
            points: vec![],
        },
        Series {
            name: "Mozart".into(),
            points: vec![],
        },
    )
}
