//! Table 3: integration effort — lines of code per library integration,
//! measured directly from this repository's `sa-*` crates, split into
//! SA/wrapper code vs splitting-API code, next to the paper's reported
//! numbers for its Mozart and Weld integrations.

use std::path::Path;

use mozart_bench::write_results;

/// Count non-empty, non-comment source lines in a file.
fn loc(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

struct Integration {
    library: &'static str,
    crate_dir: &'static str,
    /// Files holding the SAs / wrapper functions.
    sa_files: &'static [&'static str],
    /// Files holding the splitting API (split types).
    split_files: &'static [&'static str],
    /// Paper-reported (SA LoC, splitting API LoC, Weld total LoC).
    paper: (usize, usize, Option<usize>),
}

const INTEGRATIONS: &[Integration] = &[
    Integration {
        library: "NumPy",
        crate_dir: "sa-ndarray",
        sa_files: &["wrappers.rs"],
        split_files: &["split.rs", "reduce.rs"],
        paper: (47, 37, Some(394)),
    },
    Integration {
        library: "Pandas",
        crate_dir: "sa-dataframe",
        sa_files: &["wrappers.rs"],
        split_files: &["split.rs", "groupsplit.rs"],
        paper: (72, 49, Some(2076)),
    },
    Integration {
        library: "spaCy",
        crate_dir: "sa-text",
        sa_files: &["lib.rs"],
        split_files: &[],
        paper: (8, 12, None),
    },
    Integration {
        library: "MKL",
        crate_dir: "sa-vectormath",
        sa_files: &["wrappers.rs"],
        split_files: &["matrix.rs", "reduce.rs", "lib.rs"],
        paper: (74, 90, None),
    },
    Integration {
        library: "ImageMagick",
        crate_dir: "sa-image",
        sa_files: &["lib.rs"],
        split_files: &[],
        paper: (49, 63, None),
    },
];

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    println!("=== Table 3: integration effort (lines of code per library) ===");
    println!(
        "{:<14} {:>10} {:>12} {:>8} | {:>9} {:>10} {:>10}",
        "Library", "SAs", "Split.API", "Total", "paper-SA", "paper-API", "paper-Weld"
    );
    let mut csv =
        String::from("library,sa_loc,split_api_loc,total,paper_sa,paper_api,paper_weld\n");
    for i in INTEGRATIONS {
        let src = root.join(i.crate_dir).join("src");
        let sa: usize = i.sa_files.iter().map(|f| loc(&src.join(f))).sum();
        let split: usize = i.split_files.iter().map(|f| loc(&src.join(f))).sum();
        let (psa, papi, pweld) = i.paper;
        println!(
            "{:<14} {:>10} {:>12} {:>8} | {:>9} {:>10} {:>10}",
            i.library,
            sa,
            split,
            sa + split,
            psa,
            papi,
            pweld.map(|w| w.to_string()).unwrap_or_else(|| "-".into())
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            i.library,
            sa,
            split,
            sa + split,
            psa,
            papi,
            pweld.map(|w| w.to_string()).unwrap_or_default()
        ));
    }
    write_results("table3.csv", &csv);
    println!("\nNote: this Rust reproduction's wrappers are more verbose than the");
    println!("paper's generated C headers / Python decorators, but stay 1-2 orders");
    println!("of magnitude below a Weld-style per-operator IR rewrite (paper: 2076");
    println!("LoC for Pandas alone, plus the >25K LoC compiler).");
}
