//! Figure 7: compute- vs memory-boundedness. (a) relative intensity
//! (cycles per byte, proxied by seconds per byte on an L2-resident
//! array) of add/mul/div/sqrt/erf/exp; (b) Mozart's speedup over
//! un-annotated MKL when running each operator 10 times over a large
//! array, across thread counts.

use mozart_bench::{time_min, with_mkl_threads, write_results, BenchOpts};
use mozart_core::SharedVec;

type RawKernel = unsafe fn(usize, *const f64, *mut f64);

const OPS: [(&str, RawKernel); 6] = [
    ("add", add_raw),
    ("mul", mul_raw),
    ("div", div_raw),
    ("sqrt", vectormath::vd_sqrt_raw),
    ("erf", vectormath::vd_erf_raw),
    ("exp", vectormath::vd_exp_raw),
];

// Binary kernels exercised with the array against itself, adapted to
// the unary signature for uniform sweeping.
unsafe fn add_raw(n: usize, a: *const f64, out: *mut f64) {
    // SAFETY: forwarded contract.
    unsafe { vectormath::vd_add_raw(n, a, a, out) }
}
unsafe fn mul_raw(n: usize, a: *const f64, out: *mut f64) {
    // SAFETY: forwarded contract.
    unsafe { vectormath::vd_mul_raw(n, a, a, out) }
}
unsafe fn div_raw(n: usize, a: *const f64, out: *mut f64) {
    // SAFETY: forwarded contract.
    unsafe { vectormath::vd_div_raw(n, a, a, out) }
}

fn main() {
    let opts = BenchOpts::from_env();

    // ---- (a) relative intensity on an L2-resident array ----
    println!("=== fig7a: relative intensity (seconds/byte on L2-resident data) ===");
    let small = 8 * 1024; // 64 KiB: fits in L2
    let a = vec![1.000003f64; small];
    let mut out = vec![0.0f64; small];
    let mut cost = Vec::new();
    for (name, f) in OPS {
        let iters = 2000;
        let d = time_min(opts.reps, || {
            for _ in 0..iters {
                // SAFETY: same-length valid buffers; out is distinct.
                unsafe { f(small, a.as_ptr(), out.as_mut_ptr()) };
                std::hint::black_box(&out);
            }
        });
        cost.push((name, d.as_secs_f64() / (iters as f64 * small as f64 * 8.0)));
    }
    let base = cost[0].1;
    let mut csv = String::from("op,relative_intensity\n");
    for (name, c) in &cost {
        println!("  {name:>5}: {:8.2}x", c / base);
        csv.push_str(&format!("{name},{}\n", c / base));
    }
    write_results("fig7a_intensity.csv", &csv);

    // ---- (b) speedup of Mozart over MKL for 10 chained calls ----
    println!("\n=== fig7b: Mozart speedup over MKL, 10 chained calls per op ===");
    let n = opts.size(1 << 22);
    let calls = 10;
    let mut csv = String::from("op,threads,speedup\n");
    print!("{:>8}", "threads");
    for &t in &opts.threads {
        print!("{t:>9}");
    }
    println!();
    for (name, f) in OPS {
        print!("{name:>8}");
        for &t in &opts.threads {
            // Un-annotated MKL: 10 full passes, internally parallel.
            let data = vec![1.000003f64; n];
            let mkl = time_min(opts.reps, || {
                with_mkl_threads(t, || {
                    let mut buf = data.clone();
                    for _ in 0..calls {
                        // SAFETY: exact in-place aliasing per kernel contract.
                        unsafe { f(n, buf.as_ptr(), buf.as_mut_ptr()) };
                    }
                    std::hint::black_box(&buf);
                })
            })
            .as_secs_f64();
            // Mozart: the same 10 calls annotated, pipelined, parallel.
            let moz = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                let buf = SharedVec::from_vec(data.clone());
                for _ in 0..calls {
                    dispatch_sa(&ctx, name, n, &buf);
                }
                ctx.evaluate().expect("evaluate");
                std::hint::black_box(buf.as_slice()[0]);
            })
            .as_secs_f64();
            let speedup = mkl / moz;
            print!("{speedup:>8.2}x");
            csv.push_str(&format!("{name},{t},{speedup}\n"));
        }
        println!();
    }
    write_results("fig7b_speedup.csv", &csv);
    println!(
        "\npaper shape: memory-bound ops (add/mul) gain the most; compute-bound (exp) the least."
    );
}

fn dispatch_sa(ctx: &mozart_core::MozartContext, name: &str, n: usize, buf: &SharedVec<f64>) {
    use sa_vectormath as sa;
    match name {
        "add" => sa::vd_add(ctx, n, buf, buf, buf),
        "mul" => sa::vd_mul(ctx, n, buf, buf, buf),
        "div" => sa::vd_div(ctx, n, buf, buf, buf),
        "sqrt" => sa::vd_sqrt(ctx, n, buf, buf),
        "erf" => sa::vd_erf(ctx, n, buf, buf),
        "exp" => sa::vd_exp(ctx, n, buf, buf),
        other => panic!("unknown op {other}"),
    }
    .expect("register");
}
