//! Closed-loop serving throughput: N client threads issue repeated
//! Black Scholes pipeline requests against
//!
//! * **service** — one [`mozart_serve::PipelineService`]: a shared
//!   worker pool and a shared plan cache across all clients;
//! * **independent** — the pre-serve status quo: every request builds
//!   its own `MozartContext`, which spawns its own worker pool and
//!   replans from scratch;
//! * **independent-reused** — a softer baseline: one context (and pool)
//!   per client thread, reused across requests, but still replanning
//!   every evaluation.
//!
//! Reports aggregate requests/sec, per-request p50/p99 latency, and the
//! service's plan-cache hit rate; writes
//! `bench_results/BENCH_serve.json`. The acceptance bar for the serve
//! PR: the service beats `independent` on aggregate requests/sec with 4
//! concurrent clients and serves repeats at a >90% plan-cache hit rate.
//!
//! Two additional phases exercise the QoS work:
//!
//! * **Fair-share**: 2 hot sessions (2 closed-loop threads each,
//!   weight 1) flood the service while 1 cold session (1 thread,
//!   weight 2) runs a fixed request count. The cold session's share of
//!   served pool batches during its window is reported under
//!   deficit-weighted round-robin and under the FIFO ablation; the
//!   acceptance bar is cold share within 2x of its weight-proportional
//!   share under DRR, with every response checksum identical to the
//!   uncontended reference.
//! * **Coalescing**: concurrent fingerprint-identical requests
//!   (same `n`, distinct seeds) against a `max_inflight=1` service.
//!   Queued requests must coalesce (`coalesced_requests > 0` is
//!   asserted — the CI smoke gate) and every response must equal its
//!   separately-evaluated reference.
//! * **Fault recovery**: the same closed-loop load against a service
//!   whose session config carries a seeded [`mozart_core::FaultPlan`]
//!   injecting task-phase panics (plus one deterministic panic so even
//!   smoke runs see a fault). Every faulted request must recover through
//!   the retry layer with a bit-identical response, no request may fail,
//!   and on runs of ≥ 40 requests the faulty wall time must stay within
//!   1.3x of the fault-free wall time.
//! * **Tracing overhead**: the identical closed-loop load with the
//!   observability layer off, then on. On runs of ≥ 40 requests the
//!   tracing-on wall time must stay within 1.05x of tracing-off (plus a
//!   small smoke-run slack), bodies must be bit-identical both ways,
//!   and the tracing-on run's histogram-derived p50/p99/p999 — end to
//!   end, admission wait, and per executor phase — land in the JSON
//!   snapshot.
//! * **Overload**: the closed-loop peak goodput of the adaptive
//!   (AIMD-limited) service is measured, then a paced open-loop drive
//!   offers 2x that rate through `try_call`. Excess load must shed
//!   with a *typed* error (`saturated`/`queue_shed`/`over_memory` —
//!   anything else aborts the bench), every admitted response must be
//!   bit-identical to the reference, and on runs of ≥ 40 *offered*
//!   requests the admitted goodput must stay ≥ 70% of the closed-loop
//!   peak. The statically pinned `max_inflight` ablation runs under
//!   the same offered load for comparison.
//! * **Breaker**: a deterministic fault budget opens the black_scholes
//!   circuit breaker; the open-state fast-fail latency must be ≥ 5x
//!   under the healthy evaluation latency, and once the faults clear
//!   the pipeline must recover within exactly one half-open probe.
//!
//! Env knobs: `MOZART_SERVE_CLIENTS` (default 4),
//! `MOZART_SERVE_REQUESTS` per client (default 60, scaled by
//! `MOZART_BENCH_SCALE`), `MOZART_SERVE_N` elements per request
//! (default 16384, scaled), plus the usual `MOZART_BENCH_*`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mozart_bench::{write_results, BenchOpts};
use mozart_core::{Config, FaultKind, FaultPhase, FaultPlan, FaultPoint, MozartContext};
use mozart_serve::{HistogramSnapshot, PipelineService, Request, ServeError, ServiceMetrics};
use workloads::black_scholes as bs;

const WORKERS: usize = 4;

struct ModeResult {
    name: &'static str,
    wall: Duration,
    latencies: Vec<Duration>,
}

impl ModeResult {
    fn requests(&self) -> usize {
        self.latencies.len()
    }

    fn rps(&self) -> f64 {
        self.requests() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
}

/// Run `clients` closed-loop threads, each issuing `requests` calls of
/// `work`, and collect per-request latencies.
fn drive(
    name: &'static str,
    clients: usize,
    requests: usize,
    work: impl Fn(usize, usize) + Send + Sync,
) -> ModeResult {
    let work = &work;
    let t0 = Instant::now();
    let latencies = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(requests);
                    for r in 0..requests {
                        let t = Instant::now();
                        work(c, r);
                        lat.push(t.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    ModeResult {
        name,
        wall: t0.elapsed(),
        latencies,
    }
}

/// Result of one fair-share run (see the module docs).
struct FairShare {
    /// Total batches served per session over the cold session's window:
    /// `(hot1, hot2, cold)`.
    batch_deltas: [u64; 3],
    /// Of those, batches served by *pool workers* — the contended
    /// capacity the scheduler divides; submitting callers always run
    /// their own jobs, so their share is demand, not scheduling.
    worker_deltas: [u64; 3],
    /// Cold session wall time for its fixed request count.
    cold_wall: Duration,
    /// Every response (hot and cold) matched its reference body.
    checksums_ok: bool,
}

impl FairShare {
    /// Cold's share of worker-served batches (the scheduled resource);
    /// falls back to the total-batch share when the pool workers never
    /// ran in the window (e.g. a single-core host drains every job on
    /// its caller).
    fn cold_share(&self) -> f64 {
        let workers: u64 = self.worker_deltas.iter().sum();
        if workers > 0 {
            return self.worker_deltas[2] as f64 / workers as f64;
        }
        self.cold_demand_share()
    }

    /// Cold's share of *all* batches in the window — the ceiling a
    /// closed-loop session can reach: one thread can only demand so
    /// much, no scheduler can serve batches it never submits.
    fn cold_demand_share(&self) -> f64 {
        let total: u64 = self.batch_deltas.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.batch_deltas[2] as f64 / total as f64
    }

    /// The share cold is *entitled* to: its weight-proportional share
    /// of the pool, capped by what it actually demanded (a closed-loop
    /// client that submits 20% of the load is entitled to at most 20%,
    /// whatever its weight).
    fn cold_entitled_share(&self, weight_share: f64) -> f64 {
        weight_share.min(self.cold_demand_share())
    }
}

/// Expected response body for one `(n, seed)` black_scholes request.
fn reference_body(n: usize, seed: u64) -> String {
    let s = bs::mkl_base(&bs::generate(n, seed));
    format!("call_sum={:.6} put_sum={:.6}", s.call_sum, s.put_sum)
}

/// 2 hot sessions (2 threads each, weight 1) flood the service while a
/// cold session (1 thread, weight 2) runs `cold_requests`; per-session
/// batch shares are measured over the cold session's window.
fn fair_share_run(
    fair: bool,
    cold_requests: usize,
    n: usize,
    session_config: &Config,
) -> FairShare {
    // Fine-grained batches: many scheduling decisions per job, so the
    // measured shares reflect the pick policy rather than a handful of
    // coarse claims.
    let mut session_config = session_config.clone();
    session_config.batch_override = Some(((n as u64) / 32).max(256));
    // Admission must not be the bottleneck here: its queue is FIFO by
    // contract, so contention has to land on the *pool*, where the
    // deficit-weighted pick arbitrates — every session's evaluation
    // runs concurrently and the pool workers choose whose batches to
    // serve.
    let service = PipelineService::builder()
        .workers(WORKERS)
        .max_inflight(8)
        .queue_depth(32)
        .session_config(session_config)
        .coalescing(false) // isolate scheduling from request merging
        .fair_scheduling(fair)
        .builtin_pipelines()
        .build();
    let hot1 = Arc::new(service.session());
    let hot2 = Arc::new(service.session());
    let cold = Arc::new(service.session());
    cold.set_weight(2);

    let seeds = [11u64, 22, 33];
    let refs: Vec<String> = seeds.iter().map(|&s| reference_body(n, s)).collect();
    // Warm inputs + plan cache so the window measures steady state.
    for (i, &seed) in seeds.iter().enumerate() {
        let resp = hot1
            .call(
                "black_scholes",
                &Request::new().with("n", n).with("seed", seed),
            )
            .expect("warmup");
        assert_eq!(resp.body, refs[i], "warmup checksum");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicBool::new(true));
    let before = service.stats().pool;
    let batches_of = |stats: &mozart_core::PoolStats, id: u64| {
        stats
            .sessions
            .iter()
            .find(|s| s.session == id)
            .map(|s| (s.batches, s.worker_batches))
            .unwrap_or((0, 0))
    };
    let (cold_wall, after) = std::thread::scope(|s| {
        let mut hot_threads = Vec::new();
        for (session, seed_idx) in [(&hot1, 0usize), (&hot1, 0), (&hot2, 1), (&hot2, 1)] {
            let session = Arc::clone(session);
            let stop = stop.clone();
            let ok = ok.clone();
            let req = Request::new().with("n", n).with("seed", seeds[seed_idx]);
            let want = refs[seed_idx].clone();
            hot_threads.push(s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match session.call("black_scholes", &req) {
                        Ok(resp) => {
                            if resp.body != want {
                                ok.store(false, Ordering::Relaxed);
                            }
                        }
                        Err(e) => panic!("hot request failed: {e}"),
                    }
                }
            }));
        }
        let t0 = Instant::now();
        let req = Request::new().with("n", n).with("seed", seeds[2]);
        for _ in 0..cold_requests {
            let resp = cold.call("black_scholes", &req).expect("cold request");
            if resp.body != refs[2] {
                ok.store(false, Ordering::Relaxed);
            }
        }
        let cold_wall = t0.elapsed();
        let after = service.stats().pool;
        stop.store(true, Ordering::Relaxed);
        for h in hot_threads {
            h.join().expect("hot thread");
        }
        (cold_wall, after)
    });

    let delta = |id: u64| {
        let (b0, w0) = batches_of(&before, id);
        let (b1, w1) = batches_of(&after, id);
        (b1 - b0, w1 - w0)
    };
    let (h1, h2, c) = (delta(hot1.id()), delta(hot2.id()), delta(cold.id()));
    FairShare {
        batch_deltas: [h1.0, h2.0, c.0],
        worker_deltas: [h1.1, h2.1, c.1],
        cold_wall,
        checksums_ok: ok.load(Ordering::Relaxed),
    }
}

/// Result of the coalescing phase.
struct Coalescing {
    requests: u64,
    coalesced: u64,
    checksums_ok: bool,
}

/// Hammer a `max_inflight=1` service with fingerprint-identical
/// requests from several threads; queued requests must coalesce
/// through the generic split-layer path and every response must match
/// its separately-evaluated reference. `pipeline` + `request` + `want`
/// parameterize the workload, so one harness gates the vector and the
/// image pipeline families.
fn coalescing_run(
    clients: usize,
    requests: usize,
    pipeline: &str,
    request: impl Fn(u64) -> Request + Sync,
    want: impl Fn(u64) -> String + Sync,
    session_config: &Config,
) -> Coalescing {
    let service = PipelineService::builder()
        .workers(WORKERS)
        .max_inflight(1)
        .queue_depth(4 * clients.max(1))
        .session_config(session_config.clone())
        .builtin_pipelines()
        .build();
    let ok = Arc::new(AtomicBool::new(true));
    let served = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let session = service.session();
                let ok = ok.clone();
                let served = served.clone();
                // Distinct seed per client: coalesced batches really
                // concatenate different inputs and must split the
                // outputs back correctly.
                let seed = 100 + c as u64;
                let want = want(seed);
                let req = request(seed);
                s.spawn(move || {
                    for _ in 0..requests {
                        let resp = session.call(pipeline, &req).expect("request");
                        if resp.body != want {
                            ok.store(false, Ordering::Relaxed);
                        }
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    Coalescing {
        requests: served.load(Ordering::Relaxed),
        coalesced: service.stats().coalesced_requests,
        checksums_ok: ok.load(Ordering::Relaxed),
    }
}

/// Result of the fault-recovery phase.
struct FaultRecovery {
    requests: u64,
    injected: u64,
    retries: u64,
    clean_wall: Duration,
    faulty_wall: Duration,
    checksums_ok: bool,
}

impl FaultRecovery {
    fn overhead_ratio(&self) -> f64 {
        self.faulty_wall.as_secs_f64() / self.clean_wall.as_secs_f64().max(1e-9)
    }
}

/// Drive the closed-loop load twice — fault-free, then with a seeded
/// task-panic plan — and compare wall time. The per-check rate is tiny
/// (panics are injected per *batch boundary check*, of which a request
/// has hundreds), so roughly a percent of requests hit a fault; one
/// deterministic extra point guarantees at least one fault even on
/// smoke-sized runs.
fn fault_recovery_run(
    clients: usize,
    requests: usize,
    n: usize,
    session_config: &Config,
) -> FaultRecovery {
    mozart_core::faultinject::silence_injected_panics();
    let want = reference_body(n, 42);
    let run = |plan: Option<Arc<FaultPlan>>| {
        let mut cfg = session_config.clone();
        cfg.fault_plan = plan;
        let service = PipelineService::builder()
            .workers(WORKERS)
            .max_inflight(clients)
            .queue_depth(2 * clients)
            .max_retries(4)
            .retry_backoff_ms(1)
            .session_config(cfg)
            .coalescing(false)
            .builtin_pipelines()
            .build();
        let sessions: Vec<_> = (0..clients).map(|_| service.session()).collect();
        // Warm inputs + plan cache outside the measured window (the
        // warmup itself may hit the deterministic fault and recover).
        sessions[0]
            .call(
                "black_scholes",
                &Request::new().with("n", n).with("seed", 42u64),
            )
            .expect("fault-recovery warmup");
        let ok = Arc::new(AtomicBool::new(true));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for session in &sessions {
                let ok = ok.clone();
                let want = &want;
                let req = Request::new().with("n", n).with("seed", 42u64);
                s.spawn(move || {
                    for _ in 0..requests {
                        // No request may fail: every injected panic must
                        // be absorbed by the retry layer.
                        let resp = session
                            .call("black_scholes", &req)
                            .expect("fault-recovery request");
                        if resp.body != *want {
                            ok.store(false, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let wall = t0.elapsed();
        let stats = service.stats();
        assert_eq!(stats.failed, 0, "no request may fail under injection");
        (wall, stats, ok.load(Ordering::Relaxed))
    };

    let (clean_wall, _, clean_ok) = run(None);
    let plan = Arc::new(
        FaultPlan::seeded(0xFA17, 50, Some(FaultPhase::Task), FaultKind::Panic)
            .point(FaultPoint::once(FaultPhase::Task, FaultKind::Panic)),
    );
    let (faulty_wall, stats, faulty_ok) = run(Some(plan.clone()));
    FaultRecovery {
        requests: (clients * requests) as u64,
        injected: plan.fired(),
        retries: stats.retries,
        clean_wall,
        faulty_wall,
        checksums_ok: clean_ok && faulty_ok,
    }
}

/// Result of the tracing-overhead phase.
struct TracingOverhead {
    off_wall: Duration,
    on_wall: Duration,
    checksums_ok: bool,
    /// Serve-side histograms from the tracing-on run.
    metrics: ServiceMetrics,
}

impl TracingOverhead {
    fn ratio(&self) -> f64 {
        self.on_wall.as_secs_f64() / self.off_wall.as_secs_f64().max(1e-9)
    }
}

/// Drive the identical closed-loop load with tracing off and then on.
/// The observability layer must be nearly free (the gate in `main`
/// bounds the wall-time ratio) and must not perturb results: bodies are
/// checked against the same reference both ways.
fn tracing_overhead_run(
    clients: usize,
    requests: usize,
    n: usize,
    session_config: &Config,
) -> TracingOverhead {
    let want = reference_body(n, 42);
    let run = |tracing: bool| {
        let service = PipelineService::builder()
            .workers(WORKERS)
            .max_inflight(clients)
            .queue_depth(2 * clients)
            .session_config(session_config.clone())
            .coalescing(false)
            .tracing(tracing)
            .builtin_pipelines()
            .build();
        let sessions: Vec<_> = (0..clients).map(|_| service.session()).collect();
        let req = Request::new().with("n", n).with("seed", 42u64);
        // Warm inputs + plan cache outside the measured window.
        sessions[0].call("black_scholes", &req).expect("warmup");
        let ok = Arc::new(AtomicBool::new(true));
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for session in &sessions {
                let ok = ok.clone();
                let want = &want;
                let req = req.clone();
                s.spawn(move || {
                    for _ in 0..requests {
                        let resp = session
                            .call("black_scholes", &req)
                            .expect("tracing-overhead request");
                        if resp.body != *want {
                            ok.store(false, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        (t0.elapsed(), service, ok.load(Ordering::Relaxed))
    };
    let (off_wall, _, off_ok) = run(false);
    let (on_wall, traced, on_ok) = run(true);
    let metrics = traced.metrics().expect("tracing was on");
    TracingOverhead {
        off_wall,
        on_wall,
        checksums_ok: off_ok && on_ok,
        metrics,
    }
}

/// Result of one paced open-loop overload run (offered load 2x the
/// measured closed-loop peak).
struct Overload {
    name: &'static str,
    offered: u64,
    admitted: u64,
    shed: u64,
    wall: Duration,
    checksums_ok: bool,
    /// The admission limit at the end of the run (AIMD-moved for the
    /// adaptive service, pinned for the static ablation).
    admission_limit: usize,
    queue_shed: u64,
}

impl Overload {
    fn goodput(&self) -> f64 {
        self.admitted as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Pace `total` `try_call` arrivals at `offered_rps` across `threads`
/// open-loop threads (each thread follows its own due-time schedule,
/// so a slow admitted call never delays the offered rate for long).
/// Excess load must shed with a typed overload error — anything else
/// panics the bench — and every admitted body is checked against
/// `want`.
fn overload_run(
    name: &'static str,
    service: &PipelineService,
    offered_rps: f64,
    total: usize,
    threads: usize,
    n: usize,
    want: &str,
) -> Overload {
    let admitted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let ok = AtomicBool::new(true);
    let threads = threads.max(1);
    let per_thread = total.div_ceil(threads);
    let interval = Duration::from_secs_f64(threads as f64 / offered_rps.max(1.0));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let session = service.session();
            let (admitted, shed, ok) = (&admitted, &shed, &ok);
            let req = Request::new().with("n", n).with("seed", 42u64);
            s.spawn(move || {
                let start = Instant::now();
                for i in 0..per_thread {
                    let due = start + interval.mul_f64(i as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    match session.try_call("black_scholes", &req) {
                        Ok(resp) => {
                            admitted.fetch_add(1, Ordering::Relaxed);
                            if resp.body != want {
                                ok.store(false, Ordering::Relaxed);
                            }
                        }
                        Err(
                            ServeError::Saturated { .. }
                            | ServeError::QueueShed { .. }
                            | ServeError::OverMemory { .. },
                        ) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("overload shed must be typed, got {e}"),
                    }
                }
            });
        }
    });
    let (limit, _) = service.admission_limit();
    Overload {
        name,
        offered: (per_thread * threads) as u64,
        admitted: admitted.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        wall: t0.elapsed(),
        checksums_ok: ok.load(Ordering::Relaxed),
        admission_limit: limit,
        queue_shed: service.stats().queue_shed,
    }
}

/// Result of the breaker phase.
struct BreakerPhase {
    fastfail_p50: Duration,
    eval_p50: Duration,
    recovered_in_one_probe: bool,
    breaker_shed: u64,
}

impl BreakerPhase {
    /// How many open-state fast-fails fit in one healthy evaluation.
    fn ratio(&self) -> f64 {
        self.eval_p50.as_secs_f64() / self.fastfail_p50.as_secs_f64().max(1e-9)
    }
}

fn median(mut lat: Vec<Duration>) -> Duration {
    lat.sort_unstable();
    lat[lat.len() / 2]
}

/// Open the black_scholes breaker with a deterministic fault budget,
/// measure the open-state fast-fail latency against the healthy
/// evaluation latency, and verify recovery within one half-open probe
/// once the faults clear.
fn breaker_run(n: usize, session_config: &Config) -> BreakerPhase {
    const THRESHOLD: u32 = 4;
    let cooldown = Duration::from_millis(250);
    let mut cfg = session_config.clone();
    // Single-batch evaluations: concurrent batches would race for the
    // fault budget (several checks fire per call), breaking the
    // one-failure-per-call accounting below. With one batch per call,
    // each injected task-phase error aborts its evaluation at the first
    // fault check and consumes exactly one budget point: a budget equal
    // to the threshold heals the pipeline the moment the breaker opens,
    // and the first probe must succeed.
    cfg.batch_override = Some((n as u64).max(1));
    cfg.fault_plan = Some(Arc::new(FaultPlan::new().point(
        FaultPoint::once(FaultPhase::Task, FaultKind::Error).times(THRESHOLD as u64),
    )));
    let service = PipelineService::builder()
        .workers(WORKERS)
        .session_config(cfg)
        // No retries: every injected fault is a post-retry transient
        // failure, so THRESHOLD calls open the breaker deterministically.
        .max_retries(0)
        .coalescing(false)
        .breaker(THRESHOLD, cooldown)
        .builtin_pipelines()
        .build();
    let session = service.session();
    let req = Request::new().with("n", n).with("seed", 42u64);
    let want = reference_body(n, 42);

    for i in 0..THRESHOLD {
        let err = session
            .call("black_scholes", &req)
            .expect_err("injected fault");
        assert!(err.is_transient(), "call {i}: {err}");
    }
    assert_eq!(
        service.breaker_states().first().map(|s| s.1),
        Some("open"),
        "breaker must open after {THRESHOLD} consecutive transient failures"
    );

    // Open: every call fast-fails with the typed error. All 32 finish
    // well inside the cooldown, so none of them becomes the probe.
    let mut fastfail = Vec::with_capacity(32);
    for _ in 0..32 {
        let t = Instant::now();
        let err = session
            .call("black_scholes", &req)
            .expect_err("open breaker");
        fastfail.push(t.elapsed());
        assert_eq!(err.kind(), "circuit_open", "{err}");
    }
    let breaker_shed = service.stats().breaker_shed;

    // The fault budget is spent: after one cooldown the next request is
    // the half-open probe, and it must succeed and close the breaker.
    std::thread::sleep(cooldown + Duration::from_millis(50));
    let probe = session.call("black_scholes", &req);
    let recovered_in_one_probe = matches!(&probe, Ok(resp) if resp.body == want);
    assert_eq!(
        service.breaker_states().first().map(|s| s.1),
        Some("closed"),
        "one successful probe must close the breaker"
    );

    let mut eval = Vec::with_capacity(16);
    for _ in 0..16 {
        let t = Instant::now();
        let resp = session.call("black_scholes", &req).expect("healthy call");
        eval.push(t.elapsed());
        assert_eq!(
            resp.body, want,
            "healthy responses must match the reference"
        );
    }
    BreakerPhase {
        fastfail_p50: median(fastfail),
        eval_p50: median(eval),
        recovered_in_one_probe,
        breaker_shed,
    }
}

/// One histogram as a JSON object: count plus derived quantiles in
/// microseconds (samples are recorded in nanoseconds).
fn hist_json(snap: &HistogramSnapshot) -> String {
    format!(
        "{{ \"count\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"p999_us\": {:.1}, \"max_us\": {:.1} }}",
        snap.count,
        snap.p50() as f64 / 1e3,
        snap.p99() as f64 / 1e3,
        snap.p999() as f64 / 1e3,
        snap.max as f64 / 1e3
    )
}

fn main() {
    let opts = BenchOpts::from_env();
    let clients = std::env::var("MOZART_SERVE_CLIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize)
        .max(1);
    let requests = std::env::var("MOZART_SERVE_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| opts.size(60))
        .max(2);
    let n = std::env::var("MOZART_SERVE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| opts.size(1 << 14));

    println!(
        "serve_throughput: {clients} clients x {requests} requests, \
         black_scholes n={n}, workers={WORKERS}"
    );
    workloads::register_all_defaults();
    let inputs = Arc::new(bs::generate(n, 42));
    // Pin the batch size so every mode runs multi-batch stages (and so
    // exercises its worker pool) regardless of the host's L2 size.
    let mut session_config = Config::with_workers(WORKERS);
    session_config.batch_override = Some((n as u64 / 8).max(1024));

    // ---- Mode A: shared service (pool + plan cache) ----
    let service = PipelineService::builder()
        .workers(WORKERS)
        .max_inflight(clients)
        .queue_depth(2 * clients)
        .session_config(session_config.clone())
        .builtin_pipelines()
        .build();
    // One session per client thread, opened up front.
    let sessions: Vec<_> = (0..clients).map(|_| service.session()).collect();
    let req = Request::new().with("n", n).with("seed", 42u64);
    // Warm the input memoization + plan cache once so the measured
    // window shows steady-state serving (the first request pays
    // generation + planning, like any cold start).
    sessions[0].call("black_scholes", &req).expect("warmup");
    let service_res = drive("service", clients, requests, |c, _| {
        sessions[c]
            .call("black_scholes", &req)
            .expect("service request");
    });
    let cache = service.stats().plan_cache;

    // ---- Mode B: independent context (own pool) per request ----
    let inp = inputs.clone();
    let cfg = session_config.clone();
    let independent_res = drive("independent", clients, requests, move |_, _| {
        let ctx = MozartContext::new(cfg.clone());
        bs::mkl_mozart(&inp, &ctx).expect("independent request");
    });

    // ---- Mode C: one independent context per client, reused ----
    let inp = inputs.clone();
    let contexts: Vec<MozartContext> = (0..clients)
        .map(|_| MozartContext::new(session_config.clone()))
        .collect();
    let contexts = &contexts;
    let reused_res = drive("independent-reused", clients, requests, move |c, _| {
        bs::mkl_mozart(&inp, &contexts[c]).expect("reused request");
    });

    // ---- Report ----
    let modes = [&service_res, &independent_res, &reused_res];
    println!(
        "\n{:>20} {:>10} {:>12} {:>12} {:>12}",
        "mode", "req/s", "p50", "p99", "wall"
    );
    for m in modes {
        println!(
            "{:>20} {:>10.1} {:>11.3}ms {:>11.3}ms {:>11.3}s",
            m.name,
            m.rps(),
            m.percentile(0.50).as_secs_f64() * 1e3,
            m.percentile(0.99).as_secs_f64() * 1e3,
            m.wall.as_secs_f64()
        );
    }
    let hit_rate = cache.hit_rate();
    println!(
        "plan cache: {} hits / {} misses ({:.1}% hit rate, {} entries)",
        cache.hits,
        cache.misses,
        hit_rate * 100.0,
        cache.entries
    );
    let pool = service.stats().pool;
    println!(
        "shared pool: {} jobs over {} sessions, per-session batches {:?}",
        pool.jobs,
        pool.sessions.len(),
        pool.sessions.iter().map(|s| s.batches).collect::<Vec<_>>()
    );
    let service_wins = service_res.rps() > independent_res.rps();
    let hit_rate_ok = hit_rate > 0.90;
    println!("acceptance: service > independent: {service_wins}; hit rate > 90%: {hit_rate_ok}");

    // ---- Fair-share: 2 hot + 1 cold (weight 2), DRR vs FIFO ----
    // A long enough window that per-pick noise averages out even on
    // small hosts (each cold request is ~32 fine-grained batches).
    let cold_requests = (requests * 4).clamp(40, 240);
    let fair = fair_share_run(true, cold_requests, n, &session_config);
    let fifo = fair_share_run(false, cold_requests, n, &session_config);
    // Cold holds weight 2 of 4 — its weight-proportional share of the
    // contended pool is 1/2, capped by its own closed-loop demand; the
    // bar is within 2x of that entitlement.
    let weight_share = 0.5;
    let entitled = fair.cold_entitled_share(weight_share);
    let cold_within_2x = fair.cold_share() >= entitled / 2.0;
    println!("\nfair-share (2 hot sessions x 2 threads vs 1 cold thread, weights 1/1/2):");
    for (name, run) in [("drr", &fair), ("fifo", &fifo)] {
        println!(
            "  {:>5}: batches hot={}/{} cold={}; worker-served hot={}/{} cold={} \
             cold_share={:.3} cold_wall={:.3}s checksums_ok={}",
            name,
            run.batch_deltas[0],
            run.batch_deltas[1],
            run.batch_deltas[2],
            run.worker_deltas[0],
            run.worker_deltas[1],
            run.worker_deltas[2],
            run.cold_share(),
            run.cold_wall.as_secs_f64(),
            run.checksums_ok
        );
    }
    println!(
        "  acceptance: cold share {:.3} within 2x of entitled share {entitled:.3} \
         (= min(weight share {weight_share}, demand share {:.3})): {cold_within_2x} \
         (fifo baseline {:.3})",
        fair.cold_share(),
        fair.cold_demand_share(),
        fifo.cold_share()
    );
    assert!(
        cold_within_2x,
        "cold session share {:.3} fell below half its entitled share {entitled:.3} under DRR",
        fair.cold_share()
    );
    assert!(
        fair.checksums_ok && fifo.checksums_ok,
        "fair-share runs must produce reference-identical responses"
    );

    // ---- Coalescing: fingerprint-identical requests share evaluations ----
    let co = coalescing_run(
        clients.max(3),
        requests,
        "black_scholes",
        |seed| Request::new().with("n", n).with("seed", seed),
        |seed| reference_body(n, seed),
        &session_config,
    );
    println!(
        "coalescing (vector): {} requests, {} served as followers ({:.1}%), checksums_ok={}",
        co.requests,
        co.coalesced,
        100.0 * co.coalesced as f64 / co.requests.max(1) as f64,
        co.checksums_ok
    );
    // Image pipeline family through the SAME generic coalescer: rows
    // stack through ImageSplit's Concat capability, no pipeline concat
    // code anywhere.
    let (img_w, img_h) = (160usize, 120usize);
    let co_img = coalescing_run(
        clients.max(3),
        requests,
        "nashville",
        |seed| {
            Request::new()
                .with("width", img_w)
                .with("height", img_h)
                .with("seed", seed)
        },
        |seed| {
            let img = workloads::images::generate(img_w, img_h, seed);
            let ctx = workloads::mozart_context(WORKERS);
            let s = workloads::images::nashville_mozart(&img, &ctx).expect("reference");
            format!("mean={:.6}", s.mean)
        },
        &session_config,
    );
    println!(
        "coalescing (image): {} requests, {} served as followers ({:.1}%), checksums_ok={}",
        co_img.requests,
        co_img.coalesced,
        100.0 * co_img.coalesced as f64 / co_img.requests.max(1) as f64,
        co_img.checksums_ok
    );
    // CI smoke gates: both pipeline families must actually coalesce,
    // and coalesced responses must be bit-identical.
    assert!(
        co.coalesced > 0,
        "expected nonzero coalesced_requests on the fingerprint-identical vector workload"
    );
    assert!(
        co.checksums_ok,
        "coalesced vector responses must match separate evaluation"
    );
    assert!(
        co_img.coalesced > 0,
        "expected nonzero coalesced_requests on the fingerprint-identical image workload"
    );
    assert!(
        co_img.checksums_ok,
        "coalesced image responses must match separate evaluation"
    );

    // ---- Fault recovery: seeded panics absorbed by the retry layer ----
    let fr = fault_recovery_run(clients, requests, n, &session_config);
    let fr_ratio = fr.overhead_ratio();
    // Wall-clock noise dominates tiny runs; the 1.3x bar is only
    // meaningful with a reasonable request count.
    let fr_ratio_asserted = fr.requests >= 40;
    println!(
        "fault recovery: {} requests, {} injected faults, {} retries, \
         clean {:.3}s vs faulty {:.3}s (ratio {:.3}), checksums_ok={}",
        fr.requests,
        fr.injected,
        fr.retries,
        fr.clean_wall.as_secs_f64(),
        fr.faulty_wall.as_secs_f64(),
        fr_ratio,
        fr.checksums_ok
    );
    assert!(fr.injected >= 1, "the seeded plan must fire at least once");
    assert!(
        fr.checksums_ok,
        "recovered responses must be bit-identical to fault-free responses"
    );
    if fr_ratio_asserted {
        assert!(
            fr_ratio <= 1.3,
            "fault recovery overhead {fr_ratio:.3}x exceeds the 1.3x bar"
        );
    }

    // ---- Tracing overhead + histogram-derived latency quantiles ----
    let to = tracing_overhead_run(clients, requests, n, &session_config);
    let to_ratio = to.ratio();
    // Same noise rule as fault recovery: the ratio gate only means
    // something with a reasonable request count, and smoke-sized walls
    // get a small absolute slack on top of the 5% bar.
    let to_ratio_asserted = clients * requests >= 40;
    println!(
        "\ntracing overhead: off {:.3}s vs on {:.3}s (ratio {:.3}), checksums_ok={}",
        to.off_wall.as_secs_f64(),
        to.on_wall.as_secs_f64(),
        to_ratio,
        to.checksums_ok
    );
    println!("latency histograms (tracing on):");
    let mut hists: Vec<(&str, &HistogramSnapshot)> = vec![
        ("e2e", &to.metrics.e2e),
        ("admission_wait", &to.metrics.admission_wait),
    ];
    hists.extend(to.metrics.phases.iter().map(|(name, h)| (*name, h)));
    println!(
        "  {:>16} {:>8} {:>11} {:>11} {:>11}",
        "phase", "count", "p50", "p99", "p999"
    );
    for (name, h) in &hists {
        println!(
            "  {:>16} {:>8} {:>10.3}ms {:>10.3}ms {:>10.3}ms",
            name,
            h.count,
            h.p50() as f64 / 1e6,
            h.p99() as f64 / 1e6,
            h.p999() as f64 / 1e6
        );
    }
    assert!(
        to.checksums_ok,
        "tracing must not perturb results: bodies must match the untraced reference"
    );
    assert!(
        to.metrics.e2e.count >= (clients * requests) as u64,
        "every traced request must land in the e2e histogram"
    );
    if to_ratio_asserted {
        assert!(
            to.on_wall.as_secs_f64() <= to.off_wall.as_secs_f64() * 1.05 + 0.05,
            "tracing overhead {to_ratio:.3}x exceeds the 1.05x bar"
        );
    }

    // ---- Overload: paced open-loop drive at 2x the closed-loop peak ----
    // Peak goodput first: the adaptive service (no pinned max_inflight,
    // AIMD + CoDel on) under the same closed-loop drive as mode A.
    let adaptive_service = PipelineService::builder()
        .workers(WORKERS)
        .queue_depth(2 * clients)
        .session_config(session_config.clone())
        .coalescing(false)
        .builtin_pipelines()
        .build();
    let adaptive_sessions: Vec<_> = (0..clients).map(|_| adaptive_service.session()).collect();
    adaptive_sessions[0]
        .call("black_scholes", &req)
        .expect("overload warmup");
    let peak = drive("adaptive-peak", clients, requests, |c, _| {
        adaptive_sessions[c]
            .call("black_scholes", &req)
            .expect("peak request");
    });
    let peak_rps = peak.rps();
    let want = reference_body(n, 42);
    let offered_rps = 2.0 * peak_rps;
    let offered_total = 2 * clients * requests;
    let overload_threads = 2 * clients;
    let over_adaptive = overload_run(
        "adaptive",
        &adaptive_service,
        offered_rps,
        offered_total,
        overload_threads,
        n,
        &want,
    );
    // The static ablation: the pre-PR pinned limit under the identical
    // offered load.
    let static_service = PipelineService::builder()
        .workers(WORKERS)
        .max_inflight(WORKERS)
        .queue_depth(2 * clients)
        .session_config(session_config.clone())
        .coalescing(false)
        .builtin_pipelines()
        .build();
    static_service
        .session()
        .call("black_scholes", &req)
        .expect("static overload warmup");
    let over_static = overload_run(
        "static",
        &static_service,
        offered_rps,
        offered_total,
        overload_threads,
        n,
        &want,
    );
    // The goodput bar keys off the *offered* count (2x the closed-loop
    // total), so even CI smoke runs offer enough load to gate on.
    let overload_asserted = offered_total >= 40;
    let goodput_frac = over_adaptive.goodput() / peak_rps.max(1e-9);
    let goodput_ok = goodput_frac >= 0.70;
    println!(
        "\noverload (offered {:.1} req/s = 2x peak {:.1} req/s, {} paced threads):",
        offered_rps, peak_rps, overload_threads
    );
    for o in [&over_adaptive, &over_static] {
        println!(
            "  {:>8}: offered {} admitted {} shed {} goodput {:.1} req/s \
             ({:.1}% of peak) limit={} queue_shed={} checksums_ok={}",
            o.name,
            o.offered,
            o.admitted,
            o.shed,
            o.goodput(),
            100.0 * o.goodput() / peak_rps.max(1e-9),
            o.admission_limit,
            o.queue_shed,
            o.checksums_ok
        );
    }
    println!(
        "  acceptance: goodput {:.1}% of peak >= 70%: {goodput_ok} (asserted: {overload_asserted})",
        100.0 * goodput_frac
    );
    for o in [&over_adaptive, &over_static] {
        assert!(
            o.checksums_ok,
            "{}: admitted responses must be bit-identical to the reference",
            o.name
        );
        assert!(o.admitted > 0, "{}: overload starved every request", o.name);
        assert_eq!(
            o.admitted + o.shed,
            o.offered,
            "{}: every offered request must be admitted or typed-shed",
            o.name
        );
    }
    if overload_asserted {
        assert!(
            goodput_ok,
            "overload goodput {:.1} req/s fell below 70% of the {peak_rps:.1} req/s peak",
            over_adaptive.goodput()
        );
    }

    // ---- Breaker: open-state fast-fail + one-probe recovery ----
    let br = breaker_run(n, &session_config);
    let br_ratio = br.ratio();
    println!(
        "breaker: fast-fail p50 {:.1}us vs eval p50 {:.1}us (ratio {:.1}x), \
         {} fast-fails shed, recovered_in_one_probe={}",
        br.fastfail_p50.as_secs_f64() * 1e6,
        br.eval_p50.as_secs_f64() * 1e6,
        br_ratio,
        br.breaker_shed,
        br.recovered_in_one_probe
    );
    assert!(
        br.recovered_in_one_probe,
        "the first half-open probe after the faults clear must succeed"
    );
    assert_eq!(
        br.breaker_shed, 32,
        "every open-state call must shed through the breaker"
    );
    assert!(
        br_ratio >= 5.0,
        "open-breaker fast-fail ({:.1}us) must be well under evaluation latency ({:.1}us)",
        br.fastfail_p50.as_secs_f64() * 1e6,
        br.eval_p50.as_secs_f64() * 1e6
    );

    // ---- JSON snapshot ----
    let mut json = String::from("{\n  \"figure\": \"serve_throughput\",\n");
    json.push_str(&format!(
        "  \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
         \"pipeline\": \"black_scholes\",\n  \"n\": {n},\n  \"workers\": {WORKERS},\n"
    ));
    json.push_str("  \"modes\": {\n");
    for (i, m) in modes.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"requests\": {}, \"wall_seconds\": {:.6}, \
             \"requests_per_second\": {:.2}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}{}\n",
            m.name,
            m.requests(),
            m.wall.as_secs_f64(),
            m.rps(),
            m.percentile(0.50).as_secs_f64() * 1e3,
            m.percentile(0.99).as_secs_f64() * 1e3,
            if i + 1 < modes.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"plan_cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
         \"entries\": {} }},\n",
        cache.hits, cache.misses, hit_rate, cache.entries
    ));
    json.push_str("  \"fair_share\": {\n");
    for (name, run, comma) in [("drr", &fair, ","), ("fifo", &fifo, "")] {
        json.push_str(&format!(
            "    \"{}\": {{ \"hot1_batches\": {}, \"hot2_batches\": {}, \
             \"cold_batches\": {}, \"hot1_worker_batches\": {}, \
             \"hot2_worker_batches\": {}, \"cold_worker_batches\": {}, \
             \"cold_share\": {:.4}, \"cold_wall_seconds\": {:.6}, \
             \"checksums_ok\": {} }}{}\n",
            name,
            run.batch_deltas[0],
            run.batch_deltas[1],
            run.batch_deltas[2],
            run.worker_deltas[0],
            run.worker_deltas[1],
            run.worker_deltas[2],
            run.cold_share(),
            run.cold_wall.as_secs_f64(),
            run.checksums_ok,
            comma
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"coalescing\": {{ \"requests\": {}, \"coalesced_requests\": {}, \
         \"checksums_ok\": {} }},\n",
        co.requests, co.coalesced, co.checksums_ok
    ));
    json.push_str(&format!(
        "  \"coalescing_image\": {{ \"pipeline\": \"nashville\", \"width\": {img_w}, \
         \"height\": {img_h}, \"requests\": {}, \"coalesced_requests\": {}, \
         \"checksums_ok\": {} }},\n",
        co_img.requests, co_img.coalesced, co_img.checksums_ok
    ));
    json.push_str(&format!(
        "  \"fault_recovery\": {{ \"requests\": {}, \"injected_faults\": {}, \
         \"retries\": {}, \"clean_wall_seconds\": {:.6}, \"faulty_wall_seconds\": {:.6}, \
         \"overhead_ratio\": {fr_ratio:.4}, \"ratio_asserted\": {fr_ratio_asserted}, \
         \"checksums_ok\": {} }},\n",
        fr.requests,
        fr.injected,
        fr.retries,
        fr.clean_wall.as_secs_f64(),
        fr.faulty_wall.as_secs_f64(),
        fr.checksums_ok
    ));
    json.push_str(&format!(
        "  \"tracing_overhead\": {{ \"off_wall_seconds\": {:.6}, \
         \"on_wall_seconds\": {:.6}, \"overhead_ratio\": {to_ratio:.4}, \
         \"ratio_asserted\": {to_ratio_asserted}, \"checksums_ok\": {} }},\n",
        to.off_wall.as_secs_f64(),
        to.on_wall.as_secs_f64(),
        to.checksums_ok
    ));
    json.push_str("  \"latency_histograms\": {\n");
    for (i, (name, h)) in hists.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {}{}\n",
            hist_json(h),
            if i + 1 < hists.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"overload\": {{ \"peak_rps\": {peak_rps:.2}, \"offered_rps\": {offered_rps:.2}, \
         \"paced_threads\": {overload_threads},\n"
    ));
    for (o, comma) in [(&over_adaptive, ","), (&over_static, ",")] {
        json.push_str(&format!(
            "    \"{}\": {{ \"offered\": {}, \"admitted\": {}, \"shed\": {}, \
             \"wall_seconds\": {:.6}, \"goodput_rps\": {:.2}, \"admission_limit\": {}, \
             \"queue_shed\": {}, \"checksums_ok\": {} }}{}\n",
            o.name,
            o.offered,
            o.admitted,
            o.shed,
            o.wall.as_secs_f64(),
            o.goodput(),
            o.admission_limit,
            o.queue_shed,
            o.checksums_ok,
            comma
        ));
    }
    json.push_str(&format!(
        "    \"goodput_fraction_of_peak\": {goodput_frac:.4}, \
         \"ratio_asserted\": {overload_asserted} }},\n"
    ));
    json.push_str(&format!(
        "  \"breaker\": {{ \"fastfail_p50_us\": {:.2}, \"eval_p50_us\": {:.2}, \
         \"eval_over_fastfail_ratio\": {br_ratio:.1}, \"fastfail_shed\": {}, \
         \"recovered_in_one_probe\": {} }},\n",
        br.fastfail_p50.as_secs_f64() * 1e6,
        br.eval_p50.as_secs_f64() * 1e6,
        br.breaker_shed,
        br.recovered_in_one_probe
    ));
    json.push_str(&format!(
        "  \"acceptance\": {{ \"service_beats_independent\": {service_wins}, \
         \"hit_rate_gt_90\": {hit_rate_ok}, \"cold_entitled_share\": {entitled:.4}, \
         \"cold_within_2x_of_entitled_share\": {cold_within_2x}, \
         \"coalesced_nonzero\": {}, \"image_coalesced_nonzero\": {}, \
         \"fault_recovery_within_1_3x\": {}, \"tracing_overhead_within_1_05x\": {}, \
         \"overload_goodput_ge_70pct_peak\": {}, \
         \"overload_sheds_typed\": true, \
         \"breaker_fastfail_5x_under_eval\": {}, \
         \"breaker_one_probe_recovery\": {} }}\n}}\n",
        co.coalesced > 0,
        co_img.coalesced > 0,
        !fr_ratio_asserted || fr_ratio <= 1.3,
        !to_ratio_asserted || to.on_wall.as_secs_f64() <= to.off_wall.as_secs_f64() * 1.05 + 0.05,
        !overload_asserted || goodput_ok,
        br_ratio >= 5.0,
        br.recovered_in_one_probe
    ));
    write_results("BENCH_serve.json", &json);
    println!("wrote bench_results/BENCH_serve.json");
}
