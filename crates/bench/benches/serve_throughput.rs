//! Closed-loop serving throughput: N client threads issue repeated
//! Black Scholes pipeline requests against
//!
//! * **service** — one [`mozart_serve::PipelineService`]: a shared
//!   worker pool and a shared plan cache across all clients;
//! * **independent** — the pre-serve status quo: every request builds
//!   its own `MozartContext`, which spawns its own worker pool and
//!   replans from scratch;
//! * **independent-reused** — a softer baseline: one context (and pool)
//!   per client thread, reused across requests, but still replanning
//!   every evaluation.
//!
//! Reports aggregate requests/sec, per-request p50/p99 latency, and the
//! service's plan-cache hit rate; writes
//! `bench_results/BENCH_serve.json`. The acceptance bar for the serve
//! PR: the service beats `independent` on aggregate requests/sec with 4
//! concurrent clients and serves repeats at a >90% plan-cache hit rate.
//!
//! Env knobs: `MOZART_SERVE_CLIENTS` (default 4),
//! `MOZART_SERVE_REQUESTS` per client (default 60, scaled by
//! `MOZART_BENCH_SCALE`), `MOZART_SERVE_N` elements per request
//! (default 16384, scaled), plus the usual `MOZART_BENCH_*`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mozart_bench::{write_results, BenchOpts};
use mozart_core::{Config, MozartContext};
use mozart_serve::{PipelineService, Request};
use workloads::black_scholes as bs;

const WORKERS: usize = 4;

struct ModeResult {
    name: &'static str,
    wall: Duration,
    latencies: Vec<Duration>,
}

impl ModeResult {
    fn requests(&self) -> usize {
        self.latencies.len()
    }

    fn rps(&self) -> f64 {
        self.requests() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
}

/// Run `clients` closed-loop threads, each issuing `requests` calls of
/// `work`, and collect per-request latencies.
fn drive(
    name: &'static str,
    clients: usize,
    requests: usize,
    work: impl Fn(usize, usize) + Send + Sync,
) -> ModeResult {
    let work = &work;
    let t0 = Instant::now();
    let latencies = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(requests);
                    for r in 0..requests {
                        let t = Instant::now();
                        work(c, r);
                        lat.push(t.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });
    ModeResult {
        name,
        wall: t0.elapsed(),
        latencies,
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    let clients = std::env::var("MOZART_SERVE_CLIENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4usize)
        .max(1);
    let requests = std::env::var("MOZART_SERVE_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| opts.size(60))
        .max(2);
    let n = std::env::var("MOZART_SERVE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| opts.size(1 << 14));

    println!(
        "serve_throughput: {clients} clients x {requests} requests, \
         black_scholes n={n}, workers={WORKERS}"
    );
    workloads::register_all_defaults();
    let inputs = Arc::new(bs::generate(n, 42));
    // Pin the batch size so every mode runs multi-batch stages (and so
    // exercises its worker pool) regardless of the host's L2 size.
    let mut session_config = Config::with_workers(WORKERS);
    session_config.batch_override = Some((n as u64 / 8).max(1024));

    // ---- Mode A: shared service (pool + plan cache) ----
    let service = PipelineService::builder()
        .workers(WORKERS)
        .max_inflight(clients)
        .queue_depth(2 * clients)
        .session_config(session_config.clone())
        .builtin_pipelines()
        .build();
    // One session per client thread, opened up front.
    let sessions: Vec<_> = (0..clients).map(|_| service.session()).collect();
    let req = Request::new().with("n", n).with("seed", 42u64);
    // Warm the input memoization + plan cache once so the measured
    // window shows steady-state serving (the first request pays
    // generation + planning, like any cold start).
    sessions[0].call("black_scholes", &req).expect("warmup");
    let service_res = drive("service", clients, requests, |c, _| {
        sessions[c]
            .call("black_scholes", &req)
            .expect("service request");
    });
    let cache = service.stats().plan_cache;

    // ---- Mode B: independent context (own pool) per request ----
    let inp = inputs.clone();
    let cfg = session_config.clone();
    let independent_res = drive("independent", clients, requests, move |_, _| {
        let ctx = MozartContext::new(cfg.clone());
        bs::mkl_mozart(&inp, &ctx).expect("independent request");
    });

    // ---- Mode C: one independent context per client, reused ----
    let inp = inputs.clone();
    let contexts: Vec<MozartContext> = (0..clients)
        .map(|_| MozartContext::new(session_config.clone()))
        .collect();
    let contexts = &contexts;
    let reused_res = drive("independent-reused", clients, requests, move |c, _| {
        bs::mkl_mozart(&inp, &contexts[c]).expect("reused request");
    });

    // ---- Report ----
    let modes = [&service_res, &independent_res, &reused_res];
    println!(
        "\n{:>20} {:>10} {:>12} {:>12} {:>12}",
        "mode", "req/s", "p50", "p99", "wall"
    );
    for m in modes {
        println!(
            "{:>20} {:>10.1} {:>11.3}ms {:>11.3}ms {:>11.3}s",
            m.name,
            m.rps(),
            m.percentile(0.50).as_secs_f64() * 1e3,
            m.percentile(0.99).as_secs_f64() * 1e3,
            m.wall.as_secs_f64()
        );
    }
    let hit_rate = cache.hit_rate();
    println!(
        "plan cache: {} hits / {} misses ({:.1}% hit rate, {} entries)",
        cache.hits,
        cache.misses,
        hit_rate * 100.0,
        cache.entries
    );
    let pool = service.stats().pool;
    println!(
        "shared pool: {} jobs over {} sessions, per-session batches {:?}",
        pool.jobs,
        pool.sessions.len(),
        pool.sessions.iter().map(|s| s.batches).collect::<Vec<_>>()
    );
    let service_wins = service_res.rps() > independent_res.rps();
    let hit_rate_ok = hit_rate > 0.90;
    println!("acceptance: service > independent: {service_wins}; hit rate > 90%: {hit_rate_ok}");

    // ---- JSON snapshot ----
    let mut json = String::from("{\n  \"figure\": \"serve_throughput\",\n");
    json.push_str(&format!(
        "  \"clients\": {clients},\n  \"requests_per_client\": {requests},\n  \
         \"pipeline\": \"black_scholes\",\n  \"n\": {n},\n  \"workers\": {WORKERS},\n"
    ));
    json.push_str("  \"modes\": {\n");
    for (i, m) in modes.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"requests\": {}, \"wall_seconds\": {:.6}, \
             \"requests_per_second\": {:.2}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}{}\n",
            m.name,
            m.requests(),
            m.wall.as_secs_f64(),
            m.rps(),
            m.percentile(0.50).as_secs_f64() * 1e3,
            m.percentile(0.99).as_secs_f64() * 1e3,
            if i + 1 < modes.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"plan_cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
         \"entries\": {} }},\n",
        cache.hits, cache.misses, hit_rate, cache.entries
    ));
    json.push_str(&format!(
        "  \"acceptance\": {{ \"service_beats_independent\": {service_wins}, \
         \"hit_rate_gt_90\": {hit_rate_ok} }}\n}}\n"
    ));
    write_results("BENCH_serve.json", &json);
    println!("wrote bench_results/BENCH_serve.json");
}
