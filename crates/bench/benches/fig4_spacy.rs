//! Figure 4i: Speech Tag (spaCy) — single-threaded tagger vs Mozart.
//! No compiler supported spaCy, so there is no fused comparator.

use mozart_bench::{report_figure, time_min, BenchOpts, Series};
use workloads::speech_tag as st;

fn main() {
    let opts = BenchOpts::from_env();
    let docs = opts.size(3000);
    let words = 120;
    let corpus = st::generate(docs, words, 9);
    println!("fig4i: speech tag (spaCy), docs = {docs}, words/doc = {words}");

    let base_t = time_min(opts.reps, || {
        std::hint::black_box(st::base(&corpus));
    })
    .as_secs_f64();
    let mut base = Series {
        name: "spaCy(base)".into(),
        points: vec![],
    };
    let mut mozart = Series {
        name: "Mozart".into(),
        points: vec![],
    };
    for &t in &opts.threads {
        base.points.push((t, base_t));
        let d = time_min(opts.reps, || {
            let ctx = workloads::mozart_context(t);
            std::hint::black_box(st::mozart(&corpus, &ctx).expect("run"));
        });
        mozart.points.push((t, d.as_secs_f64()));
    }
    report_figure(
        "fig4i_speechtag_spacy",
        "Speech Tag (spaCy)",
        &[base, mozart],
    );
}
