//! Table 4: importance of pipelining — Black Scholes and Haversine
//! (MKL) under three systems: parallel MKL, Mozart without pipelining
//! ("-pipe": split + parallelize only, one stage per call), and full
//! Mozart. Reports normalized runtime and the LLC miss rate measured by
//! replaying the kernels' operand streams through the `cachesim` model
//! (the machine-independent stand-in for `perf`).

use cachesim::CacheConfig;
use mozart_bench::{time_min, with_mkl_threads, write_results, BenchOpts};
use mozart_core::{Config, MozartContext};

fn pipe_context(workers: usize, pipeline: bool) -> MozartContext {
    workloads::register_all_defaults();
    let mut cfg = Config::with_workers(workers);
    cfg.pipeline = pipeline;
    MozartContext::new(cfg)
}

/// Measure LLC miss rate of `run` by tracing kernel operand streams.
fn llc_miss_pct(run: impl FnOnce()) -> f64 {
    vectormath::trace::enable();
    run();
    let trace = vectormath::trace::disable_and_take();
    let flat: Vec<(usize, usize, bool)> =
        trace.iter().map(|a| (a.addr, a.bytes, a.write)).collect();
    cachesim::replay_trace(CacheConfig::llc_8mb(), &flat).miss_rate_pct()
}

struct Row {
    workload: &'static str,
    system: &'static str,
    runtime_norm: f64,
    miss_pct: f64,
}

fn main() {
    let opts = BenchOpts::from_env();
    let threads = *opts.threads.last().unwrap_or(&16);
    let n = opts.size(1 << 21);
    // Smaller run for the (slow) cache-model replay.
    let n_sim = (n / 4).max(1 << 18);
    println!("table4: pipelining ablation, n = {n}, threads = {threads}, sim n = {n_sim}");
    let mut rows: Vec<Row> = Vec::new();

    // ---------------- Black Scholes ----------------
    {
        use workloads::black_scholes as bs;
        let inp = bs::generate(n, 42);
        let sim_inp = bs::generate(n_sim, 42);
        let t_mkl = time_min(opts.reps, || {
            with_mkl_threads(threads, || {
                std::hint::black_box(bs::mkl_base(&inp));
            })
        })
        .as_secs_f64();
        let t_nopipe = time_min(opts.reps, || {
            let ctx = pipe_context(threads, false);
            std::hint::black_box(bs::mkl_mozart(&inp, &ctx).expect("run"));
        })
        .as_secs_f64();
        let t_moz = time_min(opts.reps, || {
            let ctx = pipe_context(threads, true);
            std::hint::black_box(bs::mkl_mozart(&inp, &ctx).expect("run"));
        })
        .as_secs_f64();

        let m_mkl = llc_miss_pct(|| {
            bs::mkl_base(&sim_inp);
        });
        let m_nopipe = llc_miss_pct(|| {
            let ctx = pipe_context(1, false);
            bs::mkl_mozart(&sim_inp, &ctx).expect("run");
        });
        let m_moz = llc_miss_pct(|| {
            let ctx = pipe_context(1, true);
            bs::mkl_mozart(&sim_inp, &ctx).expect("run");
        });
        rows.push(Row {
            workload: "Black Scholes",
            system: "MKL",
            runtime_norm: 1.0,
            miss_pct: m_mkl,
        });
        rows.push(Row {
            workload: "Black Scholes",
            system: "Mozart (-pipe)",
            runtime_norm: t_nopipe / t_mkl,
            miss_pct: m_nopipe,
        });
        rows.push(Row {
            workload: "Black Scholes",
            system: "Mozart",
            runtime_norm: t_moz / t_mkl,
            miss_pct: m_moz,
        });
    }

    // ---------------- Haversine ----------------
    {
        use workloads::haversine as hv;
        let inp = hv::generate(n, 7);
        let sim_inp = hv::generate(n_sim, 7);
        let t_mkl = time_min(opts.reps, || {
            with_mkl_threads(threads, || {
                std::hint::black_box(hv::mkl_base(&inp));
            })
        })
        .as_secs_f64();
        let t_nopipe = time_min(opts.reps, || {
            let ctx = pipe_context(threads, false);
            std::hint::black_box(hv::mkl_mozart(&inp, &ctx).expect("run"));
        })
        .as_secs_f64();
        let t_moz = time_min(opts.reps, || {
            let ctx = pipe_context(threads, true);
            std::hint::black_box(hv::mkl_mozart(&inp, &ctx).expect("run"));
        })
        .as_secs_f64();
        let m_mkl = llc_miss_pct(|| {
            hv::mkl_base(&sim_inp);
        });
        let m_nopipe = llc_miss_pct(|| {
            let ctx = pipe_context(1, false);
            hv::mkl_mozart(&sim_inp, &ctx).expect("run");
        });
        let m_moz = llc_miss_pct(|| {
            let ctx = pipe_context(1, true);
            hv::mkl_mozart(&sim_inp, &ctx).expect("run");
        });
        rows.push(Row {
            workload: "Haversine",
            system: "MKL",
            runtime_norm: 1.0,
            miss_pct: m_mkl,
        });
        rows.push(Row {
            workload: "Haversine",
            system: "Mozart (-pipe)",
            runtime_norm: t_nopipe / t_mkl,
            miss_pct: m_nopipe,
        });
        rows.push(Row {
            workload: "Haversine",
            system: "Mozart",
            runtime_norm: t_moz / t_mkl,
            miss_pct: m_moz,
        });
    }

    println!("\n=== Table 4: hardware counters show pipelining reduces cache misses ===");
    println!(
        "{:<16} {:<16} {:>20} {:>16}",
        "Workload", "System", "Normalized Runtime", "LLC Miss (sim)"
    );
    let mut csv = String::from("workload,system,runtime_norm,llc_miss_pct\n");
    for r in &rows {
        println!(
            "{:<16} {:<16} {:>20.2} {:>15.2}%",
            r.workload, r.system, r.runtime_norm, r.miss_pct
        );
        csv.push_str(&format!(
            "{},{},{},{}\n",
            r.workload, r.system, r.runtime_norm, r.miss_pct
        ));
    }
    write_results("table4.csv", &csv);
    println!(
        "\npaper shape: Mozart(-pipe) ~= MKL runtime & miss rate; Mozart cuts the miss rate ~2x"
    );
}
