//! Figure 1: Black Scholes with MKL on 1–16 threads — MKL (internally
//! parallel library), the fused-compiler stand-in (Weld), and MKL with
//! Mozart.

use mozart_bench::{report_figure, time_min, with_mkl_threads, BenchOpts, Series};
use workloads::black_scholes as bs;

fn main() {
    let opts = BenchOpts::from_env();
    let n = opts.size(1 << 21);
    let inp = bs::generate(n, 42);
    println!("fig1: black scholes (MKL), n = {n}, reps = {}", opts.reps);

    let mut mkl = Series {
        name: "MKL".into(),
        points: vec![],
    };
    let mut weld = Series {
        name: "Weld(fused)".into(),
        points: vec![],
    };
    let mut mozart = Series {
        name: "Mozart".into(),
        points: vec![],
    };

    for &t in &opts.threads {
        let d = time_min(opts.reps, || {
            with_mkl_threads(t, || {
                std::hint::black_box(bs::mkl_base(&inp));
            })
        });
        mkl.points.push((t, d.as_secs_f64()));

        let d = time_min(opts.reps, || {
            std::hint::black_box(bs::fused(&inp, t));
        });
        weld.points.push((t, d.as_secs_f64()));

        let d = time_min(opts.reps, || {
            let ctx = workloads::mozart_context(t);
            std::hint::black_box(bs::mkl_mozart(&inp, &ctx).expect("mozart run"));
        });
        mozart.points.push((t, d.as_secs_f64()));
    }

    report_figure(
        "fig1",
        "Black Scholes benchmark, MKL vs Weld(fused stand-in) vs Mozart",
        &[mkl, weld, mozart],
    );
}
