//! Figure 6: effect of batch size on Black Scholes (element = one
//! double) and nBody (element = one matrix row), with the batch Mozart's
//! L2 heuristic selects marked.

use mozart_bench::{time_min, write_results, BenchOpts};
use mozart_core::{Config, MozartContext};

fn ctx_with_batch(workers: usize, batch: Option<u64>) -> MozartContext {
    workloads::register_all_defaults();
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = batch;
    MozartContext::new(cfg)
}

fn main() {
    let opts = BenchOpts::from_env();
    let threads = *opts.threads.last().unwrap_or(&16);

    // ---- (a) Black Scholes: elements are doubles ----
    {
        use workloads::black_scholes as bs;
        let n = opts.size(1 << 21);
        let inp = bs::generate(n, 42);
        // Heuristic pick: the Black Scholes stage splits ~10 arrays.
        let cfg = Config::with_workers(threads);
        let heuristic = cfg.batch_elements(10 * 8, n as u64);
        println!("fig6a: black scholes (MKL), n = {n}, heuristic batch = {heuristic}");
        let mut csv = String::from("batch,seconds,is_heuristic\n");
        let mut baseline = None;
        let mut batch = 512u64;
        while batch <= (n as u64) {
            let d = time_min(opts.reps, || {
                let ctx = ctx_with_batch(threads, Some(batch));
                std::hint::black_box(bs::mkl_mozart(&inp, &ctx).expect("run"));
            })
            .as_secs_f64();
            let base = *baseline.get_or_insert(d);
            let mark = if batch / 2 < heuristic && heuristic <= batch {
                " <- ~heuristic"
            } else {
                ""
            };
            println!("  batch {batch:>9}: {d:.4}s (norm {:.2}){mark}", d / base);
            csv.push_str(&format!("{batch},{d},{}\n", !mark.is_empty()));
            batch *= 4;
        }
        write_results("fig6a_blackscholes.csv", &csv);
    }

    // ---- (b) nBody: elements are matrix rows ----
    {
        use workloads::nbody as nb;
        let n = opts.size(700);
        let b = nb::generate(n, 5);
        let cfg = Config::with_workers(threads);
        // nBody stages split several n-column matrices: row = 8n bytes.
        let heuristic = cfg.batch_elements(4 * 8 * n as u64, n as u64);
        println!("\nfig6b: nbody (NumPy), n = {n}, heuristic batch = {heuristic} rows");
        let mut csv = String::from("batch,seconds,is_heuristic\n");
        let mut baseline = None;
        let mut batch = 1u64;
        while batch <= n as u64 {
            let d = time_min(opts.reps, || {
                let ctx = ctx_with_batch(threads, Some(batch));
                std::hint::black_box(nb::numpy_mozart(&b, 2, 0.01, &ctx).expect("run"));
            })
            .as_secs_f64();
            let base = *baseline.get_or_insert(d);
            let mark = if batch / 4 < heuristic && heuristic <= batch {
                " <- ~heuristic"
            } else {
                ""
            };
            println!(
                "  batch {batch:>6} rows: {d:.4}s (norm {:.2}){mark}",
                d / base
            );
            csv.push_str(&format!("{batch},{d},{}\n", !mark.is_empty()));
            batch *= 4;
        }
        write_results("fig6b_nbody.csv", &csv);
    }
    println!("\npaper shape: U-curve — tiny batches pay overhead, huge batches lose pipelining;");
    println!("the L2 heuristic lands within ~10% of the best batch.");
}
