//! Figures 4n–o: the ImageMagick workloads (Nashville, Gotham) — the
//! internally-parallel library vs the fused stand-in vs Mozart, which
//! pipelines row bands across operators (but pays crop/append copies).

use mozart_bench::{report_figure, time_min, with_image_threads, BenchOpts, Series};
use workloads::images as im;

fn main() {
    let opts = BenchOpts::from_env();
    let w = opts.size(1600);
    let h = opts.size(1200);
    let img = im::generate(w, h, 3);
    println!("fig4n/4o: instagram filters (ImageMagick), image = {w}x{h}");

    // ---- 4n: Nashville ---------------------------------------------------
    {
        let mut base = Series {
            name: "ImageMagick".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((
                t,
                time_min(opts.reps, || {
                    with_image_threads(t, || {
                        std::hint::black_box(im::nashville_base(&img));
                    })
                })
                .as_secs_f64(),
            ));
            fused.points.push((
                t,
                time_min(opts.reps, || {
                    std::hint::black_box(im::nashville_fused(&img, t));
                })
                .as_secs_f64(),
            ));
            mozart.points.push((
                t,
                time_min(opts.reps, || {
                    let ctx = workloads::mozart_context(t);
                    std::hint::black_box(im::nashville_mozart(&img, &ctx).expect("run"));
                })
                .as_secs_f64(),
            ));
        }
        report_figure(
            "fig4n_nashville_imagemagick",
            "Nashville (ImageMagick)",
            &[base, fused, mozart],
        );
    }

    // ---- 4o: Gotham --------------------------------------------------------
    {
        let mut base = Series {
            name: "ImageMagick".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((
                t,
                time_min(opts.reps, || {
                    with_image_threads(t, || {
                        std::hint::black_box(im::gotham_base(&img));
                    })
                })
                .as_secs_f64(),
            ));
            fused.points.push((
                t,
                time_min(opts.reps, || {
                    std::hint::black_box(im::gotham_fused(&img, t));
                })
                .as_secs_f64(),
            ));
            mozart.points.push((
                t,
                time_min(opts.reps, || {
                    let ctx = workloads::mozart_context(t);
                    std::hint::black_box(im::gotham_mozart(&img, &ctx).expect("run"));
                })
                .as_secs_f64(),
            ));
        }
        report_figure(
            "fig4o_gotham_imagemagick",
            "Gotham (ImageMagick)",
            &[base, fused, mozart],
        );
    }
}
