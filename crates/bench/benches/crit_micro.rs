//! Criterion microbenchmarks: substrate kernel throughput and the
//! Mozart runtime's fixed overheads (registration, planning). These
//! support the Figure 5 overhead analysis at finer granularity.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mozart_core::{Config, MozartContext, SharedVec};

fn kernels(c: &mut Criterion) {
    let n = 1 << 16;
    let a = vec![1.000003f64; n];
    let b = vec![0.999997f64; n];
    let mut out = vec![0.0f64; n];
    let mut g = c.benchmark_group("vectormath");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("vd_add", |bench| {
        bench.iter(|| vectormath::vd_add(&a, &b, &mut out));
    });
    g.bench_function("vd_exp", |bench| {
        bench.iter(|| vectormath::vd_exp(&a, &mut out));
    });
    g.bench_function("vd_erf", |bench| {
        bench.iter(|| vectormath::vd_erf(&a, &mut out));
    });
    g.finish();
}

fn runtime_overheads(c: &mut Criterion) {
    workloads::register_all_defaults();
    let mut g = c.benchmark_group("mozart-runtime");

    // Cost of registering one annotated call (the "client" phase).
    g.bench_function("register_call", |bench| {
        let data = SharedVec::from_vec(vec![1.0; 64]);
        bench.iter_batched(
            || MozartContext::new(Config::with_workers(1)),
            |ctx| {
                sa_vectormath::vd_sqrt(&ctx, 64, &data, &data).expect("register");
                ctx
            },
            BatchSize::SmallInput,
        );
    });

    // Cost of planning + executing a tiny one-call graph.
    g.bench_function("plan_and_execute_small", |bench| {
        bench.iter_batched(
            || {
                let ctx = MozartContext::new(Config::with_workers(1));
                let data = SharedVec::from_vec(vec![1.0; 256]);
                sa_vectormath::vd_sqrt(&ctx, 256, &data, &data).expect("register");
                (ctx, data)
            },
            |(ctx, _data)| {
                ctx.evaluate().expect("evaluate");
                ctx
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, kernels, runtime_overheads);
criterion_main!(benches);
