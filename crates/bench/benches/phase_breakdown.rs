//! Phase breakdown with placement merges on vs off: split/task/merge
//! fractions for the Black Scholes (MKL) and Nashville (ImageMagick)
//! workloads under `Config::placement_merge = true` (preallocated
//! outputs, workers write pieces in place, overlapped final merges)
//! and `false` (the historic collect-then-concat ablation).
//!
//! Nashville is the workload the fast path targets — its split/merge
//! used to copy every pixel twice — so the bench *asserts* that its
//! merge fraction with placement on is at least 2x below the
//! placement-off run, and that both configurations produce identical
//! workload outputs (summary checksums against the copying baseline).
//!
//! A third pair runs Nashville with per-call stage evaluation
//! (`pipeline = false`) under `Config::split_form` on vs off: with the
//! ablation on, stage-boundary intermediates cross in split form
//! instead of merging and re-splitting, so the bench asserts the
//! combined split+merge wall share drops measurably with bit-identical
//! checksums and a nonzero `split_form_handoffs` count.
//!
//! A fourth pair runs Nashville with `Config::verify_plans` on vs off:
//! the static plan verifier must prove every stage (nonzero
//! `plans_verified`, zero with it off), must not perturb outputs
//! (bit-identical checksums), and must stay within 1.05x of the
//! unverified wall time.
//!
//! Emits `bench_results/BENCH_phases.json`. Set
//! `MOZART_TRACE_EXPORT=<file.json>` to additionally record every
//! evaluation with [`mozart_core::trace`] and write the spans as Chrome
//! trace-event JSON (open in `chrome://tracing` or Perfetto) to
//! `bench_results/<file.json>` — one row per worker thread, one slice
//! per planner/split/task/merge span.

use std::sync::Arc;

use mozart_bench::{write_results, BenchOpts};
use mozart_core::trace::TraceRecorder;
use mozart_core::{chrome_trace_json, Config, PhaseStats};

struct Measured {
    stats: PhaseStats,
    seconds: f64,
    checksum: f64,
}

/// Phase fractions of the accounted total.
fn fractions(p: &PhaseStats) -> (f64, f64, f64) {
    let t = p.total().as_secs_f64();
    if t == 0.0 {
        return (0.0, 0.0, 0.0);
    }
    (
        p.split.as_secs_f64() / t,
        p.task.as_secs_f64() / t,
        p.merge.as_secs_f64() / t,
    )
}

fn run_workload(
    threads: usize,
    evals: usize,
    tracing: Option<Arc<TraceRecorder>>,
    configure: impl Fn(&mut Config),
    mut f: impl FnMut(&mozart_core::MozartContext) -> f64,
) -> Measured {
    let mut cfg = Config::with_workers(threads);
    configure(&mut cfg);
    cfg.tracing = tracing;
    // One context per evaluation — the serving model, and the honest
    // measurement: a context's dataflow graph retains every value it
    // ever produced, so a long-lived bench context would pin all prior
    // evals' outputs in memory and keep the allocator permanently
    // cold. A shared pool keeps worker threads persistent across the
    // contexts, like `PipelineService` does.
    let pool = mozart_core::PoolHandle::new(threads.saturating_sub(1));
    let run_once = |f: &mut dyn FnMut(&mozart_core::MozartContext) -> f64| {
        let ctx = workloads::mozart_context_with(cfg.clone());
        ctx.attach_pool(pool.clone());
        let checksum = f(&ctx);
        (checksum, ctx.take_stats())
    };
    // Two warm-up evaluations (fault pages, let the allocator adapt
    // its mmap threshold — glibc only raises it after freeing an
    // mmap'd block, and reuse needs one more cycle), then accumulate
    // stats over `evals` timed evaluations so short smoke runs still
    // measure microseconds-scale merges reliably.
    let (mut checksum, _) = run_once(&mut f);
    let _ = run_once(&mut f);
    let mut stats = PhaseStats::default();
    let t0 = std::time::Instant::now();
    for _ in 0..evals {
        let (c, s) = run_once(&mut f);
        checksum = c;
        stats.accumulate(&s);
    }
    let seconds = t0.elapsed().as_secs_f64() / evals as f64;
    Measured {
        stats,
        seconds,
        checksum,
    }
}

/// Combined split + merge share of the accounted total — the wall
/// share the split-form hand-off targets (it removes both the merge
/// that produced the intermediate and the split that re-cut it).
fn split_merge_share(p: &PhaseStats) -> f64 {
    let (split, _, merge) = fractions(p);
    split + merge
}

fn json_entry(m: &Measured, matches: bool) -> String {
    let (split, task, merge) = fractions(&m.stats);
    format!(
        "{{ \"split\": {split:.4}, \"task\": {task:.4}, \"merge\": {merge:.4}, \
         \"seconds\": {:.6}, \"placement_writes\": {}, \"overlapped_merges\": {}, \
         \"split_form_handoffs\": {}, \"split_form_reslices\": {}, \
         \"checksum_matches_baseline\": {matches} }}",
        m.seconds,
        m.stats.placement_writes,
        m.stats.overlapped_merges,
        m.stats.split_form_handoffs,
        m.stats.split_form_reslices
    )
}

fn print_pair(name: &str, labels: [&str; 2], on: &Measured, off: &Measured) {
    println!("\n=== phase_breakdown: {name} ===");
    for (label, m) in [(labels[0], on), (labels[1], off)] {
        let (split, task, merge) = fractions(&m.stats);
        println!(
            "{label}: split {:5.1}%  task {:5.1}%  merge {:5.1}%  ({:.4}s/eval, \
             {} placement writes, {} overlapped merges, {} split-form hand-offs)",
            split * 100.0,
            task * 100.0,
            merge * 100.0,
            m.seconds,
            m.stats.placement_writes,
            m.stats.overlapped_merges,
            m.stats.split_form_handoffs
        );
    }
    let (_, _, merge_on) = fractions(&on.stats);
    let (_, _, merge_off) = fractions(&off.stats);
    if merge_on > 0.0 {
        println!(
            "merge fraction ratio (off/on): {:.1}x",
            merge_off / merge_on
        );
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    let threads = *opts.threads.last().unwrap_or(&16);
    let evals = opts.reps.max(2) * 3;
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1.0);
    // Optional Chrome trace export: one recorder across every run; the
    // ring keeps the most recent evaluations' spans.
    let trace_export = std::env::var("MOZART_TRACE_EXPORT").ok();
    let recorder = trace_export.as_ref().map(|_| TraceRecorder::new());

    // ---- Black Scholes (MKL): outputs are mut-arg SliceViews that
    // already write in place, so placement changes little — reported
    // as the control.
    let (bs_on, bs_off, bs_base) = {
        use workloads::black_scholes as bs;
        let n = opts.size(1 << 19);
        let inp = bs::generate(n, 42);
        let base = bs::mkl_base(&inp).call_sum;
        let run = |placement: bool| {
            run_workload(
                threads,
                evals,
                recorder.clone(),
                |cfg| cfg.placement_merge = placement,
                |ctx| bs::mkl_mozart(&inp, ctx).expect("run").call_sum,
            )
        };
        (run(true), run(false), base)
    };

    // ---- Nashville (ImageMagick): concat-shaped image output, the
    // placement target. A sub-heuristic batch override keeps dozens of
    // batches in flight even at smoke scales, so the merge phase is
    // actually exercised.
    use workloads::images as im;
    let (w, h) = (opts.size(1600), opts.size(1200));
    let na_img = im::generate(w, h, 3);
    let na_base = im::nashville_base(&na_img).mean;
    let (na_on, na_off) = {
        let run = |placement: bool| {
            run_workload(
                threads,
                evals,
                recorder.clone(),
                |cfg| {
                    cfg.placement_merge = placement;
                    cfg.batch_override = Some(32);
                },
                |ctx| im::nashville_mozart(&na_img, ctx).expect("run").mean,
            )
        };
        (run(true), run(false))
    };

    // ---- Nashville split-form ablation: with per-call stage
    // evaluation (`pipeline = false`), every stage boundary used to
    // merge the intermediate image and re-split it in the next stage;
    // split-form hand-offs elide that round trip, so the combined
    // split+merge wall share must drop while the output stays
    // bit-identical.
    let (sf_on, sf_off) = {
        let run = |split_form: bool| {
            run_workload(
                threads,
                evals,
                recorder.clone(),
                |cfg| {
                    cfg.pipeline = false;
                    cfg.split_form = split_form;
                    cfg.batch_override = Some(32);
                },
                |ctx| im::nashville_mozart(&na_img, ctx).expect("run").mean,
            )
        };
        (run(true), run(false))
    };

    // ---- Nashville verify ablation: the static plan verifier
    // (`verify_plans`) runs once per planned/replayed stage and must be
    // invisible — same bytes out, within 1.05x of the unverified wall.
    let (vp_on, vp_off) = {
        let run = |verify: bool| {
            run_workload(
                threads,
                evals,
                recorder.clone(),
                |cfg| {
                    cfg.placement_merge = true;
                    cfg.batch_override = Some(32);
                    cfg.verify_plans = verify;
                },
                |ctx| im::nashville_mozart(&na_img, ctx).expect("run").mean,
            )
        };
        (run(true), run(false))
    };

    print_pair(
        "black_scholes",
        ["placement on ", "placement off"],
        &bs_on,
        &bs_off,
    );
    print_pair(
        "nashville",
        ["placement on ", "placement off"],
        &na_on,
        &na_off,
    );
    print_pair(
        "nashville (staged, split-form ablation)",
        ["split-form on ", "split-form off"],
        &sf_on,
        &sf_off,
    );
    println!(
        "split+merge share: split-form on {:.2}% vs off {:.2}%",
        split_merge_share(&sf_on.stats) * 100.0,
        split_merge_share(&sf_off.stats) * 100.0
    );
    print_pair(
        "nashville (plan-verify ablation)",
        ["verify on ", "verify off"],
        &vp_on,
        &vp_off,
    );
    println!(
        "plans verified: on {} vs off {}; wall ratio (on/off): {:.3}x",
        vp_on.stats.plans_verified,
        vp_off.stats.plans_verified,
        vp_on.seconds / vp_off.seconds.max(f64::EPSILON)
    );

    let bs_match = close(bs_on.checksum, bs_base) && close(bs_off.checksum, bs_base);
    let na_match = close(na_on.checksum, na_base) && close(na_off.checksum, na_base);
    // The split-form arms must be *bit*-identical to each other — the
    // hand-off re-slices exactly the bytes the classic path merges.
    let sf_match = sf_on.checksum.to_bits() == sf_off.checksum.to_bits()
        && close(sf_on.checksum, na_base)
        && close(sf_off.checksum, na_base);
    // The verifier only reads the plan; its arms must be bit-identical.
    let vp_match =
        vp_on.checksum.to_bits() == vp_off.checksum.to_bits() && close(vp_on.checksum, na_base);

    let mut json = String::from("{\n  \"figure\": \"phase_breakdown\",\n");
    json.push_str(&format!(
        "  \"threads\": {threads},\n  \"evals\": {evals},\n"
    ));
    json.push_str("  \"workloads\": {\n");
    json.push_str(&format!(
        "    \"black_scholes\": {{ \"placement_on\": {}, \"placement_off\": {} }},\n",
        json_entry(&bs_on, bs_match),
        json_entry(&bs_off, bs_match)
    ));
    json.push_str(&format!(
        "    \"nashville\": {{ \"placement_on\": {}, \"placement_off\": {} }},\n",
        json_entry(&na_on, na_match),
        json_entry(&na_off, na_match)
    ));
    json.push_str(&format!(
        "    \"nashville_staged\": {{ \"split_form_on\": {}, \"split_form_off\": {} }},\n",
        json_entry(&sf_on, sf_match),
        json_entry(&sf_off, sf_match)
    ));
    json.push_str(&format!(
        "    \"nashville_verify\": {{ \"verify_on\": {}, \"verify_off\": {}, \
         \"plans_verified\": {}, \"wall_ratio\": {:.4} }}\n",
        json_entry(&vp_on, vp_match),
        json_entry(&vp_off, vp_match),
        vp_on.stats.plans_verified,
        vp_on.seconds / vp_off.seconds.max(f64::EPSILON)
    ));
    let na_merge_on = na_on.stats.merge_fraction();
    let na_merge_off = na_off.stats.merge_fraction();
    let sm_on = split_merge_share(&sf_on.stats);
    let sm_off = split_merge_share(&sf_off.stats);
    json.push_str(&format!(
        "  }},\n  \"nashville_merge_fraction_ratio\": {:.4},\n",
        if na_merge_on > 0.0 {
            na_merge_off / na_merge_on
        } else {
            f64::INFINITY
        }
    ));
    json.push_str(&format!(
        "  \"nashville_split_merge_share\": {{ \"split_form_on\": {sm_on:.4}, \
         \"split_form_off\": {sm_off:.4} }}\n}}\n"
    ));
    write_results("BENCH_phases.json", &json);

    if let (Some(name), Some(rec)) = (&trace_export, &recorder) {
        let spans = rec.all_spans();
        write_results(name, &chrome_trace_json(&spans));
        println!(
            "wrote bench_results/{name}: {} spans ({} dropped by ring overwrite)",
            spans.len(),
            rec.dropped()
        );
    }

    // CI gates: the fast path must be invisible in outputs and must
    // actually shrink Nashville's merge share.
    assert!(
        bs_match && na_match,
        "workload checksums diverged from the copying baseline: \
         bs {} / {} vs {bs_base}; nashville {} / {} vs {na_base}",
        bs_on.checksum,
        bs_off.checksum,
        na_on.checksum,
        na_off.checksum
    );
    assert!(
        na_on.stats.placement_writes > 0,
        "nashville never took the placement path: {:?}",
        na_on.stats
    );
    assert!(
        na_merge_on * 2.0 <= na_merge_off,
        "nashville merge fraction with placement on ({:.4}) must be at \
         least 2x below placement off ({:.4})",
        na_merge_on,
        na_merge_off
    );
    // Split-form ablation gates: the hand-off must fire, the classic
    // arm must not, outputs must be bit-identical, and the elision must
    // visibly shrink the split+merge wall share.
    assert!(
        sf_match,
        "split-form ablation checksums diverged: on {} vs off {} (baseline {na_base})",
        sf_on.checksum, sf_off.checksum
    );
    assert!(
        sf_on.stats.split_form_handoffs > 0,
        "staged nashville never handed a value across in split form: {:?}",
        sf_on.stats
    );
    assert_eq!(
        sf_off.stats.split_form_handoffs, 0,
        "split-form hand-offs fired with the ablation off: {:?}",
        sf_off.stats
    );
    assert!(
        sm_on < sm_off * 0.9,
        "split-form on must drop nashville's split+merge wall share \
         measurably below the ablation ({:.4} vs {:.4})",
        sm_on,
        sm_off
    );
    // Plan-verify gates: the verifier must actually run (and only when
    // asked), change nothing, and cost at most 5% wall (plus a 2ms
    // absolute allowance so micro smoke runs don't gate on noise).
    assert!(
        vp_match,
        "verify ablation checksums diverged: on {} vs off {} (baseline {na_base})",
        vp_on.checksum, vp_off.checksum
    );
    assert!(
        vp_on.stats.plans_verified > 0,
        "verify_plans on but no stage plan was verified: {:?}",
        vp_on.stats
    );
    assert_eq!(
        vp_off.stats.plans_verified, 0,
        "verify_plans off but stages were verified anyway: {:?}",
        vp_off.stats
    );
    assert!(
        vp_on.seconds <= vp_off.seconds * 1.05 + 2e-3,
        "plan verification overhead exceeds 1.05x: {:.4}s/eval verified \
         vs {:.4}s/eval unverified",
        vp_on.seconds,
        vp_off.seconds
    );
    println!("\nchecksums match the copying baseline; nashville merge fraction");
    println!(
        "placement on {:.2}% vs off {:.2}% — gate passed.",
        na_merge_on * 100.0,
        na_merge_off * 100.0
    );
    println!(
        "split-form hand-offs elided {} merges/eval-run; split+merge share \
         {:.2}% vs {:.2}% — gate passed.",
        sf_on.stats.split_form_handoffs,
        sm_on * 100.0,
        sm_off * 100.0
    );
    println!(
        "plan verification: {} plans proved at {:.3}x unverified wall \
         (≤1.05x) — gate passed.",
        vp_on.stats.plans_verified,
        vp_on.seconds / vp_off.seconds.max(f64::EPSILON)
    );
}
