//! Figure 5: breakdown of total running time — client library
//! registration, unprotect, planner, split, task execution, merge —
//! for the Black Scholes (MKL) and Nashville workloads.

use mozart_bench::{write_results, BenchOpts};

fn main() {
    let opts = BenchOpts::from_env();
    let threads = *opts.threads.last().unwrap_or(&16);
    let mut csv = String::from("workload,client,unprotect,planner,split,task,merge\n");

    // ---- Black Scholes (MKL) ----
    {
        use workloads::black_scholes as bs;
        let n = opts.size(1 << 21);
        let inp = bs::generate(n, 42);
        let ctx = workloads::mozart_context(threads);
        bs::mkl_mozart(&inp, &ctx).expect("run");
        let p = ctx.take_stats();
        print_breakdown("black scholes", &p.percentages());
        push_csv(&mut csv, "black_scholes", &p.percentages());
    }

    // ---- Nashville (ImageMagick) ----
    {
        use workloads::images as im;
        let img = im::generate(opts.size(1600), opts.size(1200), 3);
        let ctx = workloads::mozart_context(threads);
        im::nashville_mozart(&img, &ctx).expect("run");
        let p = ctx.take_stats();
        print_breakdown("nashville", &p.percentages());
        push_csv(&mut csv, "nashville", &p.percentages());
    }

    write_results("fig5.csv", &csv);
    println!("\npaper shape: task dominates; client+unprotect+planner < 0.5%;");
    println!("nashville has the highest split/merge share (crop+append copy pixels).");
}

fn print_breakdown(name: &str, p: &[f64; 6]) {
    println!("\n=== fig5: {name} — percent of total runtime ===");
    let labels = ["client", "unprotect", "planner", "split", "task", "merge"];
    for (l, v) in labels.iter().zip(p) {
        println!("{l:>10}: {v:6.2}% {}", "#".repeat((v / 2.0).round() as usize));
    }
}

fn push_csv(csv: &mut String, name: &str, p: &[f64; 6]) {
    csv.push_str(&format!(
        "{name},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
        p[0], p[1], p[2], p[3], p[4], p[5]
    ));
}
