//! Figure 5: breakdown of total running time — client library
//! registration, unprotect, planner, split, task execution, merge —
//! for the Black Scholes (MKL) and Nashville workloads, plus a
//! pool-reuse vs spawn-per-stage comparison on a multi-stage pipeline
//! (the fixed per-stage overhead the persistent worker pool removes).
//!
//! Emits `bench_results/fig5.csv` (the percentage breakdown) and
//! `bench_results/BENCH_fig5.json` (a machine-readable snapshot, so PRs
//! can track the perf trajectory).

use mozart_bench::{time_min, write_results, BenchOpts};
use mozart_core::{Config, MozartContext};

fn main() {
    let opts = BenchOpts::from_env();
    let threads = *opts.threads.last().unwrap_or(&16);
    let mut csv = String::from("workload,client,unprotect,planner,split,task,merge\n");
    let mut json = String::from("{\n  \"figure\": \"fig5\",\n");
    json.push_str(&format!("  \"threads\": {threads},\n  \"workloads\": {{\n"));

    // ---- Black Scholes (MKL) ----
    {
        use workloads::black_scholes as bs;
        let n = opts.size(1 << 21);
        let inp = bs::generate(n, 42);
        let ctx = workloads::mozart_context(threads);
        bs::mkl_mozart(&inp, &ctx).expect("run");
        let p = ctx.take_stats();
        print_breakdown("black scholes", &p.percentages());
        push_csv(&mut csv, "black_scholes", &p.percentages());
        push_json(&mut json, "black_scholes", &p.percentages(), ",\n");
    }

    // ---- Nashville (ImageMagick) ----
    {
        use workloads::images as im;
        let img = im::generate(opts.size(1600), opts.size(1200), 3);
        let ctx = workloads::mozart_context(threads);
        im::nashville_mozart(&img, &ctx).expect("run");
        let p = ctx.take_stats();
        print_breakdown("nashville", &p.percentages());
        push_csv(&mut csv, "nashville", &p.percentages());
        push_json(&mut json, "nashville", &p.percentages(), "\n  },\n");
    }

    // ---- Pool reuse vs spawn-per-stage (multi-stage pipeline) ----
    //
    // Repeated evaluations of a short pipeline maximize the per-stage
    // fixed costs Figure 5 is about. `reuse_pool = false` restores the
    // historic executor behavior (scoped threads spawned per stage) as
    // a measured ablation against the persistent worker pool.
    let (reuse_s, spawn_s, stages) = {
        use workloads::black_scholes as bs;
        let n = opts.size(1 << 16); // small input -> orchestration-bound
        let evals = 40;
        let inp = bs::generate(n, 42);

        let run = |reuse_pool: bool| {
            workloads::register_all_defaults();
            let mut cfg = Config::with_workers(threads);
            cfg.reuse_pool = reuse_pool;
            let ctx = MozartContext::new(cfg);
            let secs = time_min(opts.reps, || {
                for _ in 0..evals {
                    bs::mkl_mozart(&inp, &ctx).expect("run");
                }
            })
            .as_secs_f64();
            // `secs` is one 40-eval pass (min over reps); stages
            // accumulated over all reps, so normalize.
            (secs, ctx.take_stats().stages / opts.reps.max(1) as u64)
        };
        // One untimed pass per mode first: the first evaluations fault
        // in the input pages and warm the allocator, which otherwise
        // biases whichever mode is measured first.
        run(true);
        run(false);
        let (reuse_s, stages) = run(true);
        let (spawn_s, _) = run(false);
        (reuse_s, spawn_s, stages)
    };
    println!("\n=== fig5: per-stage orchestration (multi-stage pipeline) ===");
    println!("     pool reuse: {reuse_s:.4}s  ({stages} stages measured)");
    println!("spawn-per-stage: {spawn_s:.4}s");
    if reuse_s > 0.0 {
        println!(
            "        speedup: {:.2}x from reusing parked workers",
            spawn_s / reuse_s
        );
    }
    json.push_str(&format!(
        "  \"pool_reuse_seconds\": {reuse_s:.6},\n  \"spawn_per_stage_seconds\": {spawn_s:.6},\n"
    ));
    json.push_str(&format!(
        "  \"pool_reuse_speedup\": {:.4}\n}}\n",
        if reuse_s > 0.0 {
            spawn_s / reuse_s
        } else {
            0.0
        }
    ));
    csv.push_str(&format!(
        "pool_reuse_seconds,{reuse_s}\nspawn_per_stage_seconds,{spawn_s}\n"
    ));

    write_results("fig5.csv", &csv);
    write_results("BENCH_fig5.json", &json);
    println!("\npaper shape: task dominates; client+unprotect+planner < 0.5%;");
    println!("nashville has the highest split/merge share (crop+append copy pixels).");
}

fn print_breakdown(name: &str, p: &[f64; 6]) {
    println!("\n=== fig5: {name} — percent of total runtime ===");
    let labels = ["client", "unprotect", "planner", "split", "task", "merge"];
    for (l, v) in labels.iter().zip(p) {
        println!(
            "{l:>10}: {v:6.2}% {}",
            "#".repeat((v / 2.0).round() as usize)
        );
    }
}

fn push_csv(csv: &mut String, name: &str, p: &[f64; 6]) {
    csv.push_str(&format!(
        "{name},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
        p[0], p[1], p[2], p[3], p[4], p[5]
    ));
}

fn push_json(json: &mut String, name: &str, p: &[f64; 6], tail: &str) {
    json.push_str(&format!(
        "    \"{name}\": {{ \"client\": {:.4}, \"unprotect\": {:.4}, \"planner\": {:.4}, \
         \"split\": {:.4}, \"task\": {:.4}, \"merge\": {:.4} }}{tail}",
        p[0], p[1], p[2], p[3], p[4], p[5]
    ));
}
