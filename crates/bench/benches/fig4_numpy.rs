//! Figures 4a–d: the NumPy workloads (Black Scholes, Haversine, nBody,
//! Shallow Water) — single-threaded NumPy base vs the fused-compiler
//! stand-in vs Mozart, 1–16 threads.

use mozart_bench::{report_figure, time_min, BenchOpts, Series};

fn main() {
    let opts = BenchOpts::from_env();

    // ---- 4a: Black Scholes --------------------------------------------
    {
        use workloads::black_scholes as bs;
        let n = opts.size(1 << 20);
        let inp = bs::generate(n, 42);
        println!("fig4a: black scholes (NumPy), n = {n}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(bs::numpy_base(&inp));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "NumPy(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t)); // single-threaded library
            let d = time_min(opts.reps, || {
                std::hint::black_box(bs::fused(&inp, t));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(bs::numpy_mozart(&inp, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure(
            "fig4a_blackscholes_numpy",
            "Black Scholes (NumPy)",
            &[base, fused, mozart],
        );
    }

    // ---- 4b: Haversine -------------------------------------------------
    {
        use workloads::haversine as hv;
        let n = opts.size(1 << 20);
        let inp = hv::generate(n, 7);
        println!("fig4b: haversine (NumPy), n = {n}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(hv::numpy_base(&inp));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "NumPy(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t));
            let d = time_min(opts.reps, || {
                std::hint::black_box(hv::fused(&inp, t));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(hv::numpy_mozart(&inp, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure(
            "fig4b_haversine_numpy",
            "Haversine (NumPy)",
            &[base, fused, mozart],
        );
    }

    // ---- 4c: nBody ------------------------------------------------------
    {
        use workloads::nbody as nb;
        let n = opts.size(700);
        let steps = 2;
        let dt = 0.01;
        let b = nb::generate(n, 5);
        println!("fig4c: nbody (NumPy), n = {n}, steps = {steps}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(nb::numpy_base(&b, steps, dt));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "NumPy(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t));
            let d = time_min(opts.reps, || {
                std::hint::black_box(nb::fused(&b, steps, dt, t));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(nb::numpy_mozart(&b, steps, dt, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure("fig4c_nbody_numpy", "nBody (NumPy)", &[base, fused, mozart]);
    }

    // ---- 4d: Shallow Water ----------------------------------------------
    {
        use workloads::shallow_water as sw;
        let n = opts.size(384);
        let steps = 4;
        let dt = 0.005;
        let g = sw::generate(n);
        println!("fig4d: shallow water (NumPy), grid = {n}x{n}, steps = {steps}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(sw::numpy_base(&g, steps, dt));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "NumPy(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Bohrium(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t));
            let d = time_min(opts.reps, || {
                std::hint::black_box(sw::fused(&g, steps, dt, t));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(sw::numpy_mozart(&g, steps, dt, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure(
            "fig4d_shallowwater_numpy",
            "Shallow Water (NumPy)",
            &[base, fused, mozart],
        );
    }
}
