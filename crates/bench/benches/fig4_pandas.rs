//! Figures 4e–h: the Pandas workloads (Data Cleaning, Crime Index,
//! Birth Analysis, MovieLens) — single-threaded Pandas base vs the
//! fused-compiler stand-in (Weld) vs Mozart.

use mozart_bench::{report_figure, time_min, BenchOpts, Series};

fn main() {
    let opts = BenchOpts::from_env();

    // ---- 4e: Data Cleaning ----------------------------------------------
    {
        use workloads::data_cleaning as dc;
        let n = opts.size(1 << 20);
        let df = dc::generate(n, 3);
        println!("fig4e: data cleaning (Pandas), rows = {n}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(dc::base(&df));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "Pandas(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t));
            let d = time_min(opts.reps, || {
                std::hint::black_box(dc::fused(&df, t));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(dc::mozart(&df, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure(
            "fig4e_datacleaning_pandas",
            "Data Cleaning (Pandas)",
            &[base, fused, mozart],
        );
    }

    // ---- 4f: Crime Index --------------------------------------------------
    {
        use workloads::crime_index as ci;
        let n = opts.size(1 << 21);
        let df = ci::generate(n, 4);
        println!("fig4f: crime index (Pandas), rows = {n}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(ci::base(&df));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "Pandas(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t));
            let d = time_min(opts.reps, || {
                std::hint::black_box(ci::fused(&df, t));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(ci::mozart(&df, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure(
            "fig4f_crimeindex_pandas",
            "Crime Index (Pandas)",
            &[base, fused, mozart],
        );
    }

    // ---- 4g: Birth Analysis -------------------------------------------------
    {
        use workloads::birth_analysis as ba;
        let n = opts.size(1 << 20);
        let df = ba::generate(n, 5);
        println!("fig4g: birth analysis (Pandas), rows = {n}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(ba::base(&df));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "Pandas(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t));
            let d = time_min(opts.reps, || {
                std::hint::black_box(ba::fused(&df));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(ba::mozart(&df, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure(
            "fig4g_birthanalysis_pandas",
            "Birth Analysis (Pandas)",
            &[base, fused, mozart],
        );
    }

    // ---- 4h: MovieLens --------------------------------------------------------
    {
        use workloads::movielens as ml;
        let n = opts.size(1 << 20);
        let d0 = ml::generate(n, 6);
        println!("fig4h: movielens (Pandas), ratings = {n}");
        let base_t = time_min(opts.reps, || {
            std::hint::black_box(ml::base(&d0));
        })
        .as_secs_f64();
        let mut base = Series {
            name: "Pandas(base)".into(),
            points: vec![],
        };
        let mut fused = Series {
            name: "Weld(fused)".into(),
            points: vec![],
        };
        let mut mozart = Series {
            name: "Mozart".into(),
            points: vec![],
        };
        for &t in &opts.threads {
            base.points.push((t, base_t));
            let d = time_min(opts.reps, || {
                std::hint::black_box(ml::fused(&d0));
            });
            fused.points.push((t, d.as_secs_f64()));
            let d = time_min(opts.reps, || {
                let ctx = workloads::mozart_context(t);
                std::hint::black_box(ml::mozart(&d0, &ctx).expect("run"));
            });
            mozart.points.push((t, d.as_secs_f64()));
        }
        report_figure(
            "fig4h_movielens_pandas",
            "MovieLens (Pandas)",
            &[base, fused, mozart],
        );
    }
}
