//! Shared harness utilities for the figure/table benchmarks.
//!
//! Every bench target regenerates one table or figure of the paper:
//! it prints the same rows/series the paper reports and writes a CSV
//! under `bench_results/`. Sizes are scaled for a laptop-class machine;
//! set `MOZART_BENCH_SCALE` (float) to grow them and
//! `MOZART_BENCH_THREADS` (comma list) / `MOZART_BENCH_REPS` to adjust
//! the sweep.

#![warn(missing_docs)]

use std::io::Write;
use std::time::{Duration, Instant};

/// Sweep configuration from the environment.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Worker counts to sweep (the paper uses 1–16).
    pub threads: Vec<usize>,
    /// Repetitions per measurement (result is the minimum).
    pub reps: usize,
    /// Input-size multiplier.
    pub scale: f64,
}

impl BenchOpts {
    /// Read options from the environment.
    pub fn from_env() -> Self {
        let threads = std::env::var("MOZART_BENCH_THREADS")
            .ok()
            .map(|s| {
                s.split(',')
                    .filter_map(|t| t.trim().parse::<usize>().ok())
                    .collect::<Vec<_>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);
        let reps = std::env::var("MOZART_BENCH_REPS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2)
            .max(1);
        let scale = std::env::var("MOZART_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        BenchOpts {
            threads,
            reps,
            scale,
        }
    }

    /// Scale a base size.
    pub fn size(&self, base: usize) -> usize {
        ((base as f64 * self.scale) as usize).max(16)
    }
}

/// Minimum wall-clock time over `reps` runs of `f`.
pub fn time_min(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

/// A measured series (one line in a figure).
pub struct Series {
    /// System name (e.g. "Mozart").
    pub name: String,
    /// `(threads, seconds)` points.
    pub points: Vec<(usize, f64)>,
}

/// Print a figure's series in the paper's layout and write a CSV.
pub fn report_figure(figure: &str, caption: &str, series: &[Series]) {
    println!("\n=== {figure}: {caption} ===");
    print!("{:>12}", "threads");
    for s in series {
        print!("{:>14}", s.name);
    }
    println!();
    let threads: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    for (row, &t) in threads.iter().enumerate() {
        print!("{t:>12}");
        for s in series {
            print!("{:>13.4}s", s.points[row].1);
        }
        println!();
    }
    // Speedup annotation like the red labels in Figure 4: base vs
    // Mozart at the largest thread count.
    if let (Some(base), Some(moz)) = (
        series
            .iter()
            .find(|s| s.name.contains("base") || s.name == "MKL" || s.name == "Base"),
        series.iter().find(|s| s.name.contains("Mozart")),
    ) {
        if let (Some(b), Some(m)) = (base.points.last(), moz.points.last()) {
            if m.1 > 0.0 {
                println!(
                    "    speedup (Mozart vs {} @ {} threads): {:.1}x",
                    base.name,
                    b.0,
                    b.1 / m.1
                );
            }
        }
    }
    let mut csv = String::from("threads");
    for s in series {
        csv.push_str(&format!(",{}", s.name));
    }
    csv.push('\n');
    for (row, &t) in threads.iter().enumerate() {
        csv.push_str(&t.to_string());
        for s in series {
            csv.push_str(&format!(",{}", s.points[row].1));
        }
        csv.push('\n');
    }
    write_results(&format!("{figure}.csv"), &csv);
}

/// Write a file under `bench_results/` (best effort).
pub fn write_results(name: &str, contents: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = std::fs::File::create(dir.join(name)) {
            let _ = f.write_all(contents.as_bytes());
        }
    }
}

/// Run a closure with vectormath's internal threading set, restoring 1
/// afterwards.
pub fn with_mkl_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    vectormath::set_num_threads(threads);
    let out = f();
    vectormath::set_num_threads(1);
    out
}

/// Run a closure with imagelib's internal threading set.
pub fn with_image_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    imagelib::set_num_threads(threads);
    let out = f();
    imagelib::set_num_threads(1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        let o = BenchOpts {
            threads: vec![1, 2],
            reps: 2,
            scale: 0.5,
        };
        assert_eq!(o.size(100), 50);
        assert_eq!(o.size(1), 16, "sizes are floored");
    }

    #[test]
    fn time_min_measures() {
        let d = time_min(2, || std::thread::sleep(Duration::from_millis(2)));
        assert!(d >= Duration::from_millis(2));
    }
}
