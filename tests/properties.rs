//! Property-based tests of the SA correctness condition (§3.4) and the
//! splitting API invariants:
//!
//! * split → merge round-trips the value for every split type;
//! * split → concat round-trips the value (and its offsets) for every
//!   registered splitter exposing the v2 `Concat` capability — the
//!   inverse-of-split law the serving layer's generic cross-request
//!   coalescing relies on;
//! * split-form re-slicing (ISSUE 9): a value held as pieces at one
//!   granularity, sliced at a different granularity through the
//!   `Concat` capability, yields exactly what a fresh split of the
//!   merged value would — for every concat-capable splitter;
//! * `F(a, b, ...) = Merge(F(a1, b1, ...), F(a2, b2, ...), ...)` for
//!   annotated functions under arbitrary split points;
//! * Mozart execution equals eager library execution for arbitrary
//!   operator sequences, worker counts, and batch sizes.

use proptest::prelude::*;

use dataframe::{Column, DataFrame};
use mozart_repro::core::prelude::*;
use mozart_repro::core::{Config, MozartContext};

fn ctx(workers: usize, batch: u64) -> MozartContext {
    mozart_repro::workloads::register_all_defaults();
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(batch);
    cfg.pedantic = true;
    MozartContext::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ArraySplit: splitting at arbitrary points and merging recovers
    /// the buffer (in-place views of one parent).
    #[test]
    fn array_split_roundtrip(data in prop::collection::vec(-1e6f64..1e6, 1..200), cut in 0usize..200) {
        let n = data.len();
        let cut = cut.min(n) as u64;
        let splitter = ArraySplit;
        let buf = SharedVec::from_vec(data.clone());
        let dv = DataValue::new(VecValue(buf));
        let params = vec![n as i64];
        let mut pieces = Vec::new();
        if cut > 0 {
            pieces.push(splitter.split(&dv, 0..cut, &params).unwrap().unwrap());
        }
        if (cut as usize) < n {
            pieces.push(splitter.split(&dv, cut..n as u64, &params).unwrap().unwrap());
        }
        let merged = splitter.merge(pieces, &params, n as u64).unwrap();
        let v = merged.downcast_ref::<VecValue>().unwrap();
        prop_assert_eq!(v.0.to_vec(), data);
    }

    /// RowSplit over DataFrames: slice + concat is the identity.
    #[test]
    fn row_split_roundtrip(vals in prop::collection::vec(-1e3f64..1e3, 1..120), cuts in prop::collection::vec(0usize..120, 0..4)) {
        let n = vals.len();
        let df = DataFrame::from_cols(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            ("v", Column::from_f64(vals.clone())),
        ]);
        let splitter = sa_dataframe::RowSplit;
        let dv = sa_dataframe::dfv(&df);
        let params = vec![n as i64];
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        points.dedup();
        let mut pieces = Vec::new();
        for w in points.windows(2) {
            if w[0] < w[1] {
                pieces.push(splitter.split(&dv, w[0] as u64..w[1] as u64, &params).unwrap().unwrap());
            }
        }
        let merged = splitter.merge(pieces, &params, n as u64).unwrap();
        let out = merged.downcast_ref::<sa_dataframe::DfValue>().unwrap();
        prop_assert_eq!(out.0.col("v").f64s(), df.col("v").f64s());
        prop_assert_eq!(out.0.col("id").i64s(), df.col("id").i64s());
    }

    /// The §3.4 condition for an elementwise kernel: applying vd_mul to
    /// two split halves equals applying it whole.
    #[test]
    fn split_condition_vd_mul(a in prop::collection::vec(-1e3f64..1e3, 2..150), cut_frac in 0.0f64..1.0) {
        let n = a.len();
        let cut = ((n as f64 * cut_frac) as usize).clamp(1, n - 1);
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let mut whole = vec![0.0; n];
        vectormath::vd_mul(&a, &b, &mut whole);
        let mut left = vec![0.0; cut];
        let mut right = vec![0.0; n - cut];
        vectormath::vd_mul(&a[..cut], &b[..cut], &mut left);
        vectormath::vd_mul(&a[cut..], &b[cut..], &mut right);
        left.extend(right);
        prop_assert_eq!(whole, left);
    }

    /// The §3.4 condition for a data-dependent operator: filtering row
    /// chunks and concatenating equals filtering the whole frame.
    #[test]
    fn split_condition_filter(vals in prop::collection::vec(-100i64..100, 1..150), cut in 0usize..150) {
        let n = vals.len();
        let cut = cut.min(n);
        let df = DataFrame::from_cols(vec![("v", Column::from_i64(vals))]);
        let mask = dataframe::ops::gt_scalar(&df.col("v").to_f64(), 0.0);
        let whole = df.filter(&mask);
        let parts = [df.slice_rows(0, cut), df.slice_rows(cut, n)];
        let merged = DataFrame::concat(&parts.iter().map(|p| {
            let m = dataframe::ops::gt_scalar(&p.col("v").to_f64(), 0.0);
            p.filter(&m)
        }).collect::<Vec<_>>());
        prop_assert_eq!(whole.col("v").i64s(), merged.col("v").i64s());
    }

    /// Mozart execution of a random in-place vector-op program equals
    /// eager execution, for arbitrary worker counts and batch sizes.
    #[test]
    fn executor_equals_eager_for_random_programs(
        data in prop::collection::vec(0.1f64..10.0, 8..300),
        ops in prop::collection::vec(0u8..5, 1..12),
        workers in 1usize..6,
        batch in 1u64..64,
    ) {
        let n = data.len();
        // Eager reference.
        let mut eager = data.clone();
        for &op in &ops {
            apply_eager(op, &mut eager);
        }
        // Mozart.
        let c = ctx(workers, batch);
        let buf = SharedVec::from_vec(data);
        for &op in &ops {
            apply_mozart(op, &c, n, &buf).unwrap();
        }
        let got = buf.to_vec();
        for i in 0..n {
            prop_assert!((got[i] - eager[i]).abs() <= 1e-9 * eager[i].abs().max(1.0),
                "index {}: {} vs {}", i, got[i], eager[i]);
        }
        // The whole program must have pipelined into one stage.
        prop_assert_eq!(c.stats().stages, 1);
    }

    /// Reductions agree with serial sums under arbitrary batch sizes.
    #[test]
    fn reduction_equals_serial(data in prop::collection::vec(-1e3f64..1e3, 1..400), workers in 1usize..5, batch in 1u64..128) {
        let c = ctx(workers, batch);
        let x = SharedVec::from_vec(data.clone());
        let y = SharedVec::from_vec(vec![2.0; data.len()]);
        let fut = sa_vectormath::ddot(&c, &x, &y).unwrap();
        let got = fut.get().unwrap().downcast_ref::<FloatValue>().unwrap().0;
        let expect: f64 = data.iter().map(|v| v * 2.0).sum();
        prop_assert!((got - expect).abs() <= 1e-9 * expect.abs().max(1.0));
    }
}

/// Random cut points over `[0, n]`, always containing 0 and n.
fn cut_points(n: usize, cuts: Vec<usize>) -> Vec<usize> {
    let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
    points.push(0);
    points.push(n);
    points.sort_unstable();
    points.dedup();
    points
}

/// The split → concat round-trip law for one splitter and one value:
/// splitting at arbitrary points and concatenating the whole pieces
/// reproduces the value's elements, the reported offsets equal the cut
/// starts, and `slice_back` recovers each piece from the concatenated
/// value. Equality is checked through `extract`, a per-type element
/// projection.
fn check_split_concat_roundtrip<T: Eq + std::fmt::Debug>(
    splitter: &dyn Splitter,
    value: &DataValue,
    points: &[usize],
    extract: impl Fn(&DataValue) -> T,
) {
    let cap = splitter
        .concat()
        .expect("splitter under test exposes Concat");
    let params = splitter.default_params(value).unwrap();
    let mut pieces = Vec::new();
    let mut starts = Vec::new();
    for w in points.windows(2) {
        if w[0] < w[1] {
            starts.push(w[0] as u64);
            pieces.push(
                splitter
                    .split(value, w[0] as u64..w[1] as u64, &params)
                    .unwrap()
                    .unwrap(),
            );
        }
    }
    // split pieces are whole values of the same data type, so concat —
    // the inverse of split — must glue them back together exactly.
    let (cat, offsets) = cap.concat(&pieces).unwrap();
    prop_assert_eq!(&offsets, &starts, "concat offsets are the cut starts");
    prop_assert_eq!(extract(&cat), extract(value), "concat(split(v)) == v");
    // ...and slice_back must recover each piece from the whole.
    for (piece, w) in pieces.iter().zip(points.windows(2).filter(|w| w[0] < w[1])) {
        let back = cap
            .slice_back(&cat, w[0] as u64, (w[1] - w[0]) as u64)
            .unwrap();
        prop_assert_eq!(
            extract(&back),
            extract(piece),
            "slice_back recovers the piece"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ArraySplit (VecValue buffers): split → concat round trip.
    #[test]
    fn array_split_concat_roundtrip(data in prop::collection::vec(-1e6f64..1e6, 1..160), cuts in prop::collection::vec(0usize..160, 0..5)) {
        // Rebuild each aliasing SliceView piece as an owned buffer
        // first: concat accepts both, and mixing exercises the copy
        // path the serving layer's coalescer uses.
        let n = data.len();
        let dv = DataValue::new(VecValue(SharedVec::from_vec(data)));
        check_split_concat_roundtrip(&ArraySplit, &dv, &cut_points(n, cuts), |v| {
            if let Some(v) = v.downcast_ref::<VecValue>() {
                return v.0.to_vec().iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
            }
            let v = v.downcast_ref::<SliceView>().unwrap();
            // SAFETY: single-threaded test, no concurrent mutation.
            unsafe { v.as_slice() }.iter().map(|f| f.to_bits()).collect()
        });
    }

    /// NdSplit (rank-1 and rank-2 arrays): split → concat round trip.
    #[test]
    fn nd_split_concat_roundtrip(rows in 1usize..80, colsel in 0usize..4, cuts in prop::collection::vec(0usize..80, 0..5)) {
        let arr = match colsel {
            0 => ndarray_lite::NdArray::from_fn(&[rows], |i| i as f64 * 1.5),
            c => ndarray_lite::NdArray::from_fn(&[rows, c], |i| i as f64 - 7.0),
        };
        let dv = DataValue::new(sa_ndarray::NdValue(arr));
        check_split_concat_roundtrip(&sa_ndarray::NdSplit, &dv, &cut_points(rows, cuts), |v| {
            let a = &v.downcast_ref::<sa_ndarray::NdValue>().unwrap().0;
            (a.shape().to_vec(), a.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<u64>>())
        });
    }

    /// RowSplit (frames with mixed dtypes): split → concat round trip.
    #[test]
    fn row_split_concat_roundtrip(vals in prop::collection::vec(-1e3f64..1e3, 1..100), cuts in prop::collection::vec(0usize..100, 0..5)) {
        let n = vals.len();
        let df = DataFrame::from_cols(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            ("v", Column::from_f64(vals)),
        ]);
        let dv = sa_dataframe::dfv(&df);
        check_split_concat_roundtrip(&sa_dataframe::RowSplit, &dv, &cut_points(n, cuts), |v| {
            let d = &v.downcast_ref::<sa_dataframe::DfValue>().unwrap().0;
            (
                d.col("id").i64s().to_vec(),
                d.col("v").f64s().iter().map(|f| f.to_bits()).collect::<Vec<u64>>(),
            )
        });
        // Columns carry the same split type; round-trip those too.
        let col = Column::from_f64((0..n).map(|i| i as f64 * 0.25).collect());
        let cv = sa_dataframe::colv(&col);
        check_split_concat_roundtrip(&sa_dataframe::RowSplit, &cv, &cut_points(n, vec![n / 2]), |v| {
            v.downcast_ref::<sa_dataframe::ColValue>().unwrap().0.f64s().to_vec().iter().map(|f| f.to_bits()).collect::<Vec<u64>>()
        });
    }

    /// ImageSplit (row bands): split → concat round trip.
    #[test]
    fn image_split_concat_roundtrip(w in 1usize..24, h in 1usize..40, seed in 0u64..64, cuts in prop::collection::vec(0usize..40, 0..4)) {
        let img = imagelib::Image::synthetic(w, h, seed);
        let dv = DataValue::new(sa_image::ImgValue(img));
        check_split_concat_roundtrip(&sa_image::ImageSplit, &dv, &cut_points(h, cuts), |v| {
            let i = &v.downcast_ref::<sa_image::ImgValue>().unwrap().0;
            (i.width(), i.height(), i.data().iter().map(|f| f.to_bits()).collect::<Vec<u32>>())
        });
    }

    /// CorpusSplit (documents): split → concat round trip.
    #[test]
    fn corpus_split_concat_roundtrip(docs in prop::collection::vec("[a-z ]{0,20}", 1..60), cuts in prop::collection::vec(0usize..60, 0..4)) {
        let n = docs.len();
        let dv = sa_text::corpus(&docs);
        check_split_concat_roundtrip(&sa_text::CorpusSplit, &dv, &cut_points(n, cuts), |v| {
            v.downcast_ref::<sa_text::CorpusValue>().unwrap().0.as_ref().clone()
        });
    }
}

/// The split-form re-slice law (ISSUE 9): hold a value as pieces cut at
/// one granularity (`produce` points), then serve ranges cut at a
/// *different* granularity (`consume` points) through
/// [`SplitForm::slice`]. Every served range must equal a fresh split of
/// the whole value over the same range — whether the range happened to
/// land on a piece boundary (clone fast path) or was re-sliced through
/// the `Concat` capability — and materialization must reproduce the
/// whole value.
fn check_split_form_reslice<T: Eq + std::fmt::Debug>(
    splitter: std::sync::Arc<dyn Splitter>,
    value: &DataValue,
    n: usize,
    produce: &[usize],
    consume: &[usize],
    extract: impl Fn(&DataValue) -> T,
) {
    let params = splitter.default_params(value).unwrap();
    let inst = SplitInstance::new(splitter.clone(), params.clone());
    let mut pieces = Vec::new();
    for w in produce.windows(2) {
        if w[0] < w[1] {
            let p = splitter
                .split(value, w[0] as u64..w[1] as u64, &params)
                .unwrap()
                .unwrap();
            pieces.push((w[0] as u64, w[1] as u64, p));
        }
    }
    let elem = splitter
        .info(value, &params)
        .map(|i| i.elem_size_bytes)
        .unwrap_or(0);
    let sf = SplitForm::new(pieces, n as u64, inst, elem).unwrap();
    for w in consume.windows(2) {
        if w[0] < w[1] {
            let (got, _resliced) = sf
                .slice(w[0] as u64..w[1] as u64)
                .unwrap()
                .expect("range inside the covered prefix");
            let fresh = splitter
                .split(value, w[0] as u64..w[1] as u64, &params)
                .unwrap()
                .unwrap();
            prop_assert_eq!(
                extract(&got),
                extract(&fresh),
                "range {}..{} must equal a fresh split",
                w[0],
                w[1]
            );
        }
    }
    // Past the covered range: the NULL driver stop.
    prop_assert!(sf.slice(n as u64..n as u64 + 4).unwrap().is_none());
    // Materialization (the conservative fallback) reproduces the value.
    prop_assert_eq!(
        extract(&sf.materialize().unwrap()),
        extract(value),
        "materialize == original"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ArraySplit: split-form re-slice equals fresh split.
    #[test]
    fn array_split_form_reslice(
        data in prop::collection::vec(-1e6f64..1e6, 1..160),
        produce in prop::collection::vec(0usize..160, 0..5),
        consume in prop::collection::vec(0usize..160, 0..5),
    ) {
        let n = data.len();
        let dv = DataValue::new(VecValue(SharedVec::from_vec(data)));
        let extract = |v: &DataValue| {
            if let Some(v) = v.downcast_ref::<VecValue>() {
                return v.0.to_vec().iter().map(|f| f.to_bits()).collect::<Vec<u64>>();
            }
            let v = v.downcast_ref::<SliceView>().unwrap();
            // SAFETY: single-threaded test, no concurrent mutation.
            unsafe { v.as_slice() }.iter().map(|f| f.to_bits()).collect()
        };
        check_split_form_reslice(
            std::sync::Arc::new(ArraySplit), &dv, n,
            &cut_points(n, produce), &cut_points(n, consume), extract,
        );
    }

    /// NdSplit: split-form re-slice equals fresh split (rank 1 and 2).
    #[test]
    fn nd_split_form_reslice(
        rows in 1usize..80,
        colsel in 0usize..4,
        produce in prop::collection::vec(0usize..80, 0..5),
        consume in prop::collection::vec(0usize..80, 0..5),
    ) {
        let arr = match colsel {
            0 => ndarray_lite::NdArray::from_fn(&[rows], |i| i as f64 * 1.5),
            c => ndarray_lite::NdArray::from_fn(&[rows, c], |i| i as f64 - 7.0),
        };
        let dv = DataValue::new(sa_ndarray::NdValue(arr));
        check_split_form_reslice(
            std::sync::Arc::new(sa_ndarray::NdSplit), &dv, rows,
            &cut_points(rows, produce), &cut_points(rows, consume),
            |v| {
                let a = &v.downcast_ref::<sa_ndarray::NdValue>().unwrap().0;
                (a.shape().to_vec(), a.as_slice().iter().map(|f| f.to_bits()).collect::<Vec<u64>>())
            },
        );
    }

    /// RowSplit: split-form re-slice equals fresh split.
    #[test]
    fn row_split_form_reslice(
        vals in prop::collection::vec(-1e3f64..1e3, 1..100),
        produce in prop::collection::vec(0usize..100, 0..5),
        consume in prop::collection::vec(0usize..100, 0..5),
    ) {
        let n = vals.len();
        let df = DataFrame::from_cols(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            ("v", Column::from_f64(vals)),
        ]);
        let dv = sa_dataframe::dfv(&df);
        check_split_form_reslice(
            std::sync::Arc::new(sa_dataframe::RowSplit), &dv, n,
            &cut_points(n, produce), &cut_points(n, consume),
            |v| {
                let d = &v.downcast_ref::<sa_dataframe::DfValue>().unwrap().0;
                (
                    d.col("id").i64s().to_vec(),
                    d.col("v").f64s().iter().map(|f| f.to_bits()).collect::<Vec<u64>>(),
                )
            },
        );
    }

    /// ImageSplit: split-form re-slice equals fresh split.
    #[test]
    fn image_split_form_reslice(
        w in 1usize..24,
        h in 1usize..40,
        seed in 0u64..64,
        produce in prop::collection::vec(0usize..40, 0..4),
        consume in prop::collection::vec(0usize..40, 0..4),
    ) {
        let img = imagelib::Image::synthetic(w, h, seed);
        let dv = DataValue::new(sa_image::ImgValue(img));
        check_split_form_reslice(
            std::sync::Arc::new(sa_image::ImageSplit), &dv, h,
            &cut_points(h, produce), &cut_points(h, consume),
            |v| {
                let i = &v.downcast_ref::<sa_image::ImgValue>().unwrap().0;
                (i.width(), i.height(), i.data().iter().map(|f| f.to_bits()).collect::<Vec<u32>>())
            },
        );
    }

    /// CorpusSplit: split-form re-slice equals fresh split.
    #[test]
    fn corpus_split_form_reslice(
        docs in prop::collection::vec("[a-z ]{0,20}", 1..60),
        produce in prop::collection::vec(0usize..60, 0..4),
        consume in prop::collection::vec(0usize..60, 0..4),
    ) {
        let n = docs.len();
        let dv = sa_text::corpus(&docs);
        check_split_form_reslice(
            std::sync::Arc::new(sa_text::CorpusSplit), &dv, n,
            &cut_points(n, produce), &cut_points(n, consume),
            |v| v.downcast_ref::<sa_text::CorpusValue>().unwrap().0.as_ref().clone(),
        );
    }
}

// The copies are deliberate: each op reads a snapshot of `v` while
// writing into `v`, which the in-place kernels would otherwise alias.
#[allow(clippy::unnecessary_to_owned)]
fn apply_eager(op: u8, v: &mut [f64]) {
    match op % 5 {
        0 => vectormath::vd_scale(&v.to_owned(), 1.01, v),
        1 => vectormath::vd_shift(&v.to_owned(), 0.5, v),
        2 => vectormath::vd_sqrt(&v.to_owned(), v),
        3 => vectormath::vd_log1p(&v.to_owned(), v),
        _ => vectormath::vd_sqr(&v.to_owned(), v),
    }
}

fn apply_mozart(op: u8, c: &MozartContext, n: usize, buf: &SharedVec<f64>) -> Result<()> {
    use sa_vectormath as sa;
    match op % 5 {
        0 => sa::vd_scale(c, n, buf, 1.01, buf),
        1 => sa::vd_shift(c, n, buf, 0.5, buf),
        2 => sa::vd_sqrt(c, n, buf, buf),
        3 => sa::vd_log1p(c, n, buf, buf),
        _ => sa::vd_sqr(c, n, buf, buf),
    }
}
