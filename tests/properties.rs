//! Property-based tests of the SA correctness condition (§3.4) and the
//! splitting API invariants:
//!
//! * split → merge round-trips the value for every split type;
//! * `F(a, b, ...) = Merge(F(a1, b1, ...), F(a2, b2, ...), ...)` for
//!   annotated functions under arbitrary split points;
//! * Mozart execution equals eager library execution for arbitrary
//!   operator sequences, worker counts, and batch sizes.

use proptest::prelude::*;

use dataframe::{Column, DataFrame};
use mozart_repro::core::prelude::*;
use mozart_repro::core::{Config, MozartContext};

fn ctx(workers: usize, batch: u64) -> MozartContext {
    mozart_repro::workloads::register_all_defaults();
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(batch);
    cfg.pedantic = true;
    MozartContext::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ArraySplit: splitting at arbitrary points and merging recovers
    /// the buffer (in-place views of one parent).
    #[test]
    fn array_split_roundtrip(data in prop::collection::vec(-1e6f64..1e6, 1..200), cut in 0usize..200) {
        let n = data.len();
        let cut = cut.min(n) as u64;
        let splitter = ArraySplit;
        let buf = SharedVec::from_vec(data.clone());
        let dv = DataValue::new(VecValue(buf));
        let params = vec![n as i64];
        let mut pieces = Vec::new();
        if cut > 0 {
            pieces.push(splitter.split(&dv, 0..cut, &params).unwrap().unwrap());
        }
        if (cut as usize) < n {
            pieces.push(splitter.split(&dv, cut..n as u64, &params).unwrap().unwrap());
        }
        let merged = splitter.merge(pieces, &params).unwrap();
        let v = merged.downcast_ref::<VecValue>().unwrap();
        prop_assert_eq!(v.0.to_vec(), data);
    }

    /// RowSplit over DataFrames: slice + concat is the identity.
    #[test]
    fn row_split_roundtrip(vals in prop::collection::vec(-1e3f64..1e3, 1..120), cuts in prop::collection::vec(0usize..120, 0..4)) {
        let n = vals.len();
        let df = DataFrame::from_cols(vec![
            ("id", Column::from_i64((0..n as i64).collect())),
            ("v", Column::from_f64(vals.clone())),
        ]);
        let splitter = sa_dataframe::RowSplit;
        let dv = sa_dataframe::dfv(&df);
        let params = vec![n as i64];
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        points.dedup();
        let mut pieces = Vec::new();
        for w in points.windows(2) {
            if w[0] < w[1] {
                pieces.push(splitter.split(&dv, w[0] as u64..w[1] as u64, &params).unwrap().unwrap());
            }
        }
        let merged = splitter.merge(pieces, &params).unwrap();
        let out = merged.downcast_ref::<sa_dataframe::DfValue>().unwrap();
        prop_assert_eq!(out.0.col("v").f64s(), df.col("v").f64s());
        prop_assert_eq!(out.0.col("id").i64s(), df.col("id").i64s());
    }

    /// The §3.4 condition for an elementwise kernel: applying vd_mul to
    /// two split halves equals applying it whole.
    #[test]
    fn split_condition_vd_mul(a in prop::collection::vec(-1e3f64..1e3, 2..150), cut_frac in 0.0f64..1.0) {
        let n = a.len();
        let cut = ((n as f64 * cut_frac) as usize).clamp(1, n - 1);
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let mut whole = vec![0.0; n];
        vectormath::vd_mul(&a, &b, &mut whole);
        let mut left = vec![0.0; cut];
        let mut right = vec![0.0; n - cut];
        vectormath::vd_mul(&a[..cut], &b[..cut], &mut left);
        vectormath::vd_mul(&a[cut..], &b[cut..], &mut right);
        left.extend(right);
        prop_assert_eq!(whole, left);
    }

    /// The §3.4 condition for a data-dependent operator: filtering row
    /// chunks and concatenating equals filtering the whole frame.
    #[test]
    fn split_condition_filter(vals in prop::collection::vec(-100i64..100, 1..150), cut in 0usize..150) {
        let n = vals.len();
        let cut = cut.min(n);
        let df = DataFrame::from_cols(vec![("v", Column::from_i64(vals))]);
        let mask = dataframe::ops::gt_scalar(&df.col("v").to_f64(), 0.0);
        let whole = df.filter(&mask);
        let parts = [df.slice_rows(0, cut), df.slice_rows(cut, n)];
        let merged = DataFrame::concat(&parts.iter().map(|p| {
            let m = dataframe::ops::gt_scalar(&p.col("v").to_f64(), 0.0);
            p.filter(&m)
        }).collect::<Vec<_>>());
        prop_assert_eq!(whole.col("v").i64s(), merged.col("v").i64s());
    }

    /// Mozart execution of a random in-place vector-op program equals
    /// eager execution, for arbitrary worker counts and batch sizes.
    #[test]
    fn executor_equals_eager_for_random_programs(
        data in prop::collection::vec(0.1f64..10.0, 8..300),
        ops in prop::collection::vec(0u8..5, 1..12),
        workers in 1usize..6,
        batch in 1u64..64,
    ) {
        let n = data.len();
        // Eager reference.
        let mut eager = data.clone();
        for &op in &ops {
            apply_eager(op, &mut eager);
        }
        // Mozart.
        let c = ctx(workers, batch);
        let buf = SharedVec::from_vec(data);
        for &op in &ops {
            apply_mozart(op, &c, n, &buf).unwrap();
        }
        let got = buf.to_vec();
        for i in 0..n {
            prop_assert!((got[i] - eager[i]).abs() <= 1e-9 * eager[i].abs().max(1.0),
                "index {}: {} vs {}", i, got[i], eager[i]);
        }
        // The whole program must have pipelined into one stage.
        prop_assert_eq!(c.stats().stages, 1);
    }

    /// Reductions agree with serial sums under arbitrary batch sizes.
    #[test]
    fn reduction_equals_serial(data in prop::collection::vec(-1e3f64..1e3, 1..400), workers in 1usize..5, batch in 1u64..128) {
        let c = ctx(workers, batch);
        let x = SharedVec::from_vec(data.clone());
        let y = SharedVec::from_vec(vec![2.0; data.len()]);
        let fut = sa_vectormath::ddot(&c, &x, &y).unwrap();
        let got = fut.get().unwrap().downcast_ref::<FloatValue>().unwrap().0;
        let expect: f64 = data.iter().map(|v| v * 2.0).sum();
        prop_assert!((got - expect).abs() <= 1e-9 * expect.abs().max(1.0));
    }
}

// The copies are deliberate: each op reads a snapshot of `v` while
// writing into `v`, which the in-place kernels would otherwise alias.
#[allow(clippy::unnecessary_to_owned)]
fn apply_eager(op: u8, v: &mut [f64]) {
    match op % 5 {
        0 => vectormath::vd_scale(&v.to_owned(), 1.01, v),
        1 => vectormath::vd_shift(&v.to_owned(), 0.5, v),
        2 => vectormath::vd_sqrt(&v.to_owned(), v),
        3 => vectormath::vd_log1p(&v.to_owned(), v),
        _ => vectormath::vd_sqr(&v.to_owned(), v),
    }
}

fn apply_mozart(op: u8, c: &MozartContext, n: usize, buf: &SharedVec<f64>) -> Result<()> {
    use sa_vectormath as sa;
    match op % 5 {
        0 => sa::vd_scale(c, n, buf, 1.01, buf),
        1 => sa::vd_shift(c, n, buf, 0.5, buf),
        2 => sa::vd_sqrt(c, n, buf, buf),
        3 => sa::vd_log1p(c, n, buf, buf),
        _ => sa::vd_sqr(c, n, buf, buf),
    }
}
