//! Cross-crate integration tests: full workloads through the Mozart
//! runtime compared against eager library execution, across worker
//! counts, batch sizes, and the -pipe ablation.

use mozart_repro::core::{Config, MozartContext};
use mozart_repro::workloads::{self, close};

fn ctx_with(workers: usize, batch: Option<u64>, pipeline: bool) -> MozartContext {
    workloads::register_all_defaults();
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = batch;
    cfg.pipeline = pipeline;
    cfg.pedantic = true;
    MozartContext::new(cfg)
}

#[test]
fn black_scholes_all_modes_all_configs() {
    use workloads::black_scholes as bs;
    let inp = bs::generate(3000, 5);
    let expect = bs::numpy_base(&inp);
    for workers in [1, 3, 8] {
        for batch in [None, Some(17), Some(4096)] {
            for pipeline in [true, false] {
                let ctx = ctx_with(workers, batch, pipeline);
                let got = bs::mkl_mozart(&inp, &ctx).expect("run");
                assert!(
                    close(expect.call_sum, got.call_sum, 1e-5),
                    "workers={workers} batch={batch:?} pipeline={pipeline}: {} vs {}",
                    expect.call_sum,
                    got.call_sum
                );
            }
        }
    }
}

#[test]
fn pipe_ablation_changes_stages_not_results() {
    use workloads::haversine as hv;
    let inp = hv::generate(2000, 2);
    let piped = ctx_with(2, Some(64), true);
    let r1 = hv::mkl_mozart(&inp, &piped).expect("run");
    let unpiped = ctx_with(2, Some(64), false);
    let r2 = hv::mkl_mozart(&inp, &unpiped).expect("run");
    assert!(close(r1.dist_sum, r2.dist_sum, 1e-12));
    assert_eq!(piped.stats().stages, 1);
    // 16 vector calls + final dasum = 17 function calls, one stage each.
    assert!(
        unpiped.stats().stages >= 17,
        "got {}",
        unpiped.stats().stages
    );
}

#[test]
fn full_data_science_pipeline_matches_eager() {
    use workloads::{
        birth_analysis as ba, crime_index as ci, data_cleaning as dc, movielens as ml,
    };
    let ctx = ctx_with(3, Some(101), true);

    let df = dc::generate(3000, 1);
    let a = dc::base(&df);
    let b = dc::mozart(&df, &ctx).expect("dc");
    assert_eq!(a.valid, b.valid);
    assert_eq!(a.nulls, b.nulls);

    let df = ci::generate(2500, 2);
    assert!(close(
        ci::base(&df).index_sum,
        ci::mozart(&df, &ctx).expect("ci").index_sum,
        1e-9
    ));

    let df = ba::generate(2500, 3);
    let x = ba::base(&df);
    let y = ba::mozart(&df, &ctx).expect("ba");
    assert_eq!(x.groups, y.groups);
    assert!(close(x.fraction_sum, y.fraction_sum, 1e-9));

    let d = ml::generate(4000, 4);
    let x = ml::base(&d);
    let y = ml::mozart(&d, &ctx).expect("ml");
    assert_eq!(x.movies_rated_by_both, y.movies_rated_by_both);
    assert!(close(x.divisiveness_sum, y.divisiveness_sum, 1e-9));
}

#[test]
fn simulations_match_across_runtimes() {
    use workloads::{nbody as nb, shallow_water as sw};
    let ctx = ctx_with(2, None, true);
    let b = nb::generate(40, 6);
    let x = nb::numpy_base(&b, 2, 0.02);
    let y = nb::mkl_mozart(&b, 2, 0.02, &ctx).expect("nb");
    assert!(close(x.x_sum, y.x_sum, 1e-9));

    let g = sw::generate(20);
    let x = sw::numpy_base(&g, 3, 0.01);
    let ctx = ctx_with(2, Some(7), true);
    let y = sw::numpy_mozart(&g, 3, 0.01, &ctx).expect("sw");
    assert!(close(x.mass, y.mass, 1e-9));
    assert!(close(x.momentum2, y.momentum2, 1e-9));
}

#[test]
fn text_and_images_match_across_runtimes() {
    use workloads::{images, speech_tag as st};
    let corpus = st::generate(40, 30, 8);
    let ctx = ctx_with(4, Some(3), true);
    assert_eq!(st::base(&corpus), st::mozart(&corpus, &ctx).expect("st"));

    let img = images::generate(48, 36, 2);
    let ctx = ctx_with(3, Some(5), true);
    let a = images::gotham_base(&img);
    let b = images::gotham_mozart(&img, &ctx).expect("img");
    assert!(close(a.mean, b.mean, 1e-5));
}

#[test]
fn one_context_survives_many_workloads() {
    // A single context accumulating multiple evaluation rounds, like a
    // long-running application session.
    use workloads::{crime_index as ci, haversine as hv};
    let ctx = ctx_with(2, Some(256), true);
    for seed in 0..3 {
        let inp = hv::generate(1200, seed);
        let expect = hv::numpy_base(&inp);
        let got = hv::mkl_mozart(&inp, &ctx).expect("hv");
        assert!(close(expect.dist_sum, got.dist_sum, 1e-6));
        let df = ci::generate(900, seed);
        assert!(close(
            ci::base(&df).index_sum,
            ci::mozart(&df, &ctx).expect("ci").index_sum,
            1e-9
        ));
    }
    assert!(ctx.stats().stages >= 6);
}

#[test]
fn oversubscribed_workers_are_safe() {
    use workloads::black_scholes as bs;
    let inp = bs::generate(500, 9);
    let ctx = ctx_with(32, Some(3), true); // more workers than batches
    let got = bs::mkl_mozart(&inp, &ctx).expect("run");
    let expect = bs::numpy_base(&inp);
    assert!(close(expect.call_sum, got.call_sum, 1e-5));
}
