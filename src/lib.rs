//! Umbrella crate for the Mozart split-annotations reproduction.
//!
//! Re-exports the public API of every crate in the workspace so the
//! examples and integration tests can use a single dependency. See the
//! repository README for an architecture overview.

pub use cachesim;
pub use dataframe;
pub use fusedbaseline;
pub use imagelib;
pub use mozart_core as core;
pub use ndarray_lite;
pub use sa_dataframe;
pub use sa_image;
pub use sa_ndarray;
pub use sa_text;
pub use sa_vectormath;
pub use textproc;
pub use vectormath;
pub use workloads;
